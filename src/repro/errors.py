"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while letting programming errors (``TypeError``
from misuse of the Python API itself, ``KeyboardInterrupt``, ...) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "GraphBuildError",
    "QueryError",
    "InvalidParameterError",
    "IndexNotBuiltError",
    "BackendUnavailableError",
    "ServiceError",
    "ServiceOverloadedError",
    "QueryCancelledError",
    "DeadlineExceededError",
    "ServiceShutdownError",
    "RelevanceError",
    "RelationalError",
    "SchemaError",
    "PlanError",
    "DistributedError",
    "PartitionError",
    "ParallelError",
    "StaleShardError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for graph-storage and traversal errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class GraphBuildError(GraphError, ValueError):
    """Raised when a graph cannot be constructed from the given input."""


class QueryError(ReproError):
    """Base class for query-processing errors."""


class InvalidParameterError(QueryError, ValueError):
    """A query or algorithm parameter is out of its valid domain."""


class IndexNotBuiltError(QueryError, RuntimeError):
    """An algorithm required a precomputed index that was not supplied."""


class BackendUnavailableError(QueryError, RuntimeError):
    """An execution backend was requested whose dependency is missing."""


class ServiceError(QueryError):
    """Base class for the concurrent serving layer (:mod:`repro.service`)."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a submission (queue bound reached)."""


class QueryCancelledError(ServiceError):
    """The result of a cancelled query handle was requested."""


class DeadlineExceededError(ServiceError, TimeoutError):
    """A queued query passed its deadline before execution started."""


class ServiceShutdownError(ServiceError, RuntimeError):
    """A submission was made to a service that has been shut down."""


class RelevanceError(ReproError, ValueError):
    """A relevance function produced or was given invalid scores."""


class RelationalError(ReproError):
    """Base class for the mini relational engine."""


class SchemaError(RelationalError, ValueError):
    """A table schema was violated (unknown column, arity mismatch, ...)."""


class PlanError(RelationalError, ValueError):
    """A logical or physical plan could not be constructed or executed."""


class DistributedError(ReproError):
    """Base class for the simulated distributed engine."""


class PartitionError(DistributedError, ValueError):
    """A graph partitioning was invalid or inconsistent."""


class ParallelError(QueryError, RuntimeError):
    """The process-parallel backend failed (worker death, IPC timeout, ...)."""


class StaleShardError(ParallelError):
    """A worker refused a task naming a shared-memory version that moved."""
