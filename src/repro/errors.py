"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while letting programming errors (``TypeError``
from misuse of the Python API itself, ``KeyboardInterrupt``, ...) propagate.

Wire contract
-------------
The serving tier (:mod:`repro.serving`) moves errors between processes and
machines, so every public exception carries a **stable string code**
(``ReproError.code``, e.g. ``"service_overloaded"``) and round-trips
through :meth:`ReproError.to_wire` / :func:`error_from_wire`::

    payload = exc.to_wire()          # {"code": ..., "message": ..., ...}
    again = error_from_wire(payload) # same class, same message, same extras

Codes are part of the public protocol: renaming one is a wire-breaking
change.  Unknown codes decode to plain :class:`ReproError` (forward
compatibility with newer servers), and extra payload fields such as
``retry_after`` survive the round-trip as attributes.

Every payload also carries ``retryable`` — the *server's* verdict on
whether the identical request may safely be retried (overload, rate
limits, transient cluster failures: yes; invalid parameters, missing
nodes: no).  Client-side retry loops (:class:`repro.client.RetryPolicy`)
must consult the decoded attribute rather than guess from the class, so
the authority stays on the serving side of the wire.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "GraphBuildError",
    "QueryError",
    "InvalidParameterError",
    "IndexNotBuiltError",
    "BackendUnavailableError",
    "ServiceError",
    "ServiceOverloadedError",
    "QuotaExceededError",
    "RateLimitedError",
    "QueryCancelledError",
    "DeadlineExceededError",
    "ServiceShutdownError",
    "ProtocolError",
    "RelevanceError",
    "RelationalError",
    "SchemaError",
    "PlanError",
    "DistributedError",
    "PartitionError",
    "ParallelError",
    "StaleShardError",
    "ClusterError",
    "FaultInjectedError",
    "ERROR_CODES",
    "error_from_wire",
]

#: Stable code -> exception class registry (filled by ``__init_subclass__``).
ERROR_CODES: Dict[str, Type["ReproError"]] = {}

#: Wire payload keys that are structural, not instance attributes.
_WIRE_STRUCTURAL = ("code", "message")


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Class attribute ``code`` is the stable wire identifier; subclasses
    override it and are automatically registered in :data:`ERROR_CODES`.
    ``retryable`` marks errors whose identical request may safely be
    retried after a backoff; it rides in every wire payload.
    """

    code: str = "repro_error"
    retryable: bool = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # First registration wins nothing — codes must be unique; a subclass
        # that does not declare its own code inherits (and must not shadow)
        # its parent's registration.
        if "code" in cls.__dict__:
            existing = ERROR_CODES.get(cls.code)
            if existing is not None and existing is not cls:
                raise TypeError(
                    f"duplicate error code {cls.code!r}: "
                    f"{existing.__name__} vs {cls.__name__}"
                )
            ERROR_CODES[cls.code] = cls

    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        """One JSON-safe payload: stable code, message, public extras.

        Extras are the instance attributes set by the constructor (e.g.
        :class:`NodeNotFoundError`'s ``node``, an overload error's
        ``retry_after``) whose values are JSON scalars; they come back as
        attributes on the decoded instance.
        """
        payload: dict = {
            "code": self.code,
            "message": str(self),
            "retryable": bool(self.retryable),
        }
        for name, value in vars(self).items():
            if name.startswith("_") or name in _WIRE_STRUCTURAL:
                continue
            if isinstance(value, (str, int, float, bool)) or value is None:
                payload[name] = value
        return payload


ERROR_CODES[ReproError.code] = ReproError


def error_from_wire(payload: dict) -> ReproError:
    """Decode a :meth:`ReproError.to_wire` payload back into an instance.

    The decoded error is the registered class for ``payload["code"]``
    (plain :class:`ReproError` for unknown codes, so newer servers degrade
    gracefully) with the original message and any extra payload fields
    attached as attributes.  Constructors with mandatory domain arguments
    (e.g. :class:`NodeNotFoundError`) are bypassed — the instance is
    rebuilt structurally, exactly as pickling would.
    """
    if not isinstance(payload, dict) or "code" not in payload:
        raise ProtocolError(f"malformed error payload: {payload!r}")
    cls = ERROR_CODES.get(str(payload["code"]), ReproError)
    err = cls.__new__(cls)
    Exception.__init__(err, str(payload.get("message", "")))
    for name, value in payload.items():
        if name not in _WIRE_STRUCTURAL and isinstance(name, str):
            try:
                setattr(err, name, value)
            except AttributeError:  # pragma: no cover - slotted subclass
                pass
    return err


class GraphError(ReproError):
    """Base class for graph-storage and traversal errors."""

    code = "graph_error"


class NodeNotFoundError(GraphError, KeyError):
    """A node id was not present in the graph."""

    code = "node_not_found"

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the message; keep it human-readable.
        return self.args[0] if self.args else ""


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was not present in the graph."""

    code = "edge_not_found"

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class GraphBuildError(GraphError, ValueError):
    """Raised when a graph cannot be constructed from the given input."""

    code = "graph_build_error"


class QueryError(ReproError):
    """Base class for query-processing errors."""

    code = "query_error"


class InvalidParameterError(QueryError, ValueError):
    """A query or algorithm parameter is out of its valid domain."""

    code = "invalid_parameter"


class IndexNotBuiltError(QueryError, RuntimeError):
    """An algorithm required a precomputed index that was not supplied."""

    code = "index_not_built"


class BackendUnavailableError(QueryError, RuntimeError):
    """An execution backend was requested whose dependency is missing."""

    code = "backend_unavailable"


class ServiceError(QueryError):
    """Base class for the concurrent serving layer (:mod:`repro.service`)."""

    code = "service_error"


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a submission.

    Raised when the queue bound is reached, and by the network front door's
    cost-based load shedder (:mod:`repro.serving.admission`).  ``retry_after``
    — seconds after which the caller should retry — travels over the wire;
    ``estimated_cost`` / ``cost_limit`` document a shedding decision.
    """

    code = "service_overloaded"
    retryable = True

    def __init__(
        self,
        message: str,
        *,
        retry_after: Optional[float] = None,
        estimated_cost: Optional[float] = None,
        cost_limit: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.estimated_cost = estimated_cost
        self.cost_limit = cost_limit


class QuotaExceededError(ServiceOverloadedError):
    """A tenant exceeded its concurrent-query quota."""

    code = "quota_exceeded"


class RateLimitedError(ServiceOverloadedError):
    """A tenant's token bucket ran dry (requests per second bound)."""

    code = "rate_limited"


class QueryCancelledError(ServiceError):
    """The result of a cancelled query handle was requested."""

    code = "query_cancelled"


class DeadlineExceededError(ServiceError, TimeoutError):
    """A query passed its deadline — while queued, or cooperatively
    observed mid-execution by a backend kernel (see :mod:`repro.core.deadline`)."""

    code = "deadline_exceeded"


class ServiceShutdownError(ServiceError, RuntimeError):
    """A submission was made to a service that has been shut down."""

    code = "service_shutdown"


class ProtocolError(ServiceError, ValueError):
    """A wire payload violated the serving protocol (bad schema/field)."""

    code = "protocol_error"


class RelevanceError(ReproError, ValueError):
    """A relevance function produced or was given invalid scores."""

    code = "relevance_error"


class RelationalError(ReproError):
    """Base class for the mini relational engine."""

    code = "relational_error"


class SchemaError(RelationalError, ValueError):
    """A table schema was violated (unknown column, arity mismatch, ...)."""

    code = "schema_error"


class PlanError(RelationalError, ValueError):
    """A logical or physical plan could not be constructed or executed."""

    code = "plan_error"


class DistributedError(ReproError):
    """Base class for the simulated distributed engine."""

    code = "distributed_error"


class PartitionError(DistributedError, ValueError):
    """A graph partitioning was invalid or inconsistent."""

    code = "partition_error"


class ParallelError(QueryError, RuntimeError):
    """The process-parallel backend failed (worker death, IPC timeout, ...)."""

    code = "parallel_error"


class StaleShardError(ParallelError):
    """A worker refused a task naming a shared-memory version that moved.

    Retryable: the engine re-snapshots its stores and re-runs the round;
    a remote caller seeing one merely raced a mutation.
    """

    code = "stale_shard"
    retryable = True


class ClusterError(QueryError, RuntimeError):
    """The socket-transport cluster backend failed (peer death, protocol
    violation, round timeout with no healthy peer left to re-issue to).

    Retryable: peer failures are transient by design — the transport
    respawns/readmits workers between rounds, so an identical request may
    well succeed.
    """

    code = "cluster_error"
    retryable = True


class FaultInjectedError(ReproError, RuntimeError):
    """A deterministic ``transient_error`` fault fired (:mod:`repro.faults`).

    Only fault plans raise this; production code never does.  It is
    retryable by construction — the injection machinery models exactly the
    class of failure a retry is supposed to absorb, and the resilience
    layers (pool/transport re-issue, client backoff) are expected to make
    it invisible to callers.
    """

    code = "fault_injected"
    retryable = True
