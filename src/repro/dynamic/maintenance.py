"""Incremental maintenance of neighborhood aggregates under updates.

A materialized ``(F_sum(u), N(u))`` view (see
:mod:`repro.core.materialized`) answers queries in O(n log k) but dies with
any change.  This module keeps the view alive under the three update kinds
a dynamic network produces, repairing *locally* instead of rebuilding:

* **score update** ``f(x) := s`` — only nodes whose ball contains ``x`` are
  affected, i.e. the *reverse* h-hop ball of ``x``; their sums shift by
  exactly ``s - f_old(x)`` and their ball sizes do not change.  Pure
  arithmetic, one reverse-ball BFS.
* **edge insertion** ``(a, b)`` — a node's ball can only change if the new
  edge lies within ``h`` hops, i.e. the node reaches ``a`` or ``b``;
  the affected set is the union of the reverse balls of the endpoints *in
  the new graph*, and those nodes are re-evaluated exactly.
* **edge deletion** ``(a, b)`` — same union of reverse balls, taken *in the
  old graph* (paths through the edge existed only there), re-evaluated in
  the new graph.

Each repair's cost is proportional to the perturbed region, not the graph —
the property that makes the monitoring scenario ("dynamic intrusion
network", Sec. I) workable.  The view checks itself against a version
counter and refuses to serve stale answers.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Set, Union

from repro.aggregates.functions import AggregateKind, coerce_aggregate
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult
from repro.core.topk import TopKAccumulator
from repro.dynamic.graph import DynamicGraph
from repro.errors import InvalidParameterError, RelevanceError
from repro.graph.traversal import TraversalCounter, hop_ball

__all__ = ["MaintainedAggregateView"]


class MaintainedAggregateView:
    """A live ``(F_sum, N)`` view over a :class:`DynamicGraph`.

    All mutations must flow through this object's ``add_edge`` /
    ``remove_edge`` / ``update_score`` so the view repairs in lockstep;
    mutating the graph directly is detected via the version counter and
    raises on the next query.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        scores: Sequence[float],
        *,
        hops: int = 2,
        include_self: bool = True,
    ) -> None:
        if len(scores) != graph.num_nodes:
            raise RelevanceError(
                f"score vector has {len(scores)} entries, graph has "
                f"{graph.num_nodes} nodes"
            )
        for i, s in enumerate(scores):
            if not 0.0 <= float(s) <= 1.0:
                raise RelevanceError(f"score out of range at node {i}: {s}")
        self.graph = graph
        self.hops = hops
        self.include_self = include_self
        self.scores: List[float] = [float(s) for s in scores]
        self.counter = TraversalCounter()
        self.nodes_repaired = 0
        self.arithmetic_updates = 0
        self._sums: List[float] = []
        self._sizes: List[int] = []
        self._rebuild()
        self._version = graph.version

    # ------------------------------------------------------------------
    # Build / repair internals
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        self._sums = []
        self._sizes = []
        for u in self.graph.nodes():
            ball = hop_ball(
                self.graph,
                u,
                self.hops,
                include_self=self.include_self,
                counter=self.counter,
            )
            self._sums.append(sum(self.scores[v] for v in ball))
            self._sizes.append(len(ball))

    def _reverse_ball(self, node: int) -> Set[int]:
        """Nodes whose h-hop ball contains ``node``."""
        if self.graph.directed:
            reverse = self.graph.reversed()
            return hop_ball(
                reverse,
                node,
                self.hops,
                include_self=self.include_self,
                counter=self.counter,
            )
        return hop_ball(
            self.graph,
            node,
            self.hops,
            include_self=self.include_self,
            counter=self.counter,
        )

    def _repair(self, affected: Set[int]) -> None:
        for u in affected:
            ball = hop_ball(
                self.graph,
                u,
                self.hops,
                include_self=self.include_self,
                counter=self.counter,
            )
            self._sums[u] = sum(self.scores[v] for v in ball)
            self._sizes[u] = len(ball)
            self.nodes_repaired += 1

    def _check_version(self) -> None:
        if self.graph.version != self._version:
            raise InvalidParameterError(
                "the underlying graph was mutated outside the view; "
                "mutations must go through the MaintainedAggregateView"
            )

    def check_in_sync(self) -> None:
        """Public staleness probe: raise if the graph moved past the view.

        Sessions holding several views call this *before* applying a
        mutation, so a view that already missed an outside mutation fails
        loudly instead of being repaired into a silently wrong state.
        """
        self._check_version()

    # ------------------------------------------------------------------
    # Update API
    # ------------------------------------------------------------------
    def update_score(self, node: int, new_score: float) -> int:
        """Set ``f(node)``; returns the number of affected view entries."""
        self._check_version()
        if not 0.0 <= new_score <= 1.0:
            raise RelevanceError(f"score must be in [0, 1], got {new_score}")
        delta = new_score - self.scores[node]
        if delta == 0.0:
            return 0
        self.scores[node] = new_score
        affected = self._reverse_ball(node)
        for u in affected:
            self._sums[u] += delta
            self.arithmetic_updates += 1
        return len(affected)

    def add_edge(self, u: int, v: int) -> int:
        """Insert an edge and repair; returns affected-node count."""
        self._check_version()
        self.graph.add_edge(u, v)
        return self.repair_after_insert(u, v)

    def repair_after_insert(self, u: int, v: int) -> int:
        """Repair for an edge ``(u, v)`` *already inserted* in the graph.

        Split out so a session owning several views over one graph can
        apply the mutation once and repair each view (the classic
        ``add_edge`` wraps it).  Reverse balls are taken in the NEW graph:
        any node reaching an endpoint within h hops may have gained ball
        members through the new edge.
        """
        self._version = self.graph.version
        affected = self._reverse_ball(u) | self._reverse_ball(v)
        self._repair(affected)
        return len(affected)

    def affected_for_delete(self, u: int, v: int) -> Set[int]:
        """Nodes whose view entry a pending ``(u, v)`` deletion may change.

        Must be called *before* the edge is removed — paths through the
        edge existed only in the old graph.
        """
        self._check_version()
        return self._reverse_ball(u) | self._reverse_ball(v)

    def repair_after_delete(self, affected: Set[int]) -> int:
        """Repair ``affected`` (from :meth:`affected_for_delete`) after the
        deletion has been applied to the graph."""
        self._version = self.graph.version
        self._repair(affected)
        return len(affected)

    def remove_edge(self, u: int, v: int) -> int:
        """Delete an edge and repair; returns affected-node count."""
        affected = self.affected_for_delete(u, v)
        self.graph.remove_edge(u, v)
        return self.repair_after_delete(affected)

    def add_node(self) -> int:
        """Append an isolated node with score 0; returns its id."""
        self._check_version()
        node = self.graph.add_node()
        self._version = self.graph.version
        self.scores.append(0.0)
        self._sums.append(0.0)
        self._sizes.append(1 if self.include_self else 0)
        return node

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def value(self, node: int, kind: Union[str, AggregateKind] = "sum") -> float:
        """Current aggregate value of one node."""
        kind = coerce_aggregate(kind)
        if kind is AggregateKind.SUM:
            return self._sums[node]
        if kind is AggregateKind.AVG:
            size = self._sizes[node]
            return self._sums[node] / size if size else 0.0
        raise InvalidParameterError(
            f"the maintained view serves SUM/AVG, not {kind.value}"
        )

    def topk(
        self, k: int, aggregate: Union[str, AggregateKind] = "sum"
    ) -> TopKResult:
        """Answer a top-k query from the live view."""
        self._check_version()
        kind = coerce_aggregate(aggregate)
        spec = QuerySpec(
            k=k, aggregate=kind, hops=self.hops, include_self=self.include_self
        )
        start = time.perf_counter()
        acc = TopKAccumulator(spec.k)
        for node in range(len(self._sums)):
            acc.offer(node, self.value(node, kind))
        stats = QueryStats(
            algorithm="maintained-view",
            aggregate=kind.value,
            hops=self.hops,
            k=k,
            elapsed_sec=time.perf_counter() - start,
        )
        stats.extra["nodes_repaired_total"] = float(self.nodes_repaired)
        stats.extra["arithmetic_updates_total"] = float(self.arithmetic_updates)
        return TopKResult(entries=acc.entries(), stats=stats)
