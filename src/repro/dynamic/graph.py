"""Mutable graph for dynamic-network workloads.

The paper's motivating intrusion scenario is explicitly dynamic: "the
intrusion packets could formulate a large, dynamic intrusion network"
(Sec. I).  :class:`DynamicGraph` extends the immutable :class:`Graph` with
edge/node mutation and a version counter, so downstream artifacts (the
maintained aggregate view in :mod:`repro.dynamic.maintenance`) can detect
staleness and repair themselves incrementally.

All traversal and algorithm code operates on the :class:`Graph` interface,
so a :class:`DynamicGraph` can be queried directly at any point in its
mutation history.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.errors import EdgeNotFoundError, GraphBuildError
from repro.graph.graph import Graph

__all__ = ["DynamicGraph"]


class DynamicGraph(Graph):
    """A :class:`Graph` that supports edge and node mutation.

    Every successful mutation bumps :attr:`version`; consumers cache
    against it.  Duplicate edges and self-loops are rejected exactly as in
    :class:`GraphBuilder`, keeping the simple-graph invariant that all
    algorithms assume.
    """

    __slots__ = ("version", "_edge_set")

    def __init__(
        self,
        adjacency: Optional[List[List[int]]] = None,
        *,
        directed: bool = False,
        name: str = "",
    ) -> None:
        super().__init__(adjacency or [], directed=directed, name=name)
        self.version = 0
        self._edge_set: Set[Tuple[int, int]] = set()
        for u, v in self.arcs():
            key = (u, v) if directed else (min(u, v), max(u, v))
            if u == v:
                raise GraphBuildError(f"self-loop on node {u}")
            self._edge_set.add(key)
        if not directed and any(
            len({(min(u, v), max(u, v)) for v in self._adj[u]}) != len(self._adj[u])
            for u in self.nodes()
        ):
            raise GraphBuildError("duplicate edges in initial adjacency")

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "DynamicGraph":
        """A mutable deep copy of an existing graph (weights dropped)."""
        return cls(
            graph.adjacency_copy(), directed=graph.directed, name=graph.name
        )

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        *,
        num_nodes: Optional[int] = None,
        directed: bool = False,
        name: str = "",
    ) -> "DynamicGraph":
        """Build a mutable graph from edges (mirrors ``Graph.from_edges``)."""
        base = Graph.from_edges(
            edges, num_nodes=num_nodes, directed=directed, name=name
        )
        return cls.from_graph(base)

    # ------------------------------------------------------------------
    def _key(self, u: int, v: int) -> Tuple[int, int]:
        return (u, v) if self._directed else (min(u, v), max(u, v))

    def add_node(self) -> int:
        """Append a new isolated node; returns its id."""
        self._adj.append([])
        self.version += 1
        return len(self._adj) - 1

    def add_edge(self, u: int, v: int) -> None:
        """Insert the edge ``u - v`` (arc ``u -> v`` if directed)."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphBuildError(f"self-loop on node {u} is not allowed")
        key = self._key(u, v)
        if key in self._edge_set:
            raise GraphBuildError(f"edge ({u}, {v}) already present")
        self._edge_set.add(key)
        self._adj[u].append(v)
        if not self._directed:
            self._adj[v].append(u)
        self._num_edges += 1
        self.version += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the edge ``u - v`` (arc ``u -> v`` if directed)."""
        self._check_node(u)
        self._check_node(v)
        key = self._key(u, v)
        if key not in self._edge_set:
            raise EdgeNotFoundError(u, v)
        self._edge_set.discard(key)
        self._adj[u].remove(v)
        if not self._directed:
            self._adj[v].remove(u)
        self._num_edges -= 1
        self.version += 1

    def has_edge(self, u: int, v: int) -> bool:
        """O(1) membership via the edge set."""
        self._check_node(u)
        self._check_node(v)
        return self._key(u, v) in self._edge_set

    def snapshot(self) -> Graph:
        """An immutable deep copy at the current version."""
        return Graph(
            self.adjacency_copy(), directed=self._directed, name=self.name
        )
