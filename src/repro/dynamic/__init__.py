"""Dynamic networks: mutable graphs + incremental aggregate maintenance.

The paper's intrusion scenario is a *dynamic* network (Sec. I); this
package provides the machinery to keep top-k neighborhood aggregates live
under edge insertions/deletions and score updates, repairing only the
perturbed region instead of rebuilding.
"""

from repro.dynamic.graph import DynamicGraph
from repro.dynamic.maintenance import MaintainedAggregateView

__all__ = ["DynamicGraph", "MaintainedAggregateView"]
