"""A small writer-preferring readers-writer lock.

Query execution is read-mostly: any number of queries may run over one
session's graph and caches concurrently, but a graph mutation
(``add_edge`` / ``remove_edge`` / ``update_score``) rewrites adjacency and
repairs maintained views in place — interleaving it with an in-flight
traversal would produce torn reads.  The serving layer therefore executes
every query under :meth:`ReadWriteLock.read` and every session mutation
under :meth:`ReadWriteLock.write`: mutations wait for in-flight queries to
finish, and queries submitted after a mutation see the post-mutation graph
(and a moved version counter).  Writers are preferred — a waiting mutation
blocks *new* readers — so a stream of queries cannot starve updates.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Writer-preferring shared/exclusive lock (not upgradeable/reentrant)."""

    __slots__ = ("_cond", "_readers", "_writer", "_writers_waiting")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        """Shared section: excludes writers, admits other readers."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        """Exclusive section: waits out readers, blocks new ones meanwhile."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()
