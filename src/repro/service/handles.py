"""Asynchronous, cancellable query handles.

A :class:`QueryHandle` is the future returned by
``Network.query(...).submit()`` / ``QueryService.submit(...)``: a
thread-safe state machine (``pending -> running -> done/failed``, with
``cancelled`` and ``expired`` exits) whose terminal value is the same
:class:`~repro.core.results.TopKResult` the synchronous ``.run()`` path
returns.  Handles also carry the serving knobs — ``priority`` orders the
scheduler's queue, ``deadline`` expires a submission that waited too long —
and, for ``stream=True`` submissions, a subscription iterator
(:meth:`QueryHandle.updates`) that yields the executor's anytime
:class:`~repro.core.results.StreamUpdate` refinements as they are produced
on the worker.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from typing import Callable, Iterator, List, Optional

from repro.core.request import QueryRequest
from repro.core.results import StreamUpdate, TopKResult
from repro.errors import DeadlineExceededError, QueryCancelledError

__all__ = ["HandleState", "QueryHandle"]


class HandleState(enum.Enum):
    """Lifecycle of a submitted query."""

    PENDING = "pending"  #: queued, not yet picked up by a worker
    RUNNING = "running"  #: executing (or waiting on the session read lock)
    DONE = "done"  #: finished; :meth:`QueryHandle.result` returns
    FAILED = "failed"  #: execution raised; ``result()`` re-raises
    CANCELLED = "cancelled"  #: cancelled before (or, streaming, during) execution
    EXPIRED = "expired"  #: deadline passed while still queued

    @property
    def terminal(self) -> bool:
        return self not in (HandleState.PENDING, HandleState.RUNNING)


class QueryHandle:
    """A future for one submitted query.

    Consumers use :meth:`result`, :meth:`done`, :meth:`cancel`,
    :meth:`exception`, :meth:`add_done_callback`, and — for streaming
    submissions — :meth:`updates`.  The underscore-prefixed transition
    methods are the scheduler/service side of the contract.
    """

    __slots__ = (
        "request",
        "priority",
        "deadline",
        "deadline_at",
        "stream",
        "cached",
        "coalesce_key",
        "submitted_at",
        "_cond",
        "_state",
        "_result",
        "_error",
        "_callbacks",
        "_updates",
        "_abort",
    )

    def __init__(
        self,
        request: QueryRequest,
        *,
        priority: int = 0,
        deadline: Optional[float] = None,
        stream: bool = False,
        cached: bool = True,
    ) -> None:
        self.request = request
        self.priority = int(priority)
        #: The configured queueing deadline in seconds (informational).
        self.deadline: Optional[float] = deadline
        #: Absolute monotonic expiry instant (set by the service at submit).
        self.deadline_at: Optional[float] = None
        self.stream = bool(stream)
        self.cached = bool(cached)
        #: Non-None marks the handle eligible for scan coalescing.
        self.coalesce_key: Optional[object] = None
        self.submitted_at: Optional[float] = None
        self._cond = threading.Condition()
        self._state = HandleState.PENDING
        self._result: Optional[TopKResult] = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["QueryHandle"], None]] = []
        self._updates: "deque[StreamUpdate]" = deque()
        self._abort = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QueryHandle state={self._state.value} "
            f"score={self.request.score!r} k={self.request.k} "
            f"priority={self.priority}>"
        )

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """The current lifecycle state name (``"pending"``, ...)."""
        return self._state.value

    def done(self) -> bool:
        """True once the handle reached any terminal state."""
        return self._state.terminal

    def running(self) -> bool:
        """True while a worker is executing this query."""
        return self._state is HandleState.RUNNING

    def cancelled(self) -> bool:
        """True when the handle ended cancelled (or expired)."""
        return self._state in (HandleState.CANCELLED, HandleState.EXPIRED)

    def cancel(self) -> bool:
        """Cancel if possible; True when the handle will not produce a result.

        A pending handle is cancelled immediately.  A running *streaming*
        handle is cancelled cooperatively: the worker stops at the next
        update.  A running non-streaming execution cannot be interrupted
        (False); an already-cancelled handle reports True idempotently.
        """
        callbacks = None
        with self._cond:
            if self._state is HandleState.PENDING:
                self._error = QueryCancelledError("query cancelled before execution")
                callbacks = self._terminal(HandleState.CANCELLED)
            elif self._state is HandleState.RUNNING and self.stream:
                self._abort = True
                return True
            else:
                return self._state in (HandleState.CANCELLED, HandleState.EXPIRED)
        self._fire(callbacks)
        return True

    def result(self, timeout: Optional[float] = None) -> TopKResult:
        """Block for the answer (the exact ``TopKResult`` ``.run()`` returns).

        Raises the execution error for failed handles,
        :class:`~repro.errors.QueryCancelledError` /
        :class:`~repro.errors.DeadlineExceededError` for cancelled/expired
        ones, and :class:`TimeoutError` when ``timeout`` seconds pass
        without a terminal state (the query keeps running).
        """
        self._wait(timeout)
        with self._cond:
            if self._state is HandleState.DONE:
                assert self._result is not None
                return self._result
            assert self._error is not None
            raise self._error

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The terminal error (None for success); blocks like :meth:`result`."""
        self._wait(timeout)
        with self._cond:
            return self._error

    def add_done_callback(self, fn: Callable[["QueryHandle"], None]) -> None:
        """Run ``fn(handle)`` on the terminal transition (now, if already done).

        Callbacks run on the transitioning thread; exceptions are swallowed.
        """
        with self._cond:
            if not self._state.terminal:
                self._callbacks.append(fn)
                return
        self._fire([fn])

    def updates(self, timeout: Optional[float] = None) -> Iterator[StreamUpdate]:
        """The streaming subscription: yield refinements as they arrive.

        Only submissions made with ``stream=True`` produce updates; the
        iterator drains the live queue and ends when the query reaches a
        terminal state (raising its error if it failed, cancelled, or
        expired mid-stream with no consumer-visible result).  ``timeout``
        bounds each *wait between updates*, not the whole stream.
        """
        if not self.stream:
            raise QueryCancelledError(
                "handle was not submitted with stream=True; call .result() "
                "or submit the query with submit(stream=True)"
            )
        while True:
            with self._cond:
                while not self._updates and not self._state.terminal:
                    if not self._cond.wait(timeout):
                        raise TimeoutError(
                            f"no stream update within {timeout} seconds"
                        )
                if self._updates:
                    update = self._updates.popleft()
                elif self._state is HandleState.DONE:
                    return
                else:
                    assert self._error is not None
                    raise self._error
            yield update

    # ------------------------------------------------------------------
    # Scheduler / service side
    # ------------------------------------------------------------------
    def _expired_now(self, now: float) -> bool:
        return self.deadline_at is not None and now >= self.deadline_at

    def _deadline_error(self) -> DeadlineExceededError:
        configured = (
            f"{self.deadline:.3f}s" if self.deadline is not None else "unset"
        )
        return DeadlineExceededError(
            "query expired in queue before execution "
            f"(deadline was {configured})"
        )

    def _start(self, now: float) -> bool:
        """PENDING -> RUNNING; False when the handle must not execute."""
        callbacks = None
        with self._cond:
            if self._state is not HandleState.PENDING:
                return False
            if self._expired_now(now):
                self._error = self._deadline_error()
                callbacks = self._terminal(HandleState.EXPIRED)
            else:
                self._state = HandleState.RUNNING
                return True
        self._fire(callbacks)
        return False

    def _expire(self, now: float) -> bool:
        """PENDING -> EXPIRED when past the deadline (scheduler sweep)."""
        callbacks = None
        with self._cond:
            if self._state is not HandleState.PENDING or not self._expired_now(now):
                return False
            self._error = self._deadline_error()
            callbacks = self._terminal(HandleState.EXPIRED)
        self._fire(callbacks)
        return True

    def _finish(self, result: TopKResult) -> None:
        with self._cond:
            if self._state.terminal:  # pragma: no cover - defensive
                return
            if self._abort:
                # A streaming consumer cancelled after the last update was
                # pushed: cancel() promised no result, so honor it even
                # though execution completed.
                self._error = QueryCancelledError("stream cancelled by consumer")
                callbacks = self._terminal(HandleState.CANCELLED)
            else:
                self._result = result
                callbacks = self._terminal(HandleState.DONE)
        self._fire(callbacks)

    def _fail(self, error: BaseException) -> None:
        with self._cond:
            if self._state.terminal:  # pragma: no cover - defensive
                return
            self._error = error
            state = (
                HandleState.CANCELLED
                if isinstance(error, QueryCancelledError)
                else HandleState.FAILED
            )
            callbacks = self._terminal(state)
        self._fire(callbacks)

    def _push_update(self, update: StreamUpdate) -> bool:
        """Queue one stream refinement; False when the consumer cancelled."""
        with self._cond:
            if self._abort:
                return False
            self._updates.append(update)
            self._cond.notify_all()
            return True

    # ------------------------------------------------------------------
    def _terminal(self, state: HandleState) -> List[Callable]:
        """(Under lock.)  Move to a terminal state, return due callbacks."""
        self._state = state
        self._cond.notify_all()
        callbacks, self._callbacks = self._callbacks, []
        return callbacks

    def _fire(self, callbacks: Optional[List[Callable]]) -> None:
        for fn in callbacks or ():
            try:
                fn(self)
            except Exception:  # pragma: no cover - callbacks must not wedge
                pass

    def _wait(self, timeout: Optional[float]) -> None:
        """Block until terminal, honoring ``timeout`` and a queued deadline."""
        import time as _time

        end = None if timeout is None else _time.monotonic() + timeout
        callbacks: Optional[List[Callable]] = None
        with self._cond:
            while not self._state.terminal:
                now = _time.monotonic()
                # A waiter observing a blown deadline expires the handle
                # itself — it must not hang on a scheduler that is busy
                # elsewhere (the sweep also catches it, whichever is first).
                if self._state is HandleState.PENDING and self._expired_now(now):
                    self._error = self._deadline_error()
                    callbacks = self._terminal(HandleState.EXPIRED)
                    break
                waits = []
                if end is not None:
                    if now >= end:
                        raise TimeoutError(
                            f"query did not finish within {timeout} seconds"
                        )
                    waits.append(end - now)
                if self.deadline_at is not None and self._state is HandleState.PENDING:
                    waits.append(max(self.deadline_at - now, 0.0))
                self._cond.wait(min(waits) if waits else None)
        self._fire(callbacks)
