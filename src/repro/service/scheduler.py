"""Priority worker pool with admission control and scan coalescing.

The scheduler is deliberately ignorant of graphs and queries: it moves
:class:`~repro.service.handles.QueryHandle` objects from a bounded priority
queue onto worker threads and hands them to two callbacks supplied by the
:class:`~repro.service.QueryService` — ``execute_one(handle)`` for
individual execution and ``execute_group(handles)`` for a coalesced group.

Scheduling rules:

* **Priority.**  Higher ``handle.priority`` is dequeued first; ties are
  FIFO (a monotonic sequence number).
* **Admission control.**  At most ``max_pending`` handles may be queued;
  beyond that :meth:`submit` raises
  :class:`~repro.errors.ServiceOverloadedError` instead of buffering
  without bound.  In-flight work is bounded by the worker count.
* **Deadline sweep.**  A popped handle whose deadline passed while queued
  is expired, never executed (waiters on the handle also expire it
  themselves, whichever notices first).
* **Coalescing.**  When the popped handle carries a non-None
  ``coalesce_key``, every queued handle with the same key (up to
  ``coalesce_limit``) is pulled out of the queue — across priorities; they
  only ever run *earlier* — and the whole group is executed as one batch
  shared scan.  Unrelated concurrent callers thereby amortize one
  node-block expansion without ever knowing of each other.
* **Inline mode.**  ``workers=0`` runs every submission synchronously on
  the submitting thread — zero threads, same handle lifecycle.  This is
  the mode backing the plain ``.run()`` shim.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ServiceOverloadedError, ServiceShutdownError
from repro.service.handles import QueryHandle

__all__ = ["Scheduler"]


class Scheduler:
    """Dispatch handles to workers; coalesce compatible queued requests."""

    def __init__(
        self,
        execute_one: Callable[[QueryHandle], None],
        execute_group: Callable[[Sequence[QueryHandle]], None],
        *,
        workers: int = 0,
        max_pending: int = 1024,
        coalesce_limit: int = 64,
        name: str = "repro-service",
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if coalesce_limit < 2:
            raise ValueError(f"coalesce_limit must be >= 2, got {coalesce_limit}")
        self._execute_one = execute_one
        self._execute_group = execute_group
        self.workers = workers
        self.max_pending = max_pending
        self.coalesce_limit = coalesce_limit
        self._cond = threading.Condition()
        self._heap: List[Tuple[int, int, QueryHandle]] = []
        self._seq = itertools.count()
        self._inflight = 0
        self._shutdown = False
        self._threads: List[threading.Thread] = []
        for i in range(workers):
            thread = threading.Thread(
                target=self._worker, name=f"{name}-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` ran; submissions are rejected."""
        with self._cond:
            return self._shutdown

    @property
    def pending(self) -> int:
        """Queued (not yet dispatched) handles."""
        with self._cond:
            return len(self._heap)

    @property
    def inflight(self) -> int:
        """Handles currently being executed by workers."""
        with self._cond:
            return self._inflight

    def submit(self, handle: QueryHandle) -> None:
        """Queue (or, inline mode, immediately execute) one handle."""
        if self.workers == 0:
            with self._cond:
                if self._shutdown:
                    raise ServiceShutdownError("service has been shut down")
                self._inflight += 1
            try:
                self._execute_one(handle)
            finally:
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()
            return
        with self._cond:
            if self._shutdown:
                raise ServiceShutdownError("service has been shut down")
            if len(self._heap) >= self.max_pending:
                raise ServiceOverloadedError(
                    f"admission control: {len(self._heap)} queries already "
                    f"queued (max_pending={self.max_pending})"
                )
            heapq.heappush(self._heap, (-handle.priority, next(self._seq), handle))
            self._cond.notify()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until the queue is empty and no execution is in flight."""
        end = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._heap or self._inflight:
                remaining = None if end is None else end - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; fail queued handles; optionally join workers."""
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            abandoned = [handle for _, _, handle in self._heap]
            self._heap.clear()
            self._cond.notify_all()
        for handle in abandoned:
            handle._fail(ServiceShutdownError("service shut down before execution"))
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            group = self._next_group()
            if group is None:
                return
            try:
                if len(group) == 1:
                    self._execute_one(group[0])
                else:
                    self._execute_group(group)
            except BaseException as exc:  # the service catches per-query errors;
                # anything landing here would otherwise kill the worker silently.
                for handle in group:
                    if not handle.done():
                        handle._fail(exc)
            finally:
                with self._cond:
                    self._inflight -= len(group)
                    self._cond.notify_all()

    def _next_group(self) -> Optional[List[QueryHandle]]:
        """Block for the next dispatchable handle (plus coalesced friends)."""
        with self._cond:
            while True:
                if self._shutdown:
                    return None
                head = self._pop_live()
                if head is None:
                    self._cond.wait()
                    continue
                group = [head]
                if head.coalesce_key is not None:
                    group.extend(self._drain_key(head.coalesce_key))
                self._inflight += len(group)
                self._cond.notify_all()
                return group

    def _pop_live(self) -> Optional[QueryHandle]:
        """(Under lock.)  Pop the best queued handle that should still run."""
        now = time.monotonic()
        while self._heap:
            _, _, handle = heapq.heappop(self._heap)
            if handle._expire(now):
                continue  # deadline blown while queued
            if handle.done():
                continue  # cancelled while queued
            return handle
        return None

    def _drain_key(self, key: object) -> List[QueryHandle]:
        """(Under lock.)  Remove queued live handles sharing ``key``."""
        now = time.monotonic()
        taken: List[QueryHandle] = []
        kept: List[Tuple[int, int, QueryHandle]] = []
        for entry in self._heap:
            handle = entry[2]
            if (
                len(taken) < self.coalesce_limit - 1
                and handle.coalesce_key == key
                and not handle.done()
                and not handle._expire(now)
            ):
                taken.append(handle)
            else:
                kept.append(entry)
        if taken:
            heapq.heapify(kept)
            self._heap = kept
        return taken
