"""The serving front door: submit queries, get handles back.

:class:`QueryService` binds one :class:`~repro.session.Network` session to
a :class:`~repro.service.scheduler.Scheduler`, a
:class:`~repro.service.cache.ResultCache`, and a readers-writer lock, and
exposes exactly one verb::

    service = net.service(workers=4)          # or QueryService(net, workers=4)
    handle = service.submit(net.query("pagerank").limit(10))
    ...
    top = handle.result(timeout=1.0)

Every submission lowers to the same frozen
:class:`~repro.core.request.QueryRequest` the synchronous paths use and
executes through ``Network._run`` — i.e. behind ``executor.execute``, the
seam the ROADMAP designates for serving strategies.  Three things happen on
the way that ``.run()`` alone never did:

* **Coalescing** (workers > 0): compatible concurrently-queued requests —
  plain density-routable shapes per
  :func:`repro.core.batch.coalescible_request` — are executed as *one*
  fused batch shared scan, so independent callers amortize node-block
  expansions.
* **Result caching**: answers are memoized under a graph-version +
  score-epoch key and served without re-execution until a mutation moves
  the version (``cached=False`` opts a submission out, which is how the
  ``.run()`` shim preserves its legacy execute-every-time semantics).
* **Isolation**: queries run under the read side of a writer-preferring
  lock; session mutations take the write side, so a mutation can never
  tear an in-flight traversal.

``workers=0`` (the default the session creates lazily) executes inline on
the submitting thread — the same lifecycle, admission, and caching with
zero threads.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Union

from repro.config import ServiceConfig
from repro.core.batch import BatchQuery, coalescible_request
from repro.core.deadline import deadline_scope
from repro.core.request import QueryRequest
from repro.core.results import QueryStats, TopKResult
from repro.errors import InvalidParameterError
from repro.service.cache import ResultCache
from repro.service.handles import QueryHandle
from repro.service.locks import ReadWriteLock
from repro.service.scheduler import Scheduler
from repro.service.stats import ServiceStats

__all__ = ["QueryService"]


class QueryService:
    """Handle-based asynchronous query execution over one session."""

    def __init__(
        self,
        network,
        config: Optional[ServiceConfig] = None,
        **options: object,
    ) -> None:
        # One schema for every entry point: a ServiceConfig (or mapping)
        # positionally, or the legacy bare keywords — both normalize here,
        # so unknown option names fail with the valid ones listed.
        cfg = ServiceConfig.coerce(config, options)
        self.config = cfg
        self._net = network
        self._stats = ServiceStats()
        self.cache = ResultCache(cfg.cache_entries)
        self._rw = ReadWriteLock()
        self._coalesce = cfg.coalesce and cfg.workers > 0
        # Process mode: compute runs on the session's parallel engine —
        # ``workers`` worker *processes* over shared-memory CSR shards —
        # while the scheduler threads only dispatch/merge.  Requests that
        # explicitly pinned a backend keep it; everything else is rewritten
        # to the "parallel" backend at execution time (the cache key stays
        # the original request — same answer either way).
        self._processes = cfg.processes
        # Cluster mode is the same lane policy over the socket-cluster
        # engine: unpinned requests are rewritten to "cluster" and execute
        # on remote cluster-worker processes.  ServiceConfig rejects
        # processes+cluster together, so at most one rewrite applies.
        self._cluster = cfg.cluster
        if self._cluster:
            # net.cluster(...) wins when the session configured the engine
            # explicitly; otherwise the default (2 local spawned workers)
            # is created lazily on the first cluster execution.
            network._ctx.cluster_engine()
        if self._processes:
            # Size the worker-process pool to the service — unless the
            # session explicitly configured the engine (net.parallel(...)
            # wins).  ``workers`` counts scheduler threads; below 2 it is
            # no statement about process parallelism, so the engine falls
            # back to its cpu-count default rather than a 1-process pool
            # that could only decline.
            import os as _os

            ctx = network._ctx
            if not ctx.parallel_configured():
                desired = (
                    cfg.workers if cfg.workers >= 2 else (_os.cpu_count() or 1)
                )
                if (
                    not ctx.has_parallel_engine()
                    or ctx.parallel_engine().workers != desired
                ):
                    ctx.parallel_engine(_remember=False, workers=desired)
            else:
                ctx.parallel_engine()
        self._scheduler = Scheduler(
            self._execute_one,
            self._execute_group,
            workers=cfg.workers,
            max_pending=cfg.max_pending,
            coalesce_limit=cfg.coalesce_limit,
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Worker-thread count (0 = inline execution on the caller)."""
        return self._scheduler.workers

    @property
    def closed(self) -> bool:
        """True once shut down (the session then creates a fresh service)."""
        return self._scheduler.closed

    def submit(
        self,
        query: Union[QueryRequest, object],
        *,
        priority: Optional[int] = None,
        deadline: Optional[float] = None,
        stream: bool = False,
        cached: bool = True,
    ) -> QueryHandle:
        """Submit one query; returns its :class:`QueryHandle` immediately.

        ``query`` is a :class:`~repro.session.QueryBuilder` or an
        already-lowered :class:`QueryRequest`.  ``priority``/``deadline``
        default to the request's own fields (the builder's ``.priority()``
        / ``.deadline()``); ``deadline`` is seconds from submission after
        which a still-queued query expires.  ``stream=True`` produces
        anytime refinements on :meth:`QueryHandle.updates` (never coalesced
        or cached); ``cached=False`` bypasses the result cache both ways.

        Raises :class:`~repro.errors.ServiceOverloadedError` when admission
        control rejects the submission.
        """
        if isinstance(query, QueryRequest):
            request = query
        else:
            lower = getattr(query, "request", None)
            if lower is None:
                raise InvalidParameterError(
                    "submit() takes a QueryBuilder or a QueryRequest, "
                    f"got {type(query).__name__}"
                )
            request = lower()
        self._net.scores_of(request.score)  # unknown scores fail at submit
        if stream:
            # executor.stream validates eagerly (algorithm/knob/context
            # checks) and only then returns the generator; running it here
            # surfaces misuse at the call site instead of inside a worker.
            # The generator is discarded — the worker builds its own.
            self._net._stream(request)
        handle = QueryHandle(
            request,
            priority=request.priority if priority is None else int(priority),
            deadline=request.deadline if deadline is None else float(deadline),
            stream=stream,
            cached=cached,
        )
        now = time.monotonic()
        handle.submitted_at = now
        if handle.deadline is not None:
            if handle.deadline <= 0:
                raise InvalidParameterError(
                    f"deadline must be a positive number of seconds, "
                    f"got {handle.deadline}"
                )
            handle.deadline_at = now + float(handle.deadline)
        if self._coalesce and not stream and self._coalescible(request):
            # Requests of one *shape* (identity minus score/k) are the ones
            # a single fused shared scan can answer together — the same key
            # the replica router hashes, so routing concentrates coalesce
            # partners on one service instead of spraying them.
            handle.coalesce_key = request.shape_key()
        handle.add_done_callback(self._count_terminal)
        self._stats.incr("submitted")
        try:
            self._scheduler.submit(handle)
        except Exception:
            self._stats.incr("rejected")
            raise
        return handle

    def submit_all(
        self, queries: Iterable[Union[QueryRequest, object]], **options
    ) -> List[QueryHandle]:
        """Submit many queries (same options); returns their handles."""
        return [self.submit(query, **options) for query in queries]

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One monitoring payload: serving counters, queue gauges, caches."""
        payload = dict(self._stats.snapshot())
        payload["workers"] = self.workers
        payload["processes"] = self._processes
        payload["cluster_mode"] = self._cluster
        payload["pending"] = self._scheduler.pending
        payload["inflight"] = self._scheduler.inflight
        payload["result_cache"] = self.cache.stats()
        payload["session_caches"] = self._net._ctx.cache_stats()
        if self._net._ctx.has_parallel_engine():
            payload["parallel"] = self._net._ctx.parallel_engine().stats()
        if self._net._ctx.has_cluster_engine():
            # Includes the measured communication totals and the last
            # query's per-round MessageStats twin (``last_comm``).
            payload["cluster"] = self._net._ctx.cluster_engine().stats()
        return payload

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every queued/in-flight query to finish."""
        return self._scheduler.drain(timeout)

    def invalidate(self, score: Optional[str] = None) -> int:
        """Evict cached results after a session mutation.

        ``score=None`` (graph mutations) drops everything; a score name
        (``update_score`` / ``add_scores``) drops only that score's
        entries, so hot answers over unrelated scores keep serving.
        """
        if score is None:
            return self.cache.clear()
        return self.cache.invalidate_score(score)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting submissions; fail queued handles; join workers."""
        self._scheduler.shutdown(wait=wait)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QueryService workers={self.workers} "
            f"pending={self._scheduler.pending} "
            f"inflight={self._scheduler.inflight}>"
        )

    # ------------------------------------------------------------------
    # Execution (scheduler callbacks)
    # ------------------------------------------------------------------
    def _coalescible(self, request: QueryRequest) -> bool:
        net = self._net
        return coalescible_request(
            request,
            hops=net.hops,
            include_self=net.include_self,
            backend=net.backend,
        )

    def _effective_request(self, request: QueryRequest) -> QueryRequest:
        """Process/cluster mode rewrites unpinned requests to its backend."""
        if (
            self._processes
            and request.backend != "parallel"
            and not request.is_pinned("backend")
        ):
            return request.replace(backend="parallel")
        if (
            self._cluster
            and request.backend != "cluster"
            and not request.is_pinned("backend")
        ):
            return request.replace(backend="cluster")
        return request

    def _version_token(self, score: str) -> tuple:
        net = self._net
        return (getattr(net.graph, "version", None), net._score_epoch(score))

    def _cache_key(self, request: QueryRequest) -> tuple:
        # Layout is (version token, score name, canonical key): the score
        # name sits at a fixed slot so ResultCache.invalidate_score never
        # has to parse the canonical key, and the canonical key (rather
        # than the request object) means a request decoded from the wire
        # and one lowered locally land on the same entry.  The canonical
        # key includes `pinned` — a pinned-knob variant must never be
        # served the unpinned request's cached answer in place of its
        # validation error.
        return (
            self._version_token(request.score),
            request.score,
            request.canonical_key(),
        )

    def _count_terminal(self, handle: QueryHandle) -> None:
        self._stats.incr(
            {
                "done": "completed",
                "failed": "failed",
                "cancelled": "cancelled",
                "expired": "expired",
            }[handle.state]
        )

    def _serve_cached(self, handle: QueryHandle, key: tuple) -> bool:
        """Finish ``handle`` from the result cache; False on a miss."""
        if not handle.cached:
            return False
        hit = self.cache.get(key)
        if hit is None:
            self._stats.incr("cache_misses")
            return False
        self._stats.incr("cache_hits")
        handle._finish(hit)
        return True

    def _execute_one(self, handle: QueryHandle) -> None:
        if not handle._start(time.monotonic()):
            return
        with self._rw.read():
            # The key is computed once, before execution: mutations are
            # excluded while we hold the read lock, and a result must
            # never be stored under a key minted *after* it ran (a racing
            # mutation between run and put would then serve it stale).
            key = self._cache_key(handle.request)
            try:
                if not handle.stream and self._serve_cached(handle, key):
                    return
                # The handle's absolute deadline travels into the kernels:
                # block loops call check_deadline() and abort mid-scan
                # instead of finishing an answer nobody is waiting for.
                with deadline_scope(handle.deadline_at):
                    if handle.stream:
                        result = self._run_stream(handle)
                        if result is None:  # cancelled mid-stream
                            return
                    else:
                        result = self._net._run(
                            self._effective_request(handle.request)
                        )
                if not handle.stream and handle.cached:
                    self.cache.put(key, result)
                handle._finish(result)
            except Exception as exc:
                handle._fail(exc)

    def _execute_group(self, handles: Sequence[QueryHandle]) -> None:
        now = time.monotonic()
        live = [h for h in handles if h._start(now)]
        if not live:
            return
        with self._rw.read():
            keys = {h: self._cache_key(h.request) for h in live}
            try:
                missing = [h for h in live if not self._serve_cached(h, keys[h])]
                if not missing:
                    return
                queries = [
                    BatchQuery(
                        scores=self._net.scores_of(h.request.score),
                        k=h.request.k,
                        aggregate=h.request.aggregate,
                    )
                    for h in missing
                ]
                # Process mode only reroutes the group when no member
                # explicitly pinned a backend — the same "pins win"
                # contract the single-query path honors.  (Pins to a
                # backend other than the session's are never coalescible,
                # so a pinned member here pinned the session backend.)
                unpinned = all(
                    not h.request.is_pinned("backend") for h in missing
                )
                group_backend = None
                if unpinned and self._processes:
                    group_backend = "parallel"
                elif unpinned and self._cluster:
                    group_backend = "cluster"
                results = self._net._run_batch(
                    queries, backend=group_backend
                )
                if len(missing) > 1:
                    self._stats.incr("coalesced_batches")
                    self._stats.incr("coalesced_queries", len(missing))
                for handle, result in zip(missing, results):
                    result.stats.extra["coalesced_group"] = float(len(missing))
                    if handle.cached:
                        self.cache.put(keys[handle], result)
                    handle._finish(result)
            except Exception as exc:
                for handle in live:
                    if not handle.done():
                        handle._fail(exc)

    def _run_stream(self, handle: QueryHandle) -> Optional[TopKResult]:
        """Drive the anytime executor, feeding the handle's subscription."""
        from repro.errors import QueryCancelledError

        start = time.perf_counter()
        request = handle.request
        last = None
        evaluated = 0
        for update in self._net._stream(request):
            if not handle._push_update(update):
                handle._fail(QueryCancelledError("stream cancelled by consumer"))
                return None
            last = update
            evaluated = update.evaluated
        stats = QueryStats(
            algorithm="stream",
            aggregate=request.aggregate.value,
            hops=request.hops,
            k=request.k,
            elapsed_sec=time.perf_counter() - start,
            nodes_evaluated=evaluated,
        )
        entries = list(last.entries) if last is not None else []
        return TopKResult(entries=entries, stats=stats)
