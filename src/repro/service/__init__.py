"""Concurrent serving surface: async query handles over one session.

The ROADMAP's north star is a system serving heavy traffic, and the paper
frames top-k aggregation as a *middleware* problem (Fagin's TA); this
package is the serving layer that turns the strictly synchronous
``Network`` facade into a concurrency-first surface:

* :class:`QueryHandle` (:mod:`repro.service.handles`) — a cancellable
  future with ``result(timeout=)`` / ``cancel()`` / ``done()``, deadline
  and priority knobs, and a streaming subscription.
* :class:`QueryService` (:mod:`repro.service.service`) — the front door:
  ``service.submit(builder_or_request)`` lowers to the same frozen
  ``QueryRequest`` every other path uses and executes it behind
  ``executor.execute``.
* the scheduler (:mod:`repro.service.scheduler`) — a priority worker pool
  with admission control that *coalesces* compatible concurrently-queued
  requests into one fused batch shared scan, so unrelated callers
  transparently amortize node-block expansions.
* the result cache (:mod:`repro.service.cache`) — graph-version-keyed, so
  repeated hot queries are served without re-execution and dynamic
  mutations can never serve a stale answer.

``Network.query(...).submit()`` and ``Network.service(workers=N)`` are the
session-side entry points; ``.run()`` is the synchronous shim
``submit().result()`` over the same machinery.
"""

from repro.service.cache import ResultCache
from repro.service.handles import HandleState, QueryHandle
from repro.service.locks import ReadWriteLock
from repro.service.scheduler import Scheduler
from repro.service.service import QueryService
from repro.service.stats import ServiceStats

__all__ = [
    "QueryService",
    "QueryHandle",
    "HandleState",
    "ResultCache",
    "Scheduler",
    "ServiceStats",
    "ReadWriteLock",
]
