"""Concurrent serving surface: async query handles over one session.

The ROADMAP's north star is a system serving heavy traffic, and the paper
frames top-k aggregation as a *middleware* problem (Fagin's TA); this
package is the serving layer that turns the strictly synchronous
``Network`` facade into a concurrency-first surface:

* :class:`QueryHandle` (:mod:`repro.service.handles`) — a cancellable
  future with ``result(timeout=)`` / ``cancel()`` / ``done()``, deadline
  and priority knobs, and a streaming subscription.
* :class:`QueryService` (:mod:`repro.service.service`) — the front door:
  ``service.submit(builder_or_request)`` lowers to the same frozen
  ``QueryRequest`` every other path uses and executes it behind
  ``executor.execute``.
* the scheduler (:mod:`repro.service.scheduler`) — a priority worker pool
  with admission control that *coalesces* compatible concurrently-queued
  requests into one fused batch shared scan, so unrelated callers
  transparently amortize node-block expansions.
* the result cache (:mod:`repro.service.cache`) — graph-version-keyed, so
  repeated hot queries are served without re-execution and dynamic
  mutations can never serve a stale answer.

``Network.query(...).submit()`` and ``Network.service(workers=N)`` are the
session-side entry points; ``.run()`` is the synchronous shim
``submit().result()`` over the same machinery.
"""

from repro.service.cache import ResultCache
from repro.service.handles import HandleState, QueryHandle
from repro.service.locks import ReadWriteLock
from repro.service.scheduler import Scheduler
from repro.service.service import QueryService
from repro.service.stats import ServiceStats

__all__ = [
    "QueryService",
    "QueryHandle",
    "HandleState",
    "ResultCache",
    "Scheduler",
    "ServiceStats",
    "ReadWriteLock",
]

#: Exceptions that used to be importable from this package.  The unified
#: taxonomy lives in :mod:`repro.errors` (one stable-code registry, one
#: wire round-trip); these names keep resolving here as deprecation shims.
_DEPRECATED_ERRORS = (
    "ServiceError",
    "ServiceOverloadedError",
    "QueryCancelledError",
    "DeadlineExceededError",
    "ServiceShutdownError",
    "QuotaExceededError",
    "RateLimitedError",
)


def __getattr__(name: str):
    if name in _DEPRECATED_ERRORS:
        import warnings

        from repro import errors

        warnings.warn(
            f"importing {name} from repro.service is deprecated; "
            f"import it from repro.errors",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(errors, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
