"""Graph-version-keyed result cache for hot queries.

Serving workloads repeat themselves: the same (score, k, aggregate, knobs)
request arrives again and again while the graph stands still.  The
:class:`ResultCache` memoizes full :class:`~repro.core.results.TopKResult`
answers under a key that embeds (1) the graph's version counter, (2) the
session's per-score *epoch* (bumped whenever a named vector is replaced or
a node's score is updated), and (3) the frozen
:class:`~repro.core.request.QueryRequest` itself — whose hash deliberately
excludes the serving metadata (priority/deadline/pinned), so two callers
asking the same question at different urgencies share one entry.  Any
dynamic mutation moves component (1) or (2), making every stale entry
unreachable; the session additionally evicts dead entries so they do not
linger in memory — :meth:`ResultCache.clear` on graph mutations (every
entry's version moved), :meth:`ResultCache.invalidate_score` on score
mutations (only that score's epoch moved; unrelated scores keep serving
from cache).

Entries are stored and served as *defensive copies* (fresh ``entries``
list, fresh stats with ``extra["result_cache"] = 1.0`` on hits), so a
caller mutating its result can never poison another caller's answer.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional

from repro.core.results import TopKResult

__all__ = ["ResultCache"]


def _key_score(key: Hashable) -> Optional[str]:
    """The score name embedded in a service cache key (None if absent).

    Keys are the service's ``(version token, score name, canonical
    request key)`` tuples — the score name is carried explicitly in slot 1
    so per-score invalidation never has to parse the canonical key.
    """
    if isinstance(key, tuple) and len(key) >= 2 and isinstance(key[1], str):
        return key[1]
    return None


def _copy_result(result: TopKResult, *, hit: bool) -> TopKResult:
    stats = copy.copy(result.stats)
    stats.extra = dict(stats.extra)
    if hit:
        stats.extra["result_cache"] = 1.0
    return TopKResult(entries=list(result.entries), stats=stats)


class ResultCache:
    """A bounded LRU of query answers (``max_entries=0`` disables caching)."""

    __slots__ = (
        "max_entries",
        "_lock",
        "_entries",
        "hits",
        "misses",
        "evictions",
        "invalidations",
        "score_invalidations",
    )

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, TopKResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.score_invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[TopKResult]:
        """The cached answer for ``key`` (a fresh copy), or None."""
        with self._lock:
            if self.max_entries == 0:
                self.misses += 1
                return None
            cached = self._entries.get(key)
            if cached is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return _copy_result(cached, hit=True)

    def put(self, key: Hashable, result: TopKResult) -> None:
        """Store an answer (a private copy) under ``key``, evicting LRU."""
        if self.max_entries == 0:
            return
        snapshot = _copy_result(result, hit=False)
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = snapshot
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> int:
        """Drop everything (a graph mutation); returns entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self.invalidations += 1
            return dropped

    def invalidate_score(self, score: str) -> int:
        """Drop only the entries answering queries over ``score``.

        ``update_score``/``add_scores`` move exactly one score's epoch, so
        only that score's entries are dead; every other score's answers
        stay resident and keep hitting — the point of per-score (rather
        than whole-cache) invalidation under mixed serving workloads.
        Stale entries would be unreachable anyway (the epoch lives in the
        key); eviction here is about not letting dead entries occupy LRU
        capacity that live ones could use.
        """
        with self._lock:
            doomed = [
                key for key in self._entries if _key_score(key) == score
            ]
            for key in doomed:
                del self._entries[key]
            if doomed:
                self.score_invalidations += 1
            return len(doomed)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/invalidation counters plus occupancy."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "score_invalidations": self.score_invalidations,
            }
