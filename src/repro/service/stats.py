"""Thread-safe serving counters.

One :class:`ServiceStats` instance per :class:`~repro.service.QueryService`
tallies the lifecycle of every submission (admitted / completed / failed /
cancelled / expired / rejected), the scheduler's coalescing wins, and the
result-cache traffic.  :meth:`ServiceStats.snapshot` returns a plain dict
so ``QueryService.stats()`` can merge in the scheduler gauges and the
session ball-cache counters for one monitoring payload.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["ServiceStats"]

#: Counter names, in reporting order.
_COUNTERS = (
    "submitted",
    "completed",
    "failed",
    "cancelled",
    "expired",
    "rejected",
    "coalesced_batches",
    "coalesced_queries",
    "cache_hits",
    "cache_misses",
)


class ServiceStats:
    """Monotonic serving counters, safe to bump from any worker thread."""

    __slots__ = ("_lock", "_counts")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in _COUNTERS}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to one counter (must be a known counter name)."""
        with self._lock:
            self._counts[name] += amount

    def get(self, name: str) -> int:
        """One counter's current value."""
        with self._lock:
            return self._counts[name]

    def snapshot(self) -> Dict[str, int]:
        """A consistent copy of every counter."""
        with self._lock:
            return dict(self._counts)
