"""One front door: the ``Network`` session and its fluent query builder.

The paper frames LONA as a *query system* — offline indexes, a planner, and
interchangeable algorithms.  :class:`Network` is that system's session
object: it owns the graph, any number of *named* score vectors, and all the
shared caches (differential index, neighborhood-size index, CSR views), and
exposes every execution mode through one immutable builder::

    from repro import Network

    net = Network(graph, hops=2)
    net.add_scores("pagerank", pagerank_vector)
    net.add_scores("spam", BinaryRelevance(0.02, seed=7))

    # single query, fluent and declarative
    top = (
        net.query("pagerank")
        .aggregate("avg")
        .where(lambda v: v % 2 == 0)   # or an explicit node set
        .limit(10)
        .backend("numpy")
        .run()
    )

    # anytime consumption: monotonically refining top-k states
    for update in net.query("spam").limit(5).stream():
        if update.bound < alert_threshold:
            break

    # cost-based plan without executing
    print(net.query("pagerank").limit(10).explain().explain())

    # heavy workloads: one shared scan for many queries
    batch = net.batch([
        net.query("pagerank").limit(10),
        net.query("spam").limit(5).aggregate("count"),
    ])

    # dynamic graphs: maintained views repaired through the session
    net.maintain("spam")
    net.add_edge(3, 9)
    live = net.query("spam").limit(5).algorithm("view").run()

    # concurrent serving: async handles over a coalescing scheduler
    net.service(workers=4)
    handle = net.query("pagerank").limit(10).submit(priority=5, deadline=1.0)
    top = handle.result(timeout=2.0)

Builders are immutable — every method returns a new builder — so partial
queries can be shared, parameterized, and replayed.  ``run()`` lowers the
builder to a frozen :class:`~repro.core.request.QueryRequest` and dispatches
through the single executor in :mod:`repro.core.executor`; ``stream()``,
``explain()`` and :meth:`Network.batch` fan the same request out to the
incremental, planning, and shared-scan paths.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack, nullcontext
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.aggregates.functions import AggregateKind, coerce_aggregate
from repro.core import executor
from repro.core.backends import resolve_backend
from repro.core.batch import BatchQuery, BatchResult, BatchTopKEngine
from repro.core.context import GraphContext
from repro.core.planner import ExecutionPlan, QueryPlanner
from repro.core.query import QuerySpec
from repro.core.request import DEFAULT_SCORE, QueryRequest, normalize_candidates
from repro.core.results import QueryStats, StreamUpdate, TopKResult
from repro.core.topk import TopKAccumulator
from repro.errors import InvalidParameterError
from repro.graph.diffindex import DifferentialIndex
from repro.graph.graph import Graph
from repro.relevance.base import ScoreVector

__all__ = ["Network", "QueryBuilder"]

#: Builder fields that ``_with`` may set (mirrors QueryRequest's surface).
_BUILDER_FIELDS = (
    "k",
    "aggregate",
    "algorithm",
    "backend",
    "candidates",
    "gamma",
    "distribution_fraction",
    "exact_sizes",
    "ordering",
    "seed",
    "priority",
    "deadline",
)


class QueryBuilder:
    """Immutable fluent builder for one top-k query over a session.

    Obtained from :meth:`Network.query`; every refinement method returns a
    *new* builder, so intermediate shapes are safely shareable.  Terminal
    methods: :meth:`run` (exact answer), :meth:`stream` (anytime
    refinements), :meth:`explain` (cost-based plan), :meth:`request`
    (the lowered frozen :class:`~repro.core.request.QueryRequest`).
    """

    __slots__ = ("_net", "_score", "_fields")

    def __init__(
        self, net: "Network", score: str, fields: Optional[dict] = None
    ) -> None:
        self._net = net
        self._score = score
        self._fields: dict = dict(fields) if fields else {}

    def _with(self, **changes: object) -> "QueryBuilder":
        for name in changes:
            if name not in _BUILDER_FIELDS:  # pragma: no cover - internal
                raise InvalidParameterError(f"unknown builder field {name!r}")
        merged = dict(self._fields)
        merged.update(changes)
        return QueryBuilder(self._net, self._score, merged)

    # -- refinements ---------------------------------------------------
    def limit(self, k: int) -> "QueryBuilder":
        """How many nodes to return (the paper's ``k``)."""
        return self._with(k=int(k))

    def k(self, k: int) -> "QueryBuilder":
        """Alias of :meth:`limit`."""
        return self.limit(k)

    def hops(self, hops: int) -> "QueryBuilder":
        """Neighborhood radius ``h``.

        Must match the session's radius — the shared indexes are built for
        one ``h``; sessions with a different radius are cheap to create.
        """
        if hops != self._net.hops:
            raise InvalidParameterError(
                f"session built for hops={self._net.hops}; create a "
                f"Network(graph, hops={hops}) for a different radius"
            )
        return self._with()

    def aggregate(
        self, aggregate: Union[str, AggregateKind]
    ) -> "QueryBuilder":
        """SUM / AVG (the paper's two), or COUNT / MAX / MIN extensions."""
        return self._with(aggregate=coerce_aggregate(aggregate))

    def where(
        self,
        predicate_or_nodes: Union[Callable[[int], bool], Iterable[int]],
    ) -> "QueryBuilder":
        """Restrict the competitors to a node set or predicate over nodes.

        Accepts either an iterable of node ids or a callable
        ``predicate(node) -> bool`` evaluated over the graph's nodes.
        Successive ``where`` calls intersect.
        """
        if callable(predicate_or_nodes):
            selected = tuple(
                u for u in self._net.graph.nodes() if predicate_or_nodes(u)
            )
        else:
            selected = normalize_candidates(predicate_or_nodes)
            for u in selected:
                if u >= self._net.graph.num_nodes:
                    raise InvalidParameterError(
                        f"candidate node {u} not in graph "
                        f"(num_nodes={self._net.graph.num_nodes})"
                    )
        previous = self._fields.get("candidates")
        if previous is not None:
            selected = tuple(sorted(set(previous) & set(selected)))
        return self._with(candidates=selected)

    def algorithm(self, algorithm: str) -> "QueryBuilder":
        """Pin the algorithm (``auto``/``planned``/``base``/``forward``/
        ``backward``/``relational``/``view``)."""
        return self._with(algorithm=str(algorithm))

    def backend(self, backend: str) -> "QueryBuilder":
        """Pin the execution backend (``auto``/``python``/``numpy``/
        ``native``/``parallel``/``cluster``).  ``auto`` prefers the
        compiled ``native`` tier when numba is importable, then ``numpy``,
        then ``python``."""
        return self._with(backend=str(backend))

    def gamma(self, gamma: Union[str, float]) -> "QueryBuilder":
        """LONA-Backward distribution threshold (``"auto"`` or [0, 1])."""
        return self._with(gamma=gamma)

    def distribution_fraction(self, fraction: float) -> "QueryBuilder":
        """LONA-Backward auto-gamma fraction (see the paper's Sec. IV)."""
        return self._with(distribution_fraction=float(fraction))

    def exact_sizes(self, exact: bool = True) -> "QueryBuilder":
        """Force the exact ``N(v)`` index in LONA-Backward."""
        return self._with(exact_sizes=bool(exact))

    def ordering(self, ordering: str) -> "QueryBuilder":
        """LONA-Forward queue order (see :mod:`repro.core.ordering`)."""
        return self._with(ordering=str(ordering))

    def seed(self, seed: int) -> "QueryBuilder":
        """Seed for the ``"random"`` ordering."""
        return self._with(seed=int(seed))

    def priority(self, priority: int) -> "QueryBuilder":
        """Scheduler priority (higher is dequeued first; default 0)."""
        return self._with(priority=int(priority))

    def deadline(self, seconds: float) -> "QueryBuilder":
        """Queueing deadline: expire if not started ``seconds`` after submit."""
        return self._with(deadline=float(seconds))

    # -- lowering & terminals ------------------------------------------
    @property
    def score(self) -> str:
        """The session score name this builder aggregates."""
        return self._score

    def request(self) -> QueryRequest:
        """Lower to the frozen :class:`QueryRequest` the executor consumes."""
        if "k" not in self._fields:
            raise InvalidParameterError(
                "no result size set; call .limit(k) before running"
            )
        return QueryRequest(
            score=self._score,
            hops=self._net.hops,
            include_self=self._net.include_self,
            backend=self._fields.get("backend", self._net.backend),  # type: ignore[arg-type]
            # The set-fields mask: exactly what this builder pinned, so the
            # executor can reject default-valued knob pins too.
            pinned=frozenset(self._fields),
            **{
                name: self._fields[name]
                for name in _BUILDER_FIELDS
                if name != "backend" and name in self._fields
            },
        )

    def spec(self) -> QuerySpec:
        """The plain :class:`QuerySpec` view of this builder."""
        return self.request().spec()

    def run(self) -> TopKResult:
        """Execute and return the exact :class:`TopKResult`.

        A trivial ``submit().result()`` shim over the serving layer —
        result caching is bypassed so every ``.run()`` executes (legacy
        semantics: repeated runs observe warming session caches in their
        stats).  On a session without a started worker pool the submission
        executes inline on this thread.
        """
        return self._net.service().submit(self.request(), cached=False).result()

    def submit(
        self,
        *,
        priority: Optional[int] = None,
        deadline: Optional[float] = None,
        stream: bool = False,
        cached: bool = True,
    ):
        """Submit asynchronously; returns a :class:`~repro.service.QueryHandle`.

        The handle offers ``result(timeout=)`` / ``cancel()`` / ``done()``
        and, with ``stream=True``, the ``updates()`` subscription.
        ``priority``/``deadline`` default to this builder's ``.priority()``
        / ``.deadline()`` settings.  Submissions go through the session's
        :class:`~repro.service.QueryService` (start a concurrent pool with
        ``net.service(workers=...)``), where compatible queued queries are
        coalesced into shared scans and hot answers are served from the
        version-keyed result cache (``cached=False`` opts out).
        """
        return self._net.service().submit(
            self.request(),
            priority=priority,
            deadline=deadline,
            stream=stream,
            cached=cached,
        )

    def stream(self) -> Iterator[StreamUpdate]:
        """Execute incrementally: monotonically refining top-k states.

        Yields :class:`~repro.core.results.StreamUpdate` objects whose
        snapshots converge to :meth:`run`'s answer; safe to abandon at any
        point (anytime semantics).
        """
        return self._net._stream(self.request())

    def explain(self, *, amortize_index: bool = True) -> ExecutionPlan:
        """The cost-based plan for this query, without executing."""
        return self._net._plan(self.request(), amortize_index=amortize_index)


#: Builder methods that terminate (or merely inspect) a query rather than
#: refine it, plus the ones ``Network.topk`` surfaces as positional
#: parameters.  Everything else on the builder surface is a refinement.
_BUILDER_TERMINALS = frozenset(
    {"run", "submit", "stream", "explain", "request", "spec"}
)
_TOPK_POSITIONAL = frozenset({"limit", "k", "aggregate", "hops"})


def _builder_refinements() -> frozenset:
    """``Network.topk``'s option whitelist, derived from the builder surface.

    Every public callable on :class:`QueryBuilder` that is neither a
    terminal nor covered by ``topk``'s positional parameters is a refinement
    ``topk(..., name=value)`` forwards as ``builder.name(value)``.  Deriving
    the set keeps the one-shot surface in lockstep with the fluent one — a
    new builder refinement needs no hand-kept whitelist edit.
    """
    return frozenset(
        name
        for name, member in vars(QueryBuilder).items()
        if not name.startswith("_")
        and callable(member)
        and name not in _BUILDER_TERMINALS
        and name not in _TOPK_POSITIONAL
    )


class Network:
    """A query session over one graph: named scores, shared caches, one API.

    Parameters
    ----------
    graph:
        The network — an immutable :class:`~repro.graph.graph.Graph` or a
        :class:`~repro.dynamic.graph.DynamicGraph` (mutations then flow
        through :meth:`add_edge` / :meth:`remove_edge` /
        :meth:`update_score`, which repair any maintained views and
        invalidate stale caches automatically).
    hops / include_self:
        The session's neighborhood definition; all indexes are built for it.
    backend:
        Default execution backend for queries (builders may override).
    auto_density_threshold:
        Score density below which ``algorithm="auto"`` picks backward.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        hops: int = 2,
        include_self: bool = True,
        backend: str = "auto",
        auto_density_threshold: float = 0.2,
    ) -> None:
        resolve_backend(backend)  # fail fast on unknown/unavailable backends
        self.graph = graph
        self.hops = hops
        self.include_self = include_self
        self.backend = backend
        self.auto_density_threshold = auto_density_threshold
        self._ctx = GraphContext(graph, hops=hops, include_self=include_self)
        self._scores: Dict[str, ScoreVector] = {}
        self._planners: Dict[str, Tuple[QueryPlanner, bool, object]] = {}
        self._views: Dict[str, object] = {}
        # Serving state: the lazily created QueryService, a per-name epoch
        # counter (bumped whenever a named vector changes, so the service's
        # result cache can key on score identity), and a lock guarding the
        # session-level dicts against concurrent worker threads.
        self._service = None
        self._service_config = None  # Optional[ServiceConfig]
        # Auxiliary services (the serving tier's replica lanes): each is a
        # full QueryService with its own cache/scheduler over *this*
        # session, registered here so mutations exclude their readers and
        # invalidation reaches their caches too.
        self._aux_services: List[object] = []
        self._score_epochs: Dict[str, int] = {}
        self._lock = threading.RLock()

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        *,
        num_nodes: Optional[int] = None,
        directed: bool = False,
        **options: object,
    ) -> "Network":
        """Convenience constructor from an edge list."""
        graph = Graph.from_edges(
            edges, num_nodes=num_nodes, directed=directed
        )
        return cls(graph, **options)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Network nodes={self.graph.num_nodes} "
            f"edges={self.graph.num_edges} hops={self.hops} "
            f"scores={sorted(self._scores)}>"
        )

    # ------------------------------------------------------------------
    # Named score vectors
    # ------------------------------------------------------------------
    def add_scores(self, name: str, relevance: object) -> "Network":
        """Register (or replace) a named score vector; chainable.

        ``relevance`` may be a :class:`ScoreVector`, any sequence of floats,
        or a relevance-function object exposing ``scores(graph)``.
        Replacing a score that has a maintained view rebuilds the view on
        the new vector, so ``algorithm("view")`` never serves stale sums.
        """
        from repro.core.engine import materialize_scores

        if not name:
            raise InvalidParameterError("score name must be non-empty")
        vector = materialize_scores(self.graph, relevance)
        # Exclusive with in-flight queries: replacing the vector (and
        # rebuilding its maintained view) mid-query would let a worker see
        # half-swapped state or cache a pre-swap answer under the new epoch.
        with self._write_guard():
            with self._lock:
                self._scores[name] = vector
                self._planners.pop(name, None)
                self._score_epochs[name] = self._score_epochs.get(name, 0) + 1
            if name in self._views:
                del self._views[name]
                self.maintain(name)
        self._invalidate_service_cache(name)
        return self

    def score_names(self) -> Tuple[str, ...]:
        """Registered score names, sorted."""
        return tuple(sorted(self._scores))

    def scores_of(self, name: str = DEFAULT_SCORE) -> ScoreVector:
        """The materialized vector behind a registered name."""
        try:
            return self._scores[name]
        except KeyError:
            known = ", ".join(sorted(self._scores)) or "(none registered)"
            raise InvalidParameterError(
                f"unknown score {name!r}; registered: {known}"
            ) from None

    # ------------------------------------------------------------------
    # Serving (the async, concurrent surface)
    # ------------------------------------------------------------------
    def service(self, config: object = None, **options: object):
        """The session's :class:`~repro.service.QueryService` (front door
        for :meth:`QueryBuilder.submit` and the ``.run()`` shim).

        With no arguments, returns the existing service — creating a
        zero-thread *inline* one on first use, so plain synchronous
        sessions never spawn threads.  Pass configuration to start (or
        reconfigure) a concurrent pool::

            service = net.service(ServiceConfig(workers=4, max_pending=256))
            service = net.service(workers=4, max_pending=256)   # kwargs shim
            handles = [net.query(s).limit(10).submit() for s in names]

        ``config`` is a frozen :class:`~repro.config.ServiceConfig` (or a
        plain mapping, e.g. a parsed JSON section); bare keyword options
        remain supported and normalize to the same object.  Unknown option
        names are rejected up front with the valid names.  Reconfiguring
        with a *different* config shuts the previous service down (draining
        in-flight queries) and replaces it; an equal config is idempotent.
        ``processes=True`` serves unpinned queries on the process-parallel
        backend — ``workers`` worker *processes* over shared-memory CSR
        shards (see :meth:`parallel`) fronted by the same scheduler
        threads — so throughput scales with cores instead of one
        interpreter.
        """
        from repro.config import ServiceConfig
        from repro.service import QueryService

        explicit = config is not None or bool(options)
        cfg = ServiceConfig.coerce(config, options) if explicit else None
        with self._lock:
            if (
                self._service is not None
                and not self._service.closed
                and (cfg is None or cfg == self._service_config)
            ):
                return self._service
            previous = self._service
        # The previous service stays installed while its workers drain, so
        # a concurrent mutation's _write_guard keeps excluding against the
        # in-flight readers (self._service never transits through None).
        if previous is not None:
            previous.shutdown(wait=True)
        created = QueryService(self, cfg)
        with self._lock:
            if self._service is previous:
                self._service = created
                self._service_config = created.config
                return created
            current = self._service
        # Lost a (rare) creation race; discard ours, use the winner's.
        created.shutdown(wait=False)
        return current

    def _score_epoch(self, score: str) -> int:
        """Monotonic per-name version of a score vector (cache keying)."""
        with self._lock:
            return self._score_epochs.get(score, 0)

    def _invalidate_service_cache(self, score: Optional[str] = None) -> None:
        """Evict served answers: everything, or only one score's entries.

        Graph mutations pass ``None`` (every cached answer is stale);
        score mutations pass the score name so unrelated scores keep their
        hot entries (their epochs did not move, so those answers are still
        exactly right).
        """
        for service in self._services():
            service.invalidate(score)

    def _services(self) -> List[object]:
        """Every live service over this session: the default + replica lanes."""
        with self._lock:
            services = [self._service] if self._service is not None else []
            services.extend(s for s in self._aux_services if not s.closed)
        return services

    def _register_service(self, service) -> None:
        """Attach a replica-lane service (the serving tier's lanes)."""
        with self._lock:
            self._aux_services.append(service)

    def _unregister_service(self, service) -> None:
        with self._lock:
            try:
                self._aux_services.remove(service)
            except ValueError:
                pass

    def _write_guard(self):
        """Exclusive section for mutations: waits out in-flight queries.

        Takes the write side of *every* live service's readers-writer lock
        (replica lanes included), in registration order — every writer
        acquires in the same order, so two concurrent mutations cannot
        deadlock against each other.
        """
        services = self._services()
        if not services:
            return nullcontext()
        stack = ExitStack()
        for service in services:
            stack.enter_context(service._rw.write())
        return stack

    # ------------------------------------------------------------------
    # Multi-core execution (the "parallel" backend)
    # ------------------------------------------------------------------
    def parallel(self, config: object = None, **options: object):
        """The session's process-parallel engine (configure or inspect).

        Queries opt in per request (``.backend("parallel")``, CLI
        ``--backend parallel``) or service-wide
        (``net.service(processes=True)``); the engine — worker pool,
        shared-memory CSR/score exports, shard plan — is created lazily on
        first parallel execution with ``os.cpu_count()`` workers.  Call
        this with configuration to set it up front::

            net.parallel(ParallelConfig(workers=4))   # pool size
            net.parallel(workers=4, min_nodes=0)      # kwargs shim

        ``config`` is a frozen :class:`~repro.config.ParallelConfig` (or a
        plain mapping); bare keyword options normalize to the same object
        and unknown names are rejected with the valid ones.  Reconfiguring
        closes the previous engine first.  Graphs smaller than
        ``min_nodes`` (default
        :data:`~repro.parallel.engine.DEFAULT_MIN_NODES`) decline and run
        on the in-process numpy backend — same entries either way.
        """
        from repro.config import ParallelConfig

        if config is None and not options:
            return self._ctx.parallel_engine()
        cfg = ParallelConfig.coerce(config, options)
        return self._ctx.parallel_engine(**cfg.to_engine_kwargs())

    # ------------------------------------------------------------------
    # Multi-machine execution (the "cluster" backend)
    # ------------------------------------------------------------------
    def cluster(self, config: object = None, **options: object):
        """The session's socket-cluster engine (configure or inspect).

        Queries opt in per request (``.backend("cluster")``, CLI
        ``--backend cluster``) or service-wide
        (``net.service(cluster=True)``).  ``workers`` is a count of
        locally spawned ``cluster-worker`` processes or a list of
        ``host:port`` addresses of workers already running elsewhere::

            net.cluster(ClusterConfig(workers=4))            # spawn 4 local
            net.cluster(workers=["10.0.0.2:7070",
                                 "10.0.0.3:7070"])           # connect remote

        ``config`` is a frozen :class:`~repro.config.ClusterConfig` (or a
        plain mapping); bare keyword options normalize to the same object
        and unknown names are rejected with the valid ones.  Configuring
        the engine spawns/connects nothing — the transport starts on the
        first accepted cluster query.  Graphs smaller than ``min_nodes``
        decline and run on the in-process numpy backend — same entries
        either way.  Reconfiguring closes the previous engine (and its
        workers/connections) first.
        """
        from repro.config import ClusterConfig

        if config is None and not options:
            return self._ctx.cluster_engine()
        cfg = ClusterConfig.coerce(config, options)
        return self._ctx.cluster_engine(**cfg.to_engine_kwargs())

    def close(self) -> None:
        """Release out-of-process resources: serving threads, worker
        processes, shared-memory segments.  Idempotent; the session remains
        usable afterwards (a later query lazily rebuilds what it needs)."""
        with self._lock:
            service = self._service
            self._service = None
            self._service_config = None
            aux = list(self._aux_services)
            self._aux_services.clear()
        if service is not None:
            service.shutdown(wait=True)
        for lane in aux:
            lane.shutdown(wait=True)
        self._ctx.close()

    def __enter__(self) -> "Network":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------
    def query(self, score: str = DEFAULT_SCORE) -> QueryBuilder:
        """Start a fluent query over one named score vector."""
        self.scores_of(score)  # validate early, not at run()
        return QueryBuilder(self, score)

    def topk(
        self,
        score: str,
        k: int,
        aggregate: Union[str, AggregateKind] = "sum",
        **builder_options: object,
    ) -> TopKResult:
        """One-shot convenience: ``query(score).limit(k)....run()``.

        ``builder_options`` accepts exactly the builder's refinement
        methods (``algorithm`` / ``backend`` / ``where`` / ...), derived
        from the :class:`QueryBuilder` surface — a refinement added to the
        builder is automatically accepted here.
        """
        builder = self.query(score).limit(k).aggregate(aggregate)
        refinements = _builder_refinements()
        for name, value in builder_options.items():
            if name not in refinements:
                raise InvalidParameterError(
                    f"unknown query option {name!r}; "
                    f"expected one of {sorted(refinements)}"
                )
            builder = getattr(builder, name)(value)
        return builder.run()

    def topk_weighted(
        self,
        score: str,
        k: int,
        profile=None,
        algorithm: str = "backward",
        **options: object,
    ) -> TopKResult:
        """Distance-weighted top-k SUM (the paper's footnote 1).

        ``profile`` maps hop distance to a weight in [0, 1] (default:
        inverse distance); ``algorithm`` is ``"base"`` or ``"backward"``.
        Runs from this session's shared size index.
        """
        spec = QuerySpec(
            k=k,
            aggregate="sum",
            hops=self.hops,
            include_self=self.include_self,
            backend=self.backend,
        )
        return executor.execute_weighted(
            self._ctx, self.scores_of(score), spec, profile, algorithm, options
        )

    def batch(
        self,
        queries: Sequence[Union[QueryBuilder, BatchQuery, Tuple[object, int]]],
    ) -> BatchResult:
        """Answer many queries with shared-scan routing (one result each).

        Accepts :class:`QueryBuilder` objects from this session (their
        score/k/aggregate are extracted), raw
        :class:`~repro.core.batch.BatchQuery` items, or ``(scores, k[,
        aggregate])`` tuples.  Dense queries share one scan; sparse ones
        are peeled off to LONA-Backward — exactly the
        :class:`~repro.core.batch.BatchTopKEngine` policy, fed from this
        session's caches.  The returned :class:`BatchResult` carries
        workload-level :class:`~repro.core.results.QueryStats` whose
        counters sum the per-query work (shared scans counted once).
        """
        normalized: List[Union[BatchQuery, Tuple[object, int]]] = []
        for i, item in enumerate(queries):
            if isinstance(item, QueryBuilder):
                request = item.request()
                # The batch engine routes by score density and runs on the
                # session backend; a builder pin it cannot honor must be
                # rejected, not silently dropped.
                plain = request.replace(
                    score=DEFAULT_SCORE, k=1, aggregate="sum"
                )
                baseline = QueryRequest(
                    k=1,
                    hops=self.hops,
                    include_self=self.include_self,
                    backend=self.backend,
                )
                if plain != baseline:
                    raise InvalidParameterError(
                        f"batch entry {i}: shared-scan batching routes by "
                        "score density on the session backend; builder pins "
                        "(algorithm/backend/where/gamma/...) are not "
                        "supported — run this query individually"
                    )
                normalized.append(
                    BatchQuery(
                        scores=self.scores_of(request.score),
                        k=request.k,
                        aggregate=request.aggregate,
                    )
                )
            else:
                normalized.append(item)  # type: ignore[arg-type]
        return self._run_batch(normalized)

    def _run_batch(
        self,
        queries: Sequence[Union[BatchQuery, Tuple[object, int]]],
        backend: Optional[str] = None,
    ) -> BatchResult:
        """The BatchTopKEngine policy, fed from the session caches.

        ``backend`` overrides the session default — the serving layer
        passes ``"parallel"`` for coalesced groups when the service runs
        in process mode, so one fused batch fans out across shards.
        """
        self._ctx.check_fresh()
        engine = BatchTopKEngine(
            self.graph,
            hops=self.hops,
            include_self=self.include_self,
            backend=backend if backend is not None else self.backend,
            # Lazy cache sharing: the engine pulls the CSR view / size
            # index from the session context only if a routed query
            # actually needs them.
            context=self._ctx,
        )
        return BatchResult(engine.run(queries))

    # ------------------------------------------------------------------
    # Execution plumbing (builders land here)
    # ------------------------------------------------------------------
    def _run(self, request: QueryRequest) -> TopKResult:
        scores = self.scores_of(request.score)
        if request.algorithm == "view":
            return self._run_view(request)
        return executor.execute(
            self._ctx,
            scores,
            request,
            planner=self._planner_for(request)
            if request.algorithm == "planned"
            else None,
            auto_density_threshold=self.auto_density_threshold,
        )

    def _stream(self, request: QueryRequest) -> Iterator[StreamUpdate]:
        return executor.stream(self._ctx, self.scores_of(request.score), request)

    def _plan(
        self, request: QueryRequest, *, amortize_index: bool = True
    ) -> ExecutionPlan:
        return executor.plan(
            self._ctx,
            self.scores_of(request.score),
            request,
            amortize_index=amortize_index,
            planner=self._planner_for(request),
        )

    def _planner_for(self, request: QueryRequest) -> Optional[QueryPlanner]:
        """The session planner, unless the request pins another backend.

        The cached planner is built on the session backend, and the cost
        model is backend-sensitive (vectorized routes are discounted): a
        builder that pins a different backend gets ``None`` so the executor
        builds a planner on the *request's* backend — the configuration
        ``.run()`` / ``.explain()`` will actually execute.
        """
        if request.backend != self.backend:
            return None
        return self._planner(request.score)

    def _planner(self, score: str) -> QueryPlanner:
        """Per-score planner, cached until the index state or graph moves."""
        index_available = self._ctx.diff_index is not None
        version = getattr(self.graph, "version", None)
        with self._lock:
            cached = self._planners.get(score)
            if cached is not None:
                planner, avail, ver = cached
                if avail == index_available and ver == version:
                    return planner
        planner = QueryPlanner(
            self.graph,
            self.scores_of(score).values(),
            hops=self.hops,
            include_self=self.include_self,
            index_available=index_available,
            backend=self.backend,
        )
        with self._lock:
            self._planners[score] = (planner, index_available, version)
        return planner

    # ------------------------------------------------------------------
    # Index lifecycle (shared across every score and execution mode)
    # ------------------------------------------------------------------
    def build_indexes(self) -> float:
        """Build (or reuse) the differential + exact size indexes."""
        return self._ctx.build_indexes()

    @property
    def diff_index(self) -> Optional[DifferentialIndex]:
        """The shared differential index, if built."""
        return self._ctx.diff_index

    def save_index(self, path: object) -> None:
        """Persist the differential index (building it first if needed)."""
        self._ctx.save_index(path)

    def load_index(self, path: object) -> None:
        """Load a persisted differential index for this session's graph."""
        self._ctx.load_index(path)

    # ------------------------------------------------------------------
    # Dynamic graphs: maintained views + mutations through the session
    # ------------------------------------------------------------------
    def maintain(self, score: str = DEFAULT_SCORE):
        """Create (or return) a maintained aggregate view for one score.

        Requires the session graph to be a
        :class:`~repro.dynamic.graph.DynamicGraph`.  The view answers
        ``algorithm("view")`` queries in O(n log k) and is repaired
        incrementally by :meth:`add_edge` / :meth:`remove_edge` /
        :meth:`update_score`.
        """
        from repro.dynamic.graph import DynamicGraph
        from repro.dynamic.maintenance import MaintainedAggregateView

        if not isinstance(self.graph, DynamicGraph):
            raise InvalidParameterError(
                "maintained views require a DynamicGraph session; build the "
                "Network over DynamicGraph.from_graph(graph)"
            )
        if score not in self._views:
            vector = self.scores_of(score)
            self._views[score] = MaintainedAggregateView(
                self.graph,
                vector.values(),
                hops=self.hops,
                include_self=self.include_self,
            )
        return self._views[score]

    def view(self, score: str = DEFAULT_SCORE):
        """The maintained view for ``score`` (raises if never maintained)."""
        try:
            return self._views[score]
        except KeyError:
            raise InvalidParameterError(
                f"no maintained view for score {score!r}; call "
                f"net.maintain({score!r}) first"
            ) from None

    def _run_view(self, request: QueryRequest) -> TopKResult:
        from repro.core.executor import _reject_inapplicable_knobs

        _reject_inapplicable_knobs(request, "view")
        view = self.view(request.score)
        view.check_in_sync()  # never serve a stale view, filtered or not
        if request.candidates is None:
            return view.topk(request.k, request.aggregate)
        # Candidate-filtered view read: O(|candidates| log k) arithmetic.
        import time as _time

        start = _time.perf_counter()
        acc = TopKAccumulator(request.k)
        for u in request.candidates:
            acc.offer(u, view.value(u, request.aggregate))
        stats = QueryStats(
            algorithm="maintained-view",
            aggregate=request.aggregate.value,
            hops=self.hops,
            k=request.k,
            elapsed_sec=_time.perf_counter() - start,
        )
        stats.extra["candidates"] = float(len(request.candidates))
        return TopKResult(entries=acc.entries(), stats=stats)

    def _require_dynamic(self):
        from repro.dynamic.graph import DynamicGraph

        if not isinstance(self.graph, DynamicGraph):
            raise InvalidParameterError(
                "graph mutations require a DynamicGraph session"
            )
        return self.graph

    def add_edge(self, u: int, v: int) -> int:
        """Insert an edge; repairs every maintained view, drops stale caches.

        Returns the number of view entries repaired (0 with no views).
        """
        graph = self._require_dynamic()
        with self._write_guard():
            # Fail BEFORE mutating if any view already missed an outside
            # mutation — repairing such a view would bake the stale state in.
            for view in self._views.values():
                view.check_in_sync()
            graph.add_edge(u, v)
            repaired = 0
            for view in self._views.values():
                repaired += view.repair_after_insert(u, v)
            self._ctx.invalidate()
        self._invalidate_service_cache()
        return repaired

    def remove_edge(self, u: int, v: int) -> int:
        """Delete an edge; repairs every maintained view, drops stale caches."""
        graph = self._require_dynamic()
        with self._write_guard():
            # Affected sets come from the OLD graph (paths through the edge
            # existed only there) — collect them for every view before
            # deleting.
            pre = {
                name: view.affected_for_delete(u, v)
                for name, view in self._views.items()
            }
            graph.remove_edge(u, v)
            repaired = 0
            for name, view in self._views.items():
                repaired += view.repair_after_delete(pre[name])
            self._ctx.invalidate()
        self._invalidate_service_cache()
        return repaired

    def update_score(self, score: str, node: int, value: float) -> int:
        """Update one node's score in a named vector (repairing its view).

        Pure arithmetic on the maintained view (no traversal beyond the
        reverse ball); the session's named vector is re-materialized so
        subsequent non-view queries see the new score too.
        """
        vector = self.scores_of(score)
        # Validate BEFORE touching any state: a bad node id must not
        # half-apply to a maintained view (which mutates its score list
        # before repairing).
        if not 0 <= node < self.graph.num_nodes:
            raise InvalidParameterError(
                f"node {node} not in graph (num_nodes={self.graph.num_nodes})"
            )
        with self._write_guard():
            view = self._views.get(score)
            if view is not None:
                affected = view.update_score(node, value)
                replacement = ScoreVector(view.scores)
            else:
                values = vector.values()
                values[node] = float(value)
                replacement = ScoreVector(values)
                affected = 0
            with self._lock:
                self._scores[score] = replacement
                self._planners.pop(score, None)
                self._score_epochs[score] = self._score_epochs.get(score, 0) + 1
        self._invalidate_service_cache(score)
        return affected
