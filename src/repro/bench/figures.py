"""Command-line harness: regenerate any paper figure.

Usage::

    python -m repro.bench.figures --figure 1            # Fig. 1
    python -m repro.bench.figures --all                 # all six figures
    python -m repro.bench.figures --figure 2 --scale 0.5 --reps 3
    python -m repro.bench.figures --figure 1-mixture    # continuous relevance
    python -m repro.bench.figures --all --csv out/ --series out/

Prints the same runtime-vs-k series the paper plots (one table per figure)
plus speedup-over-base summaries, and can emit CSV / gnuplot data files.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.bench.harness import run_figure
from repro.bench.reporting import format_figure, write_csv, write_series
from repro.bench.workloads import FIGURES, figure

__all__ = ["main"]


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro.bench.figures",
        description="Regenerate the evaluation figures of the LONA paper.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--figure",
        help="figure id: 1..6, fig1..fig6, optionally with '-mixture' suffix",
    )
    target.add_argument(
        "--all", action="store_true", help="run all six paper figures"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset scale factor (1.0 = default bench size)",
    )
    parser.add_argument(
        "--reps", type=int, default=1, help="timing repetitions per cell (best-of)"
    )
    parser.add_argument(
        "--ks",
        type=str,
        default="",
        help="comma-separated k values overriding the paper sweep",
    )
    parser.add_argument(
        "--algorithms",
        type=str,
        default="",
        help="comma-separated algorithm list (base,forward,backward,"
        "backward-indexfree,materialized)",
    )
    parser.add_argument(
        "--backends",
        type=str,
        default="",
        help="comma-separated execution backends to sweep as extra columns "
        "(python,numpy); default runs each cell once on 'auto'",
    )
    parser.add_argument(
        "--counters",
        action="store_true",
        help="also print deterministic work counters",
    )
    parser.add_argument("--csv", type=str, default="", help="directory for CSV output")
    parser.add_argument(
        "--series", type=str, default="", help="directory for gnuplot .dat series"
    )
    return parser.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _parse_args(argv)
    figure_ids: List[str] = (
        sorted(FIGURES) if args.all else [args.figure]
    )
    ks = tuple(int(x) for x in args.ks.split(",") if x) or None
    algorithms = tuple(a for a in args.algorithms.split(",") if a) or None
    backends = tuple(b for b in args.backends.split(",") if b) or None

    for figure_id in figure_ids:
        spec = figure(figure_id)
        run = run_figure(
            spec,
            scale=args.scale,
            repetitions=args.reps,
            ks=ks,
            algorithms=algorithms,
            backends=backends,
        )
        print(format_figure(run, show_counters=args.counters))
        print()
        if args.csv:
            os.makedirs(args.csv, exist_ok=True)
            path = os.path.join(args.csv, f"{spec.figure_id}.csv")
            write_csv(run, path)
            print(f"[csv] {path}")
        if args.series:
            for path in write_series(run, args.series):
                print(f"[series] {path}")
        if args.csv or args.series:
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
