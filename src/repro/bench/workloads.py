"""Workload definitions: one spec per paper figure, plus ablation variants.

The paper's evaluation (Sec. V) is six runtime-vs-k figures:

=======  ==============  =========  =====  =====================
figure   dataset          aggregate  r      note
=======  ==============  =========  =====  =====================
Fig. 1   Collaboration    SUM        0.01
Fig. 2   Citation         SUM        0.01
Fig. 3   Intrusion        SUM        0.2    (higher blacking ratio)
Fig. 4   Collaboration    AVG        0.01
Fig. 5   Citation         AVG        0.01
Fig. 6   Intrusion        AVG        0.01
=======  ==============  =========  =====  =====================

All are 2-hop queries ("We tested 2-hop queries since they are much harder
than 1-hop queries and more popular than 3+ hop queries") over the
three algorithms Base / LONA-Forward / LONA-Backward.

Relevance regime: each figure is keyed by its blacking ratio alone, and
Sec. IV develops the zero-skipping argument for 0/1 relevance, so the
default workloads use the **binary** mixture (fraction ``r`` of nodes score
exactly 1, the rest 0).  The full continuous mixture (exponential ``fr`` +
random-walk ``fw``) is exercised by the ``mixture`` ablation variant of
every figure — see EXPERIMENTS.md for how the two regimes bracket the
paper's reported behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.datasets import load as load_dataset
from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.relevance.base import ScoreVector
from repro.relevance.mixture import MixtureRelevance

__all__ = ["FigureSpec", "FIGURES", "figure", "PAPER_KS"]

#: The k values swept on the paper's x-axis (0..300).
PAPER_KS: Tuple[int, ...] = (10, 25, 50, 100, 200, 300)

#: Algorithms plotted in every paper figure.
PAPER_ALGORITHMS: Tuple[str, ...] = ("base", "forward", "backward")


@dataclass(frozen=True)
class FigureSpec:
    """Everything needed to regenerate one figure."""

    figure_id: str
    paper_figure: str
    dataset: str
    aggregate: str
    blacking_ratio: float
    ks: Tuple[int, ...] = PAPER_KS
    algorithms: Tuple[str, ...] = PAPER_ALGORITHMS
    hops: int = 2
    binary_relevance: bool = True
    seed: int = 2010  # ICDE 2010 — fixed so every run is reproducible
    description: str = ""

    def build_graph(self, scale: float = 1.0) -> Graph:
        """Instantiate the dataset stand-in."""
        return load_dataset(self.dataset, scale=scale, seed=self.seed)

    def build_scores(self, graph: Graph) -> ScoreVector:
        """Instantiate the relevance function and materialize scores."""
        if self.binary_relevance:
            relevance = MixtureRelevance(
                self.blacking_ratio, binary=True, seed=self.seed + 1
            )
        else:
            relevance = MixtureRelevance(
                self.blacking_ratio, zero_fraction=0.0, seed=self.seed + 1
            )
        return relevance.scores(graph)

    def with_mixture(self) -> "FigureSpec":
        """The continuous-mixture ablation variant of this figure."""
        return replace(
            self,
            figure_id=self.figure_id + "-mixture",
            binary_relevance=False,
            description=self.description + " (continuous fr+fw mixture)",
        )


FIGURES: Dict[str, FigureSpec] = {
    spec.figure_id: spec
    for spec in (
        FigureSpec(
            figure_id="fig1",
            paper_figure="Fig. 1 Collaboration (SUM)",
            dataset="collaboration_like",
            aggregate="sum",
            blacking_ratio=0.01,
            description="runtime vs k, SUM over 2-hop, collaboration network",
        ),
        FigureSpec(
            figure_id="fig2",
            paper_figure="Fig. 2 Citation (SUM)",
            dataset="citation_like",
            aggregate="sum",
            blacking_ratio=0.01,
            description="runtime vs k, SUM over 2-hop, citation network",
        ),
        FigureSpec(
            figure_id="fig3",
            paper_figure="Fig. 3 Intrusion (SUM)",
            dataset="intrusion_like",
            aggregate="sum",
            blacking_ratio=0.2,
            description="runtime vs k, SUM over 2-hop, intrusion network (r=0.2)",
        ),
        FigureSpec(
            figure_id="fig4",
            paper_figure="Fig. 4 Collaboration (AVG)",
            dataset="collaboration_like",
            aggregate="avg",
            blacking_ratio=0.01,
            description="runtime vs k, AVG over 2-hop, collaboration network",
        ),
        FigureSpec(
            figure_id="fig5",
            paper_figure="Fig. 5 Citation (AVG)",
            dataset="citation_like",
            aggregate="avg",
            blacking_ratio=0.01,
            description="runtime vs k, AVG over 2-hop, citation network",
        ),
        FigureSpec(
            figure_id="fig6",
            paper_figure="Fig. 6 Intrusion (AVG)",
            dataset="intrusion_like",
            aggregate="avg",
            blacking_ratio=0.01,
            description="runtime vs k, AVG over 2-hop, intrusion network",
        ),
    )
}


def figure(figure_id: str) -> FigureSpec:
    """Look up a figure spec; accepts ``"1"``, ``"fig1"``, ``"fig1-mixture"``."""
    key = figure_id if figure_id.startswith("fig") else f"fig{figure_id}"
    if key.endswith("-mixture"):
        base_key = key[: -len("-mixture")]
        if base_key in FIGURES:
            return FIGURES[base_key].with_mixture()
    if key not in FIGURES:
        raise InvalidParameterError(
            f"unknown figure {figure_id!r}; known: {', '.join(sorted(FIGURES))} "
            "(append '-mixture' for the continuous-relevance variant)"
        )
    return FIGURES[key]
