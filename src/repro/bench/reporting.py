"""Report writers: ASCII tables, CSV, and gnuplot-style series files.

The paper's figures are runtime-vs-k line plots; :func:`format_figure`
prints the same series as a table (one row per k, one column per
algorithm), which is the form EXPERIMENTS.md records.  :func:`write_series`
emits whitespace ``k runtime`` columns per algorithm — directly plottable
with gnuplot, matching the visual style of the original figures.
"""

from __future__ import annotations

import csv
import os
from typing import IO, List, Sequence, Union

from repro.bench.harness import FigureRun, cell_label

__all__ = ["format_figure", "write_csv", "write_series", "format_speedups"]

PathOrFile = Union[str, "os.PathLike[str]", IO[str]]


def _column_widths(rows: Sequence[Sequence[str]]) -> List[int]:
    widths = [0] * max(len(r) for r in rows)
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    return widths


def _render_table(rows: Sequence[Sequence[str]]) -> str:
    widths = _column_widths(rows)
    lines = []
    for idx, row in enumerate(rows):
        line = "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        lines.append(line.rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_figure(run: FigureRun, *, show_counters: bool = False) -> str:
    """Human-readable report for one figure run."""
    spec = run.spec
    header = [
        f"{spec.figure_id}: {spec.paper_figure}",
        f"  dataset: {spec.dataset} (scale={run.scale}; "
        f"{run.num_nodes} nodes, {run.num_edges} edges)",
        f"  aggregate: {spec.aggregate.upper()}, hops={spec.hops}, "
        f"r={spec.blacking_ratio}, "
        f"relevance={'binary' if spec.binary_relevance else 'mixture'} "
        f"(density={run.score_density:.3f})",
        f"  offline index build: {run.index_build_sec:.3f}s "
        "(excluded from query times, as in the paper)",
        "",
    ]
    labels = list(dict.fromkeys(m.label for m in run.measurements))
    rows: List[List[str]] = [["k"] + [f"{lbl} (s)" for lbl in labels]]
    ks = sorted({m.k for m in run.measurements})
    by_cell = {(m.label, m.k): m for m in run.measurements}
    for k in ks:
        row = [str(k)]
        for lbl in labels:
            m = by_cell.get((lbl, k))
            row.append(f"{m.elapsed_sec:.4f}" if m else "-")
        rows.append(row)
    body = _render_table(rows)
    parts = header + [body]
    if show_counters:
        counter_rows: List[List[str]] = [
            ["k"] + [f"{lbl} evals" for lbl in labels]
        ]
        for k in ks:
            row = [str(k)]
            for lbl in labels:
                m = by_cell.get((lbl, k))
                row.append(str(m.nodes_evaluated) if m else "-")
            counter_rows.append(row)
        parts += ["", "exact ball evaluations per query:", _render_table(counter_rows)]
    parts += ["", format_speedups(run)]
    return "\n".join(parts)


def format_speedups(run: FigureRun) -> str:
    """Speedup-over-base (and numpy-over-python) summary lines."""
    cells = list(
        dict.fromkeys((m.algorithm, m.backend) for m in run.measurements)
    )
    lines = []
    for algorithm, backend in cells:
        if algorithm == "base":
            continue
        speedups = run.speedup_over_base(algorithm, backend)
        if not speedups:
            continue
        label = cell_label(algorithm, backend)
        best_k = max(speedups, key=lambda k: speedups[k])
        lines.append(
            f"speedup over base — {label}: "
            + ", ".join(f"k={k}: {s:.1f}x" for k, s in sorted(speedups.items()))
            + f"  (best {speedups[best_k]:.1f}x at k={best_k})"
        )
    backends = {m.backend for m in run.measurements}
    if {"python", "numpy"} <= backends:
        for algorithm in dict.fromkeys(m.algorithm for m in run.measurements):
            speedups = run.backend_speedup(algorithm)
            if not speedups:
                continue
            best_k = max(speedups, key=lambda k: speedups[k])
            lines.append(
                f"numpy over python — {algorithm}: "
                + ", ".join(
                    f"k={k}: {s:.1f}x" for k, s in sorted(speedups.items())
                )
                + f"  (best {speedups[best_k]:.1f}x at k={best_k})"
            )
    return "\n".join(lines) if lines else "(no base series; speedups unavailable)"


def write_csv(run: FigureRun, sink: PathOrFile) -> None:
    """Write every measurement as one CSV row."""
    own = isinstance(sink, (str, os.PathLike))
    handle = open(os.fspath(sink), "w", newline="", encoding="utf-8") if own else sink
    try:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "figure",
                "dataset",
                "aggregate",
                "r",
                "scale",
                "algorithm",
                "backend",
                "k",
                "elapsed_sec",
                "nodes_evaluated",
                "edges_scanned",
                "pruned_nodes",
                "top_value",
            ]
        )
        for m in run.measurements:
            writer.writerow(
                [
                    run.spec.figure_id,
                    run.spec.dataset,
                    run.spec.aggregate,
                    run.spec.blacking_ratio,
                    run.scale,
                    m.algorithm,
                    m.backend,
                    m.k,
                    f"{m.elapsed_sec:.6f}",
                    m.nodes_evaluated,
                    m.edges_scanned,
                    m.pruned_nodes,
                    f"{m.top_value:.6f}",
                ]
            )
    finally:
        if own:
            handle.close()


def write_series(run: FigureRun, directory: Union[str, "os.PathLike[str]"]) -> List[str]:
    """Write gnuplot-style ``<figure>_<algorithm>.dat`` files; returns paths.

    Backend-sweep runs get one file per (algorithm, backend) cell, suffixed
    ``_<backend>``.
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    cells = dict.fromkeys((m.algorithm, m.backend) for m in run.measurements)
    for algorithm, backend in cells:
        stem = (
            f"{run.spec.figure_id}_{algorithm}"
            if backend == "auto"
            else f"{run.spec.figure_id}_{algorithm}_{backend}"
        )
        path = os.path.join(os.fspath(directory), f"{stem}.dat")
        label = cell_label(algorithm, backend)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"# {run.spec.paper_figure} — {label}\n# k runtime_sec\n")
            for m in run.series(algorithm, backend):
                handle.write(f"{m.k} {m.elapsed_sec:.6f}\n")
        written.append(path)
    return written
