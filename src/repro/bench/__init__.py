"""Benchmark harness: figure workloads, runner, and report writers.

``python -m repro.bench.figures --all`` regenerates every paper figure;
see :mod:`repro.bench.workloads` for the figure-to-parameters mapping.
"""

from repro.bench.harness import FigureRun, Measurement, run_figure
from repro.bench.reporting import (
    format_figure,
    format_speedups,
    write_csv,
    write_series,
)
from repro.bench.workloads import FIGURES, PAPER_KS, FigureSpec, figure

__all__ = [
    "FigureSpec",
    "FIGURES",
    "PAPER_KS",
    "figure",
    "run_figure",
    "FigureRun",
    "Measurement",
    "format_figure",
    "format_speedups",
    "write_csv",
    "write_series",
]
