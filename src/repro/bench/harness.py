"""Experiment runner: execute a figure spec, collect per-point measurements.

The harness reproduces the paper's measurement discipline:

* the differential index (and the exact size index it yields) is built
  *once* per dataset and excluded from query timings — the paper treats it
  as a precomputed artifact;
* every (algorithm, k) cell is timed over the same graph and the same
  materialized score vector;
* results of all algorithms are cross-checked for equality at every cell —
  a benchmark of a wrong answer is worthless — and the deterministic work
  counters are captured next to the wall-clock numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.workloads import FigureSpec
from repro.core.backward import backward_topk
from repro.core.base import base_topk
from repro.core.forward import forward_topk
from repro.core.materialized import MaterializedView
from repro.core.query import QuerySpec
from repro.core.results import TopKResult
from repro.errors import InvalidParameterError
from repro.graph.diffindex import DifferentialIndex, build_differential_index

__all__ = ["Measurement", "FigureRun", "run_figure"]


#: Algorithms whose execution dispatches on ``spec.backend``.  Base and the
#: materialized view have a single (pure Python) implementation, so backend
#: sweeps run them once instead of producing duplicate mislabeled cells.
BACKEND_AWARE_ALGORITHMS = frozenset(
    {"forward", "backward", "backward-indexfree"}
)


def cell_label(algorithm: str, backend: str) -> str:
    """Display label of one cell: algorithm, backend-qualified when pinned."""
    if backend == "auto":
        return algorithm
    return f"{algorithm}[{backend}]"


@dataclass
class Measurement:
    """One (algorithm, backend, k) cell of a figure."""

    algorithm: str
    k: int
    elapsed_sec: float
    nodes_evaluated: int
    edges_scanned: int
    pruned_nodes: int
    top_value: float
    backend: str = "auto"
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Column label (see :func:`cell_label`)."""
        return cell_label(self.algorithm, self.backend)


@dataclass
class FigureRun:
    """All measurements for one figure, plus shared context."""

    spec: FigureSpec
    scale: float
    num_nodes: int
    num_edges: int
    score_density: float
    index_build_sec: float
    measurements: List[Measurement] = field(default_factory=list)

    def series(
        self, algorithm: str, backend: Optional[str] = None
    ) -> List[Measurement]:
        """The runtime-vs-k series of one algorithm, ascending k.

        ``backend`` narrows to one backend's cells (None = all backends,
        the right filter for single-backend runs).
        """
        points = [
            m
            for m in self.measurements
            if m.algorithm == algorithm
            and (backend is None or m.backend == backend)
        ]
        return sorted(points, key=lambda m: m.k)

    def speedup_over_base(
        self, algorithm: str, backend: Optional[str] = None
    ) -> Dict[int, float]:
        """Per-k speedup of ``algorithm`` relative to base (same backend)."""
        base_points = self.series("base", backend) or self.series("base")
        base = {m.k: m.elapsed_sec for m in base_points}
        out: Dict[int, float] = {}
        for m in self.series(algorithm, backend):
            if m.k in base and m.elapsed_sec > 0:
                out[m.k] = base[m.k] / m.elapsed_sec
        return out

    def backend_speedup(self, algorithm: str) -> Dict[int, float]:
        """Per-k speedup of the numpy backend over python, per algorithm.

        Only meaningful for runs that swept both backends (see
        ``run_figure(..., backends=...)``); empty otherwise.
        """
        python = {m.k: m.elapsed_sec for m in self.series(algorithm, "python")}
        out: Dict[int, float] = {}
        for m in self.series(algorithm, "numpy"):
            if m.k in python and m.elapsed_sec > 0:
                out[m.k] = python[m.k] / m.elapsed_sec
        return out


def _run_algorithm(
    algorithm: str,
    graph,
    scores,
    spec: QuerySpec,
    diff_index: Optional[DifferentialIndex],
    view: Optional[MaterializedView],
    csr=None,
    rev_csr=None,
) -> TopKResult:
    if algorithm == "base":
        return base_topk(graph, scores, spec)
    if algorithm == "forward":
        return forward_topk(graph, scores, spec, diff_index=diff_index, csr=csr)
    if algorithm == "backward":
        sizes = diff_index.sizes if diff_index is not None else None
        return backward_topk(
            graph, scores, spec, sizes=sizes, csr=csr, rev_csr=rev_csr
        )
    if algorithm == "backward-indexfree":
        return backward_topk(
            graph, scores, spec, sizes=None, csr=csr, rev_csr=rev_csr
        )
    if algorithm == "materialized":
        if view is None:
            raise InvalidParameterError("materialized view was not built")
        return view.topk(spec.k, spec.aggregate)
    raise InvalidParameterError(f"unknown algorithm {algorithm!r}")


def run_figure(
    figure_spec: FigureSpec,
    *,
    scale: float = 1.0,
    repetitions: int = 1,
    ks: Optional[Sequence[int]] = None,
    algorithms: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
    verify: bool = True,
) -> FigureRun:
    """Execute one figure's sweep and return all measurements.

    ``repetitions`` takes the minimum wall-clock over that many runs per
    cell (paper-style best-of timing; counters are identical across reps).
    ``ks`` / ``algorithms`` override the spec for ablations.  ``backends``
    optionally sweeps execution backends as an extra cell dimension (e.g.
    ``("python", "numpy")`` for backend-ablation columns); the default runs
    each cell once on the ``"auto"`` backend.  Cross-checking covers every
    (algorithm, backend) cell, so a backend sweep doubles as a parity test.
    """
    if repetitions < 1:
        raise InvalidParameterError(
            f"repetitions must be >= 1, got {repetitions}"
        )
    graph = figure_spec.build_graph(scale)
    score_vector = figure_spec.build_scores(graph)
    scores = score_vector.values()
    sweep_ks = tuple(ks) if ks is not None else figure_spec.ks
    sweep_algorithms = (
        tuple(algorithms) if algorithms is not None else figure_spec.algorithms
    )
    sweep_backends = tuple(backends) if backends else ("auto",)
    csr = None
    rev_csr = None
    if any(b in ("auto", "numpy") for b in sweep_backends):
        from repro.core.backends import numpy_available

        if numpy_available():
            from repro.graph.csr import to_csr

            # Offline artifacts like the indexes below: built once,
            # excluded from per-cell timings.
            csr = to_csr(graph, use_numpy=True)
            if graph.directed and any(
                a.startswith("backward") for a in sweep_algorithms
            ):
                rev_csr = to_csr(graph.reversed(), use_numpy=True)

    # Offline artifacts, shared by every cell.
    index_build_sec = 0.0
    diff_index: Optional[DifferentialIndex] = None
    if any(a in ("forward", "backward") for a in sweep_algorithms):
        start = time.perf_counter()
        diff_index = build_differential_index(
            graph, figure_spec.hops, include_self=True
        )
        index_build_sec = time.perf_counter() - start
    view: Optional[MaterializedView] = None
    if "materialized" in sweep_algorithms:
        view = MaterializedView(graph, scores, hops=figure_spec.hops)
        index_build_sec += view.build_sec

    run = FigureRun(
        spec=figure_spec,
        scale=scale,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        score_density=score_vector.density,
        index_build_sec=index_build_sec,
    )

    for k in sweep_ks:
        reference_values: Optional[List[float]] = None
        for algorithm in sweep_algorithms:
            if algorithm in BACKEND_AWARE_ALGORITHMS:
                algorithm_backends = sweep_backends
            elif sweep_backends == ("auto",):
                algorithm_backends = ("auto",)
            else:
                # Single-implementation algorithms run once per k during a
                # backend sweep, labeled with the backend they actually use.
                algorithm_backends = ("python",)
            for backend in algorithm_backends:
                qspec = QuerySpec(
                    k=k,
                    aggregate=figure_spec.aggregate,
                    hops=figure_spec.hops,
                    backend=backend,
                )
                best: Optional[TopKResult] = None
                best_time = float("inf")
                for _ in range(repetitions):
                    result = _run_algorithm(
                        algorithm, graph, scores, qspec, diff_index, view,
                        csr, rev_csr,
                    )
                    if result.stats.elapsed_sec < best_time:
                        best = result
                        best_time = result.stats.elapsed_sec
                assert best is not None
                if verify:
                    values = [round(v, 9) for v in best.values]
                    if reference_values is None:
                        reference_values = values
                    elif values != reference_values:
                        raise AssertionError(
                            f"{figure_spec.figure_id} k={k}: "
                            f"{algorithm}[{backend}] returned different "
                            "top-k values than the first cell"
                        )
                run.measurements.append(
                    Measurement(
                        algorithm=algorithm,
                        k=k,
                        elapsed_sec=best_time,
                        nodes_evaluated=best.stats.nodes_evaluated,
                        edges_scanned=best.stats.edges_scanned,
                        pruned_nodes=best.stats.pruned_nodes,
                        top_value=best.values[0] if best.values else 0.0,
                        backend=backend,
                        extra=dict(best.stats.extra),
                    )
                )
    return run
