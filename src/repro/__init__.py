"""repro — reproduction of "Top-K Aggregation Queries over Large Networks".

LONA (Yan, He, Zhu, Han; ICDE 2010) answers *neighborhood aggregation*
queries — find the k nodes whose h-hop neighborhoods have the highest
SUM/AVG of a per-node relevance score — with two pruning algorithms that
beat the naive scan by up to an order of magnitude.

Quickstart (the :class:`Network` session is the front door)::

    from repro import Graph, MixtureRelevance, Network

    graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    net = Network(graph, hops=2)
    net.add_scores("relevance", MixtureRelevance(0.25, seed=7))

    result = net.query("relevance").aggregate("sum").limit(2).run()
    for node, value in result.entries:
        print(node, value)

    # incremental (anytime) consumption, batches, plans, filters:
    for update in net.query("relevance").limit(2).stream():
        ...                                           # refining snapshots
    plan = net.query("relevance").limit(2).explain()  # cost-based plan
    subset = net.query("relevance").limit(2).where(lambda v: v > 0).run()

    # concurrent serving: async handles, a coalescing scheduler, and a
    # version-keyed result cache (see repro.service)
    net.service(workers=4)
    handle = net.query("relevance").limit(2).submit(priority=5)
    top2 = handle.result(timeout=1.0)

The pre-session entry points (:class:`TopKEngine`, ``topk_sum`` /
``topk_avg``, :class:`BatchTopKEngine`, direct algorithm functions) keep
working; the engine classes emit :class:`DeprecationWarning` and return
entry-for-entry identical results through the same executor.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.aggregates import AggregateKind
from repro.config import ParallelConfig, ServiceConfig
from repro.core import (
    BatchQuery,
    BatchResult,
    BatchTopKEngine,
    QueryRequest,
    QuerySpec,
    QueryStats,
    StreamUpdate,
    TopKEngine,
    TopKResult,
    backward_topk,
    base_topk,
    combine_query_stats,
    forward_topk,
    topk_avg,
    topk_sum,
)
from repro.dynamic import DynamicGraph, MaintainedAggregateView
from repro.errors import ReproError
from repro.graph import Graph, GraphBuilder, build_differential_index
from repro.relevance import (
    BinaryRelevance,
    IterativeClassifierRelevance,
    MixtureRelevance,
    RandomAssignmentRelevance,
    RandomWalkRelevance,
    ScoreVector,
    indicator_scores,
    uniform_scores,
)
from repro.client import RemoteNetwork, RetryPolicy
from repro.errors import error_from_wire
from repro.faults import FaultPlan
from repro.service import QueryHandle, QueryService
from repro.session import Network, QueryBuilder

__version__ = "2.1.0"

__all__ = [
    "__version__",
    "ReproError",
    "Graph",
    "GraphBuilder",
    "build_differential_index",
    "DynamicGraph",
    "MaintainedAggregateView",
    "Network",
    "QueryBuilder",
    "QueryService",
    "QueryHandle",
    "ServiceConfig",
    "ParallelConfig",
    "RemoteNetwork",
    "RetryPolicy",
    "FaultPlan",
    "error_from_wire",
    "QueryRequest",
    "StreamUpdate",
    "BatchQuery",
    "BatchResult",
    "BatchTopKEngine",
    "combine_query_stats",
    "TopKEngine",
    "QuerySpec",
    "TopKResult",
    "QueryStats",
    "AggregateKind",
    "base_topk",
    "forward_topk",
    "backward_topk",
    "topk_sum",
    "topk_avg",
    "ScoreVector",
    "MixtureRelevance",
    "BinaryRelevance",
    "RandomAssignmentRelevance",
    "RandomWalkRelevance",
    "IterativeClassifierRelevance",
    "uniform_scores",
    "indicator_scores",
]
