"""repro — reproduction of "Top-K Aggregation Queries over Large Networks".

LONA (Yan, He, Zhu, Han; ICDE 2010) answers *neighborhood aggregation*
queries — find the k nodes whose h-hop neighborhoods have the highest
SUM/AVG of a per-node relevance score — with two pruning algorithms that
beat the naive scan by up to an order of magnitude.

Quickstart::

    from repro import Graph, TopKEngine, MixtureRelevance

    graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    engine = TopKEngine(graph, MixtureRelevance(0.25, seed=7), hops=2)
    result = engine.topk(k=2, aggregate="sum", algorithm="backward")
    for node, value in result.entries:
        print(node, value)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.aggregates import AggregateKind
from repro.core import (
    QuerySpec,
    QueryStats,
    TopKEngine,
    TopKResult,
    backward_topk,
    base_topk,
    forward_topk,
    topk_avg,
    topk_sum,
)
from repro.dynamic import DynamicGraph, MaintainedAggregateView
from repro.errors import ReproError
from repro.graph import Graph, GraphBuilder, build_differential_index
from repro.relevance import (
    BinaryRelevance,
    IterativeClassifierRelevance,
    MixtureRelevance,
    RandomAssignmentRelevance,
    RandomWalkRelevance,
    ScoreVector,
    indicator_scores,
    uniform_scores,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "Graph",
    "GraphBuilder",
    "build_differential_index",
    "DynamicGraph",
    "MaintainedAggregateView",
    "TopKEngine",
    "QuerySpec",
    "TopKResult",
    "QueryStats",
    "AggregateKind",
    "base_topk",
    "forward_topk",
    "backward_topk",
    "topk_sum",
    "topk_avg",
    "ScoreVector",
    "MixtureRelevance",
    "BinaryRelevance",
    "RandomAssignmentRelevance",
    "RandomWalkRelevance",
    "IterativeClassifierRelevance",
    "uniform_scores",
    "indicator_scores",
]
