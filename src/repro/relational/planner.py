"""Planner: the h-hop aggregation query as a relational plan.

This is the straw man the paper argues against, built honestly.  Schema:

* ``edges(src, dst)`` — one row per *arc* (undirected edges stored in both
  directions, the standard relational encoding of a graph).
* ``scores(node, score)`` — the relevance function, materialized.

The 2-hop top-k SUM query in SQL would read::

    WITH pairs AS (
        SELECT src, src AS dst FROM nodes            -- distance 0 (self)
        UNION SELECT src, dst FROM edges             -- distance 1
        UNION SELECT e1.src, e2.dst                  -- distance <= 2
          FROM edges e1 JOIN edges e2 ON e1.dst = e2.src
    )
    SELECT p.src, SUM(s.score) AS agg
    FROM (SELECT DISTINCT src, dst FROM pairs) p
    JOIN scores s ON p.dst = s.node
    GROUP BY p.src ORDER BY agg DESC LIMIT k;

The ``DISTINCT`` is what makes this expensive and is *not optional*: the
join of two edge tables produces one row per 2-hop *walk*, while Definition
2 aggregates over the set of distinct neighbors.  The plan below generalizes
to any h by iterating the self-join, exactly as an RDBMS would.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.aggregates.functions import AggregateKind
from repro.core.query import QuerySpec
from repro.errors import PlanError
from repro.graph.graph import Graph
from repro.relational.operators import (
    OperatorStats,
    distinct,
    group_aggregate,
    hash_join,
    order_by_limit,
    union_all,
)
from repro.relational.table import Table

__all__ = ["edges_table", "scores_table", "nodes_table", "neighborhood_pairs", "topk_plan"]


def edges_table(graph: Graph) -> Table:
    """The arc table ``edges(src, dst)`` (both directions if undirected)."""
    src = []
    dst = []
    for u, v in graph.arcs():
        src.append(u)
        dst.append(v)
    return Table({"src": src, "dst": dst}, name="edges")


def nodes_table(graph: Graph) -> Table:
    """The node table ``nodes(node)``."""
    return Table({"node": list(graph.nodes())}, name="nodes")


def scores_table(scores: Sequence[float]) -> Table:
    """The score table ``scores(node, score)``."""
    return Table(
        {"node": list(range(len(scores))), "score": [float(s) for s in scores]},
        name="scores",
    )


def neighborhood_pairs(
    edges: Table,
    nodes: Table,
    hops: int,
    *,
    include_self: bool,
    stats: OperatorStats,
) -> Table:
    """All ``(src, dst)`` with ``dist(src, dst) <= hops`` as a relation.

    Built by iterated self-join with DISTINCT after every round — the
    faithful relational evaluation of "distinct nodes within h hops".
    """
    if hops < 0:
        raise PlanError(f"hops must be >= 0, got {hops}")
    node_ids = nodes.column("node")
    identity = Table(
        {"src": list(node_ids), "dst": list(node_ids)}, name="identity"
    )
    if hops == 0:
        if include_self:
            return identity
        return Table.empty(["src", "dst"], name="pairs")

    # Frontier of walks of length exactly i (deduped); `reach` accumulates
    # distance <= i pairs including distance 0, so the self-join can extend
    # any shorter path too — handling even/odd parity reachability cleanly.
    reach = distinct(union_all([identity, edges], stats), stats)
    frontier = edges
    for _ in range(hops - 1):
        joined = hash_join(
            frontier,
            edges.rename({"src": "mid", "dst": "dst2"}),
            left_key="dst",
            right_key="mid",
            stats=stats,
        )
        frontier = distinct(
            joined.project(["src", "dst2"]).rename({"dst2": "dst"}), stats
        )
        reach = distinct(union_all([reach, frontier], stats), stats)

    if include_self:
        return reach
    # Open ball: drop the diagonal.
    from repro.relational.operators import filter_rows

    names = reach.column_names
    src_idx, dst_idx = names.index("src"), names.index("dst")
    return filter_rows(reach, lambda row: row[src_idx] != row[dst_idx], stats)


def topk_plan(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    stats: OperatorStats,
    candidates: Optional[Sequence[int]] = None,
) -> Table:
    """Execute the full relational plan; returns table (node, agg).

    ``candidates`` optionally restricts the competitors: the relational
    equivalent of the session builder's ``.where(...)``, applied as a
    selection on ``src`` before the final sort-limit (a predicate pushed
    onto the grouping output — the natural place an RDBMS would put a
    ``WHERE src IN (...)``).
    """
    kind = spec.aggregate
    if kind not in (AggregateKind.SUM, AggregateKind.AVG, AggregateKind.COUNT):
        raise PlanError(
            f"the relational baseline implements SUM/AVG/COUNT, not {kind.value}"
        )
    edges = edges_table(graph)
    nodes = nodes_table(graph)
    score_values = list(scores)
    if kind is AggregateKind.COUNT:
        score_values = [1.0 if s > 0.0 else 0.0 for s in score_values]
    score_tab = scores_table(score_values)

    pairs = neighborhood_pairs(
        edges, nodes, spec.hops, include_self=spec.include_self, stats=stats
    )
    joined = hash_join(
        pairs, score_tab, left_key="dst", right_key="node", stats=stats
    )
    if kind is AggregateKind.AVG:
        grouped = group_aggregate(
            joined,
            key="src",
            aggregations={"agg": ("avg", "score")},
            stats=stats,
        )
    else:
        grouped = group_aggregate(
            joined,
            key="src",
            aggregations={"agg": ("sum", "score")},
            stats=stats,
        )
    # Nodes with empty open neighborhoods drop out of the join; restore them
    # with aggregate 0 so the relational answer matches graph semantics.
    present = set(grouped.column("src"))
    missing = [u for u in nodes.column("node") if u not in present]
    if missing:
        grouped = union_all(
            [
                grouped,
                Table({"src": missing, "agg": [0.0] * len(missing)}),
            ],
            stats,
        )
    if candidates is not None:
        from repro.relational.operators import filter_rows

        allowed = set(candidates)
        names = grouped.column_names
        src_idx = names.index("src")
        grouped = filter_rows(
            grouped, lambda row: row[src_idx] in allowed, stats
        )
    return order_by_limit(
        grouped, column="agg", k=spec.k, descending=True, tie_column="src", stats=stats
    )
