"""Column-oriented in-memory tables for the mini relational engine.

The paper's introduction motivates LONA against the relational alternative:
"For 2-hop queries, it has to self-join two gigantic edge tables, if one
indeed chooses table to store large graphs" (Sec. II).  To measure that
claim rather than assert it, :mod:`repro.relational` implements a small but
honest column-store query engine; this module is its storage layer.

A :class:`Table` is an ordered mapping of column name -> Python list, all of
equal length.  Tables are immutable by convention: operators build new
tables rather than mutating inputs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import SchemaError

__all__ = ["Table"]


class Table:
    """An immutable column-store table."""

    __slots__ = ("_columns", "_names", "_num_rows", "name")

    def __init__(self, columns: Dict[str, List[Any]], *, name: str = "") -> None:
        if not columns:
            raise SchemaError("a table needs at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            detail = {col: len(values) for col, values in columns.items()}
            raise SchemaError(f"ragged columns: {detail}")
        self._columns = dict(columns)
        self._names = list(columns.keys())
        self._num_rows = next(iter(lengths))
        self.name = name

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        column_names: Sequence[str],
        rows: Iterable[Sequence[Any]],
        *,
        name: str = "",
    ) -> "Table":
        """Build from row tuples (arity checked against ``column_names``)."""
        names = list(column_names)
        columns: Dict[str, List[Any]] = {col: [] for col in names}
        if len(columns) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        for i, row in enumerate(rows):
            if len(row) != len(names):
                raise SchemaError(
                    f"row {i} has {len(row)} values for {len(names)} columns"
                )
            for col, value in zip(names, row):
                columns[col].append(value)
        return cls(columns, name=name)

    @classmethod
    def empty(cls, column_names: Sequence[str], *, name: str = "") -> "Table":
        """A zero-row table with the given schema."""
        return cls({col: [] for col in column_names}, name=name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        """Schema column names, in order."""
        return list(self._names)

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"<Table{label} cols={self._names} rows={self._num_rows}>"

    def has_column(self, column: str) -> bool:
        """Whether ``column`` is in the schema."""
        return column in self._columns

    def column(self, column: str) -> List[Any]:
        """The raw column list (callers must not mutate it)."""
        try:
            return self._columns[column]
        except KeyError:
            raise SchemaError(
                f"unknown column {column!r}; table has {self._names}"
            ) from None

    def row(self, index: int) -> Tuple[Any, ...]:
        """One row as a tuple, in schema order."""
        return tuple(self._columns[col][index] for col in self._names)

    def iter_rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate all rows as tuples."""
        cols = [self._columns[col] for col in self._names]
        return zip(*cols) if cols else iter(())

    # ------------------------------------------------------------------
    # Schema-level helpers (row data is shared, never copied needlessly)
    # ------------------------------------------------------------------
    def project(self, columns: Sequence[str], *, name: str = "") -> "Table":
        """Keep only ``columns`` (shares the underlying lists)."""
        missing = [col for col in columns if col not in self._columns]
        if missing:
            raise SchemaError(f"unknown columns {missing}; table has {self._names}")
        return Table(
            {col: self._columns[col] for col in columns},
            name=name or self.name,
        )

    def rename(self, mapping: Dict[str, str], *, name: str = "") -> "Table":
        """Rename columns per ``mapping`` (missing keys are errors)."""
        missing = [col for col in mapping if col not in self._columns]
        if missing:
            raise SchemaError(f"unknown columns {missing}; table has {self._names}")
        renamed: Dict[str, List[Any]] = {}
        for col in self._names:
            renamed[mapping.get(col, col)] = self._columns[col]
        if len(renamed) != len(self._names):
            raise SchemaError(f"rename {mapping} collides with existing columns")
        return Table(renamed, name=name or self.name)

    def to_rows(self) -> List[Tuple[Any, ...]]:
        """All rows, materialized (for tests and small results)."""
        return list(self.iter_rows())
