"""RelationalTopKEngine: the RDBMS-style baseline, measured.

Answers the same :class:`~repro.core.query.QuerySpec` as the graph
algorithms but through the relational plan of
:mod:`repro.relational.planner`, and reports both wall-clock and row-level
work so the "gigantic self-join" cost is visible in benchmark output
(ablation ``abl-rdbms`` in DESIGN.md).

.. deprecated::
    The class shim remains, but the session facade reaches the same plan
    declaratively: ``Network.query(name).limit(k).algorithm("relational")``
    (optionally with ``.where(...)``, which the plan executes as a
    selection on ``src``).  :func:`relational_topk` stays the functional
    entry point for benchmarks and the executor.
"""

from __future__ import annotations

import time
import warnings
from typing import Optional, Sequence, Union

from repro.aggregates.functions import AggregateKind
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult
from repro.graph.graph import Graph
from repro.relational.operators import OperatorStats
from repro.relational.planner import topk_plan

__all__ = ["RelationalTopKEngine", "relational_topk"]


class RelationalTopKEngine:
    """Run top-k neighborhood aggregation through the relational plan.

    Deprecated: prefer ``Network.query(...).algorithm("relational")``.
    """

    def __init__(self, graph: Graph, scores: Sequence[float]) -> None:
        warnings.warn(
            "RelationalTopKEngine is deprecated; use repro.Network — "
            "net.query(name).limit(k).algorithm('relational').run()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.graph = graph
        self.scores = scores

    def topk(
        self,
        k: int,
        aggregate: Union[str, AggregateKind] = "sum",
        *,
        hops: int = 2,
        include_self: bool = True,
    ) -> TopKResult:
        """Answer the query; stats carry row-level work in ``extra``."""
        spec = QuerySpec(
            k=k, aggregate=aggregate, hops=hops, include_self=include_self
        )
        return relational_topk(self.graph, self.scores, spec)


def relational_topk(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    candidates: Optional[Sequence[int]] = None,
) -> TopKResult:
    """Functional entry point used by benchmarks, tests, and the executor.

    ``candidates`` optionally restricts the competitors (the builder's
    ``.where(...)``, executed as a relational selection on ``src``).
    """
    op_stats = OperatorStats()
    start = time.perf_counter()
    result_table = topk_plan(
        graph, scores, spec, stats=op_stats, candidates=candidates
    )
    elapsed = time.perf_counter() - start

    nodes = result_table.column("src")
    values = result_table.column("agg")
    entries = sorted(
        zip(nodes, (float(v) for v in values)),
        key=lambda pair: (-pair[1], pair[0]),
    )
    stats = QueryStats(
        algorithm="relational",
        aggregate=spec.aggregate.value,
        hops=spec.hops,
        k=spec.k,
        elapsed_sec=elapsed,
    )
    if candidates is not None:
        stats.extra["candidates"] = float(len(candidates))
    stats.extra.update(op_stats.as_dict())
    return TopKResult(entries=entries, stats=stats)
