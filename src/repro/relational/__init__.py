"""Mini relational engine: the RDBMS self-join baseline (paper Sec. II).

* :class:`Table` — column-store storage.
* operators — hash join, distinct, group-by aggregation, order-by-limit.
* :func:`relational_topk` / :class:`RelationalTopKEngine` — the h-hop
  aggregation query evaluated the way a relational engine would.
"""

from repro.relational.engine import RelationalTopKEngine, relational_topk
from repro.relational.operators import (
    OperatorStats,
    append_constant,
    distinct,
    filter_rows,
    group_aggregate,
    hash_join,
    order_by_limit,
    union_all,
)
from repro.relational.planner import (
    edges_table,
    neighborhood_pairs,
    nodes_table,
    scores_table,
    topk_plan,
)
from repro.relational.table import Table

__all__ = [
    "Table",
    "OperatorStats",
    "filter_rows",
    "hash_join",
    "distinct",
    "group_aggregate",
    "order_by_limit",
    "union_all",
    "append_constant",
    "edges_table",
    "nodes_table",
    "scores_table",
    "neighborhood_pairs",
    "topk_plan",
    "RelationalTopKEngine",
    "relational_topk",
]
