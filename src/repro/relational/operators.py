"""Physical operators of the mini relational engine.

Materializing operators over :class:`~repro.relational.table.Table`, each
threading an :class:`OperatorStats` so plans can report exactly how many
intermediate rows the relational formulation of a graph query manufactures —
the quantitative form of the paper's "self-join two gigantic edge tables"
argument.

Operators are deliberately textbook: hash join, hash distinct, hash group-by
aggregation, heap-based order-by-limit.  No secondary indexes, no pipelining
— the point of this subsystem is to be a fair, understandable baseline, not
a competitive RDBMS.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.errors import PlanError, SchemaError
from repro.relational.table import Table

__all__ = [
    "OperatorStats",
    "filter_rows",
    "hash_join",
    "distinct",
    "group_aggregate",
    "order_by_limit",
    "union_all",
    "append_constant",
]


@dataclass
class OperatorStats:
    """Row-level work accounting across a plan's operators."""

    rows_scanned: int = 0
    rows_output: int = 0
    join_probes: int = 0
    join_matches: int = 0
    peak_intermediate_rows: int = 0
    operator_invocations: int = 0
    per_operator: Dict[str, int] = field(default_factory=dict)

    def record(self, operator: str, in_rows: int, out_rows: int) -> None:
        """Record one operator execution."""
        self.operator_invocations += 1
        self.rows_scanned += in_rows
        self.rows_output += out_rows
        self.peak_intermediate_rows = max(self.peak_intermediate_rows, out_rows)
        self.per_operator[operator] = self.per_operator.get(operator, 0) + out_rows

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric view for reports."""
        out: Dict[str, float] = {
            "rows_scanned": float(self.rows_scanned),
            "rows_output": float(self.rows_output),
            "join_probes": float(self.join_probes),
            "join_matches": float(self.join_matches),
            "peak_intermediate_rows": float(self.peak_intermediate_rows),
            "operator_invocations": float(self.operator_invocations),
        }
        for op, rows in self.per_operator.items():
            out[f"rows_{op}"] = float(rows)
        return out


def filter_rows(
    table: Table, predicate: Callable[[Tuple[Any, ...]], bool], stats: OperatorStats
) -> Table:
    """Keep rows satisfying ``predicate`` (applied to full row tuples)."""
    names = table.column_names
    kept = [row for row in table.iter_rows() if predicate(row)]
    result = Table.from_rows(names, kept, name=table.name)
    stats.record("filter", table.num_rows, result.num_rows)
    return result


def hash_join(
    left: Table,
    right: Table,
    *,
    left_key: str,
    right_key: str,
    stats: OperatorStats,
    right_suffix: str = "_r",
) -> Table:
    """Equi-join ``left.left_key == right.right_key`` (hash build on right).

    Output schema: all left columns, then all right columns except the join
    key; right columns colliding with a left name get ``right_suffix``.
    """
    if not left.has_column(left_key):
        raise SchemaError(f"left table lacks join key {left_key!r}")
    if not right.has_column(right_key):
        raise SchemaError(f"right table lacks join key {right_key!r}")

    right_cols = [col for col in right.column_names if col != right_key]
    out_names = list(left.column_names)
    right_out_names = []
    for col in right_cols:
        out_name = col if col not in out_names else col + right_suffix
        if out_name in out_names or out_name in right_out_names:
            raise SchemaError(f"join output column collision on {out_name!r}")
        right_out_names.append(out_name)
    out_names.extend(right_out_names)

    # Build phase.
    build: Dict[Any, List[int]] = {}
    right_key_col = right.column(right_key)
    for i, key in enumerate(right_key_col):
        build.setdefault(key, []).append(i)

    # Probe phase.
    out_columns: Dict[str, List[Any]] = {colname: [] for colname in out_names}
    left_names = left.column_names
    right_col_data = [right.column(col) for col in right_cols]
    probes = 0
    matches = 0
    left_key_idx = left_names.index(left_key)
    for row in left.iter_rows():
        probes += 1
        hits = build.get(row[left_key_idx])
        if not hits:
            continue
        for j in hits:
            matches += 1
            for col_name, value in zip(left_names, row):
                out_columns[col_name].append(value)
            for col_name, data in zip(right_out_names, right_col_data):
                out_columns[col_name].append(data[j])

    result = Table(out_columns, name=f"{left.name}⋈{right.name}")
    stats.join_probes += probes
    stats.join_matches += matches
    stats.record("hash_join", left.num_rows + right.num_rows, result.num_rows)
    return result


def distinct(table: Table, stats: OperatorStats) -> Table:
    """Remove duplicate rows (hash-set based, order of first appearance)."""
    seen = set()
    kept: List[Tuple[Any, ...]] = []
    for row in table.iter_rows():
        if row not in seen:
            seen.add(row)
            kept.append(row)
    result = Table.from_rows(table.column_names, kept, name=table.name)
    stats.record("distinct", table.num_rows, result.num_rows)
    return result


_AGG_FUNCS = ("sum", "count", "avg", "min", "max")


def group_aggregate(
    table: Table,
    *,
    key: str,
    aggregations: Dict[str, Tuple[str, str]],
    stats: OperatorStats,
) -> Table:
    """Hash group-by on ``key`` with the given aggregations.

    ``aggregations`` maps output column name to ``(func, input_column)``
    where func is one of sum/count/avg/min/max (count ignores its input
    column and counts rows).
    """
    if not table.has_column(key):
        raise SchemaError(f"unknown group key {key!r}")
    for out_name, (func, col) in aggregations.items():
        if func not in _AGG_FUNCS:
            raise PlanError(f"unknown aggregate function {func!r} for {out_name!r}")
        if func != "count" and not table.has_column(col):
            raise SchemaError(f"unknown aggregation column {col!r}")

    key_col = table.column(key)
    groups: Dict[Any, Dict[str, Any]] = {}
    # state per group per output: sum -> float, count -> int, min/max -> value
    agg_items = list(aggregations.items())
    input_cols = {
        col: table.column(col)
        for _out, (func, col) in agg_items
        if func != "count"
    }
    for i, group_key in enumerate(key_col):
        state = groups.get(group_key)
        if state is None:
            state = {"__count__": 0}
            for out_name, (func, _col) in agg_items:
                if func in ("sum", "avg"):
                    state[out_name] = 0.0
                elif func in ("min", "max"):
                    state[out_name] = None
            groups[group_key] = state
        state["__count__"] += 1
        for out_name, (func, col) in agg_items:
            if func == "count":
                continue
            value = input_cols[col][i]
            if func in ("sum", "avg"):
                state[out_name] += value
            elif func == "min":
                current = state[out_name]
                state[out_name] = value if current is None else min(current, value)
            elif func == "max":
                current = state[out_name]
                state[out_name] = value if current is None else max(current, value)

    out_columns: Dict[str, List[Any]] = {key: []}
    for out_name in aggregations:
        out_columns[out_name] = []
    for group_key, state in groups.items():
        out_columns[key].append(group_key)
        for out_name, (func, _col) in agg_items:
            if func == "count":
                out_columns[out_name].append(state["__count__"])
            elif func == "avg":
                count = state["__count__"]
                out_columns[out_name].append(
                    state[out_name] / count if count else 0.0
                )
            else:
                out_columns[out_name].append(state[out_name])

    result = Table(out_columns, name=f"γ({table.name})")
    stats.record("group_aggregate", table.num_rows, result.num_rows)
    return result


def order_by_limit(
    table: Table,
    *,
    column: str,
    k: int,
    descending: bool = True,
    tie_column: str = "",
    stats: OperatorStats,
) -> Table:
    """Top-``k`` rows by ``column`` (heap-based; ties by ``tie_column`` asc)."""
    if k < 1:
        raise PlanError(f"limit must be >= 1, got {k}")
    values = table.column(column)
    ties = table.column(tie_column) if tie_column else None
    if descending:
        keyed = (
            (values[i], -(ties[i] if ties else i), i) for i in range(table.num_rows)
        )
        best = heapq.nlargest(k, keyed)
    else:
        keyed = (
            (values[i], (ties[i] if ties else i), i) for i in range(table.num_rows)
        )
        best = heapq.nsmallest(k, keyed)
    rows = [table.row(i) for _value, _tie, i in best]
    result = Table.from_rows(table.column_names, rows, name=table.name)
    stats.record("order_by_limit", table.num_rows, result.num_rows)
    return result


def union_all(tables: Sequence[Table], stats: OperatorStats) -> Table:
    """Concatenate tables with identical schemas."""
    if not tables:
        raise PlanError("union_all needs at least one input")
    schema = tables[0].column_names
    for t in tables[1:]:
        if t.column_names != schema:
            raise SchemaError(
                f"union schema mismatch: {schema} vs {t.column_names}"
            )
    columns: Dict[str, List[Any]] = {col: [] for col in schema}
    total_in = 0
    for t in tables:
        total_in += t.num_rows
        for col in schema:
            columns[col].extend(t.column(col))
    result = Table(columns, name="∪".join(t.name or "?" for t in tables))
    stats.record("union_all", total_in, result.num_rows)
    return result


def append_constant(
    table: Table, column: str, value: Any, stats: OperatorStats
) -> Table:
    """Add a constant column (used for weight/hop tagging in plans)."""
    if table.has_column(column):
        raise SchemaError(f"column {column!r} already exists")
    columns = {col: table.column(col) for col in table.column_names}
    columns[column] = [value] * table.num_rows
    result = Table(columns, name=table.name)
    stats.record("append_constant", table.num_rows, result.num_rows)
    return result
