"""The versioned JSON wire schema shared by server and client.

One canonical serialization exists for each wire object, and both ends of
the connection use *this module* to produce and consume it — parity between
:class:`repro.client.RemoteNetwork` and local ``Network.run()`` is a
round-trip property of these functions, not a convention.

* Requests ride :meth:`repro.core.request.QueryRequest.to_dict` /
  ``from_dict`` (they carry their own ``schema_version``).
* Results and stream updates are encoded here (entries as ``[node,
  value]`` pairs, stats as a flat field dict with extras kept separate so
  the decode is lossless).
* Errors ride :meth:`repro.errors.ReproError.to_wire` /
  :func:`repro.errors.error_from_wire` — the stable string codes are the
  protocol; :func:`status_for` maps them onto HTTP status codes.

Non-finite floats: stream updates legitimately carry ``-inf`` bounds
(:class:`~repro.core.results.StreamUpdate`).  Python's :mod:`json` emits
and parses ``-Infinity`` by default, and both peers are this library, so
the protocol deliberately allows it rather than inventing a sentinel.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, Type

from repro.core.results import QueryStats, StreamUpdate, TopKResult
from repro.errors import (
    DeadlineExceededError,
    DistributedError,
    FaultInjectedError,
    GraphError,
    InvalidParameterError,
    ProtocolError,
    QueryCancelledError,
    QueryError,
    QuotaExceededError,
    RateLimitedError,
    RelationalError,
    RelevanceError,
    ReproError,
    ServiceOverloadedError,
    ServiceShutdownError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "encode_result",
    "decode_result",
    "encode_update",
    "decode_update",
    "encode_error",
    "status_for",
]

#: Version of the serving wire protocol (URL prefix ``/v1/...``).  Bumps
#: only on incompatible changes; additive fields ride the tolerant decoders.
PROTOCOL_VERSION = 1

_STATS_FIELDS = tuple(f.name for f in fields(QueryStats) if f.name != "extra")
_UPDATE_FIELDS = tuple(f.name for f in fields(StreamUpdate) if f.name != "entries")


def encode_result(result: TopKResult) -> dict:
    """``TopKResult`` -> JSON-safe payload (lossless round-trip)."""
    stats = {name: getattr(result.stats, name) for name in _STATS_FIELDS}
    stats["extra"] = dict(result.stats.extra)
    return {
        "entries": [[int(node), float(value)] for node, value in result.entries],
        "stats": stats,
    }


def decode_result(payload: object) -> TopKResult:
    """Inverse of :func:`encode_result`; tolerant of unknown stats fields."""
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ProtocolError(f"malformed result payload: {payload!r}")
    raw_stats = payload.get("stats") or {}
    if not isinstance(raw_stats, dict):
        raise ProtocolError("result 'stats' must be an object")
    stats = QueryStats(
        **{k: raw_stats[k] for k in _STATS_FIELDS if k in raw_stats}
    )
    extra = raw_stats.get("extra")
    if isinstance(extra, dict):
        # extras are heterogeneous JSON scalars (gamma=0.4, ordering="ubound")
        stats.extra = {str(k): v for k, v in extra.items()}
    try:
        entries = [
            (int(node), float(value)) for node, value in payload["entries"]
        ]
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed result entries: {exc}") from None
    return TopKResult(entries=entries, stats=stats)


def encode_update(update: StreamUpdate) -> dict:
    """``StreamUpdate`` -> JSON-safe payload."""
    payload = {name: getattr(update, name) for name in _UPDATE_FIELDS}
    payload["entries"] = [
        [int(node), float(value)] for node, value in update.entries
    ]
    return payload


def decode_update(payload: object) -> StreamUpdate:
    """Inverse of :func:`encode_update`."""
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ProtocolError(f"malformed stream update: {payload!r}")
    try:
        entries = tuple(
            (int(node), float(value)) for node, value in payload["entries"]
        )
        return StreamUpdate(
            entries=entries,
            **{k: payload[k] for k in _UPDATE_FIELDS if k in payload},
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed stream update: {exc}") from None


def encode_error(error: BaseException) -> dict:
    """Any exception -> ``{"error": {...}}`` wire envelope.

    Library errors carry their stable code and extras; foreign exceptions
    degrade to the base ``repro_error`` code with their message, so a
    server bug never produces an unparseable response.
    """
    if isinstance(error, ReproError):
        return {"error": error.to_wire()}
    return {
        "error": {
            "code": ReproError.code,
            "message": f"{type(error).__name__}: {error}",
        }
    }


#: Most-derived-first HTTP status mapping for the error taxonomy.  429 for
#: every admission rejection (clients retry with backoff), 400 for caller
#: mistakes, 404 for missing domain objects, 504 for blown deadlines,
#: 409 for cancellations, 503 for shutdown, 500 otherwise.
_STATUS_BY_CLASS = (
    (RateLimitedError, 429),
    (QuotaExceededError, 429),
    (ServiceOverloadedError, 429),
    (DeadlineExceededError, 504),
    (QueryCancelledError, 409),
    (ServiceShutdownError, 503),
    (ProtocolError, 400),
    (InvalidParameterError, 400),
    (GraphError, 404),
    (QueryError, 400),
    # Caller handed the library something malformed: client errors.
    (RelevanceError, 400),
    (RelationalError, 400),
    # The simulated distributed engine failing is a server-side fault; a
    # 500 here is deliberate, not the fallback (repro-check RC004).
    (DistributedError, 500),
    # An injected fault surfacing all the way out is a retryable 503 —
    # chaos runs exercise exactly the path real transient outages take.
    (FaultInjectedError, 503),
)  # type: tuple


def status_for(error: BaseException) -> int:
    """The HTTP status code a response carrying ``error`` should use."""
    for cls, status in _STATUS_BY_CLASS:
        if isinstance(error, cls):
            return status
    return 500


#: Reverse view used by tests: status -> representative error classes.
STATUS_BY_CLASS: Dict[Type[BaseException], int] = dict(_STATUS_BY_CLASS)
