"""The asyncio HTTP front door over one session.

Stdlib-only by design (the CI matrix runs without numpy, and the container
adds no dependencies): a hand-rolled HTTP/1.1 loop over
``asyncio.start_server`` — request line, headers, ``Content-Length`` body,
JSON in, JSON out, keep-alive.  The event loop only parses, routes, and
awaits; every query executes on the replica lanes' scheduler threads (or
worker processes), bridged back with ``loop.call_soon_threadsafe`` via the
handle's done callback — the server never blocks its loop on a scan.

Routes (all under ``/v1/``, the :data:`~repro.serving.protocol.PROTOCOL_VERSION`):

====================================  ==========================================
``GET  /v1/health``                   liveness + session shape (hops, scores)
``GET  /v1/stats``                    serving, admission, per-lane stats
``GET  /v1/scores``                   registered score names
``POST /v1/query``                    submit one request and wait for its answer
``POST /v1/submit``                   submit; returns a ``query_id`` immediately
``GET  /v1/result/<id>``              poll/wait one submitted query's answer
``POST /v1/cancel/<id>``              cancel a submitted query
``GET  /v1/updates/<id>``             long-poll a streaming query's refinements
``POST /v1/batch``                    many (score, k, aggregate) queries at once
``POST /v1/weighted``                 distance-weighted query (tabulated weights)
====================================  ==========================================

Error responses are ``{"error": {"code": ..., "message": ..., ...}}`` with
the status from :func:`~repro.serving.protocol.status_for`; the client
rehydrates the exact exception class via
:func:`repro.errors.error_from_wire`.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.config import (
    ClusterConfig,
    ParallelConfig,
    ServiceConfig,
    _FrozenConfig,
)
from repro.core.request import QueryRequest
from repro.errors import (
    FaultInjectedError,
    InvalidParameterError,
    ProtocolError,
    ReproError,
    ServiceOverloadedError,
)
from repro.faults import active_plan, fault_point
from repro.serving.admission import AdmissionController
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    encode_error,
    encode_result,
    encode_update,
    status_for,
)
from repro.serving.replicas import ReplicaSet

__all__ = ["ServerConfig", "QueryServer"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Seconds between wakeups while a long-poll waits for stream updates.
_POLL_INTERVAL = 0.02

#: Remembered ``idempotency_key`` -> submit response pairs.  Bounds the
#: dedup journal; old keys age out FIFO (a client retry storm is seconds
#: long, not thousands of distinct submissions long).
_IDEMPOTENCY_LIMIT = 4096


@dataclass(frozen=True)
class ServerConfig(_FrozenConfig):
    """Everything one :class:`QueryServer` needs, as one frozen object.

    Accepts nested ``service`` / ``parallel`` / ``cluster`` sections as
    config objects *or* plain mappings (so a JSON config file round-trips
    through :meth:`from_file`); unknown keys are rejected at every level.
    ``port=0`` binds an ephemeral port (the bound address is on
    ``QueryServer.address`` after ``start()``).
    """

    host: str = "127.0.0.1"
    port: int = 0
    replicas: int = 2
    service: object = None  # ServiceConfig | mapping | None
    parallel: object = None  # ParallelConfig | mapping | None
    cluster: object = None  # ClusterConfig | mapping | None
    quota: Optional[int] = None
    tenant_rate: Optional[float] = None
    tenant_burst: Optional[float] = None
    global_rate: Optional[float] = None
    global_burst: Optional[float] = None
    shed_watermark: float = 0.75
    cost_limit: Optional[float] = None
    max_handles: int = 1024
    max_body: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        service = self.service
        if service is None:
            # One scheduler thread per lane: coalescing and async handles
            # need a worker; heavier pools are an explicit choice.
            service = ServiceConfig(workers=1)
        elif not isinstance(service, ServiceConfig):
            service = ServiceConfig.coerce(service)
        object.__setattr__(self, "service", service)
        parallel = self.parallel
        if parallel is not None and not isinstance(parallel, ParallelConfig):
            parallel = ParallelConfig.coerce(parallel)
        object.__setattr__(self, "parallel", parallel)
        cluster = self.cluster
        if cluster is not None and not isinstance(cluster, ClusterConfig):
            cluster = ClusterConfig.coerce(cluster)
        object.__setattr__(self, "cluster", cluster)
        if self.replicas < 1:
            raise InvalidParameterError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        if self.max_handles < 1:
            raise InvalidParameterError(
                f"max_handles must be >= 1, got {self.max_handles}"
            )

    @classmethod
    def from_file(cls, path: object) -> "ServerConfig":
        """Parse a JSON config file (same schema as :meth:`from_options`)."""
        with open(path, "r", encoding="utf-8") as fh:
            try:
                payload = json.load(fh)
            except ValueError as exc:
                raise ProtocolError(
                    f"config file {path} is not valid JSON: {exc}"
                ) from None
        if not isinstance(payload, Mapping):
            raise ProtocolError(
                f"config file {path} must hold a JSON object"
            )
        return cls.from_options(payload)


class _Entry:
    """Server-side record of one submitted query."""

    __slots__ = (
        "id", "handle", "replica", "updates", "lock", "delivered", "pumped"
    )

    def __init__(self, query_id: str, handle, replica: int) -> None:
        self.id = query_id
        self.handle = handle
        self.replica = replica
        self.updates: List[dict] = []
        self.lock = threading.Lock()
        self.delivered = False
        # Set once the pump thread has flushed the *last* update into the
        # buffer — ``handle.done()`` alone races the pump's final append.
        self.pumped = threading.Event()


class QueryServer:
    """Serve one :class:`~repro.session.Network` over HTTP.

    Usage::

        server = QueryServer(net, ServerConfig(replicas=4, port=8642))
        server.start()                      # background event-loop thread
        print(server.address)               # ("127.0.0.1", 8642)
        ...
        server.close()

    The server owns its replica lanes (closed with it) but *not* the
    session — callers may keep querying ``net`` locally, and mutations
    through the session invalidate the lanes' caches like any other
    service's.
    """

    def __init__(self, network, config: object = None, **options: object) -> None:
        cfg = ServerConfig.coerce(config, options)
        self.config = cfg
        self._net = network
        if cfg.parallel is not None:
            network.parallel(cfg.parallel)
        if cfg.cluster is not None:
            network.cluster(cfg.cluster)
        self.replicas = ReplicaSet(
            network, cfg.service, replicas=cfg.replicas
        )
        self.admission = AdmissionController(
            cost_of=self._cost_of,
            fixed_cost_of=self._fixed_cost_of,
            load_of=self._load,
            rate=cfg.tenant_rate,
            burst=cfg.tenant_burst,
            global_rate=cfg.global_rate,
            global_burst=cfg.global_burst,
            quota=cfg.quota,
            shed_watermark=cfg.shed_watermark,
            cost_limit=cfg.cost_limit,
        )
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._entries_lock = threading.Lock()
        self._idempotency: "OrderedDict[str, dict]" = OrderedDict()
        self._idempotency_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._cost_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._cost_lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._counters_lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryServer":
        """Bind and serve on a dedicated event-loop thread; returns self."""
        if self._loop is not None:
            return self
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._bind(), self._loop)
        try:
            self.address = future.result(timeout=30)
        except BaseException:
            self.close()
            raise
        return self

    async def _bind(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return (host, port)

    @property
    def url(self) -> str:
        """``http://host:port`` of the bound server (after ``start()``)."""
        if self.address is None:
            raise ReproError("server is not started")
        return f"http://{self.address[0]}:{self.address[1]}"

    def close(self) -> None:
        """Stop accepting connections, drain lanes, release everything."""
        loop, self._loop = self._loop, None
        if loop is not None:
            if self._server is not None:
                async def _shutdown(server=self._server):
                    server.close()
                    await server.wait_closed()
                    # Idle keep-alive connections hold parked handler tasks;
                    # cancel them so the loop stops clean.
                    for task in asyncio.all_tasks():
                        if task is not asyncio.current_task():
                            task.cancel()

                try:
                    asyncio.run_coroutine_threadsafe(_shutdown(), loop).result(
                        timeout=10
                    )
                except Exception:
                    pass
                self._server = None
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10)
                self._thread = None
            loop.close()
        self.address = None
        self.replicas.close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Shedding inputs
    # ------------------------------------------------------------------
    def _load(self) -> float:
        used, capacity = self.replicas.occupancy()
        return used / capacity

    def _cost_of(self, request: QueryRequest) -> float:
        """Planner cost (amortized ball expansions) for one request.

        Memoized per (score, canonical key, graph/score version): under
        load the same hot shapes arrive repeatedly and the planner's scan
        statistics are not free.  A request the planner cannot cost (e.g.
        ``algorithm="view"``) admits at cost 0 — execution will produce
        the real error with the right code.
        """
        version = (
            getattr(self._net.graph, "version", None),
            self._net._score_epoch(request.score),
        )
        key = (request.score, request.canonical_key())
        with self._cost_lock:
            hit = self._cost_cache.get(key)
            if hit is not None and hit[0] == version:
                self._cost_cache.move_to_end(key)
                return hit[1]
        try:
            plan = self._net._plan(request)
            cost = plan.estimate_for(plan.chosen).total_amortized()
        except ReproError:
            cost = 0.0
        with self._cost_lock:
            self._cost_cache[key] = (version, cost)
            while len(self._cost_cache) > 512:
                self._cost_cache.popitem(last=False)
        return cost

    def _fixed_cost_of(self, request: QueryRequest) -> float:
        """The backend fixed overhead the request would actually pay.

        The lanes rewrite unpinned requests to the sharded backend the
        service is configured for, so admission prices pinned requests by
        their pin and unpinned ones by the lane policy — a cluster-routed
        query is charged its socket/store-shipping tax
        (:data:`~repro.core.planner.BACKEND_FIXED_COSTS`) even when its
        scan cost alone would pass the shed budget.
        """
        from repro.core.planner import BACKEND_FIXED_COSTS

        backend = request.backend
        if backend == "auto":
            service = self.config.service
            if service.cluster:
                backend = "cluster"
            elif service.processes:
                backend = "parallel"
        return float(BACKEND_FIXED_COSTS.get(backend, 0.0))

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        try:
            # Connection-scope fault hook: refuse/crash/delay one accepted
            # connection before any request is read (a delay here blocks
            # the loop — injected latency is server-wide, as intended).
            fault_point("serving.connection")
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, _ = (
                        request_line.decode("latin-1").strip().split(" ", 2)
                    )
                except ValueError:
                    break
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or "0")
                if length > self.config.max_body:
                    await self._respond(
                        writer,
                        413,
                        encode_error(
                            ProtocolError(
                                f"body of {length} bytes exceeds the "
                                f"{self.config.max_body} byte limit"
                            )
                        ),
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._dispatch(
                    method.upper(), target, headers, body
                )
                await self._respond(writer, status, payload)
                if headers.get("connection", "").lower() == "close":
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
            FaultInjectedError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _respond(self, writer, status: int, payload: dict) -> None:
        blob = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(blob)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + blob)
        await writer.drain()

    def _bump(self, route: str) -> None:
        with self._counters_lock:
            self._counters[route] = self._counters.get(route, 0) + 1

    async def _dispatch(
        self, method: str, target: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, dict]:
        parts = urlsplit(target)
        path = parts.path.rstrip("/")
        query = {
            k: v[-1] for k, v in parse_qs(parts.query).items()
        }
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except ValueError as exc:
            err = ProtocolError(f"request body is not valid JSON: {exc}")
            return status_for(err), encode_error(err)
        if not isinstance(payload, dict):
            err = ProtocolError("request body must be a JSON object")
            return status_for(err), encode_error(err)
        tenant = str(
            headers.get("x-repro-tenant") or payload.get("tenant") or "default"
        )
        try:
            route = (method, path)
            if route == ("GET", "/v1/health"):
                return 200, self._health()
            if route == ("GET", "/v1/stats"):
                return 200, self.stats()
            if route == ("GET", "/v1/scores"):
                return 200, {"scores": list(self._net.score_names())}
            if route == ("POST", "/v1/query"):
                self._bump("query")
                return await self._route_query(payload, tenant)
            if route == ("POST", "/v1/submit"):
                self._bump("submit")
                return await self._route_submit(payload, tenant)
            if path.startswith("/v1/result/") and method == "GET":
                self._bump("result")
                return await self._route_result(path[len("/v1/result/"):], query)
            if path.startswith("/v1/cancel/") and method == "POST":
                self._bump("cancel")
                return self._route_cancel(path[len("/v1/cancel/"):])
            if path.startswith("/v1/updates/") and method == "GET":
                self._bump("updates")
                return await self._route_updates(
                    path[len("/v1/updates/"):], query
                )
            if route == ("POST", "/v1/batch"):
                self._bump("batch")
                return await self._route_batch(payload, tenant)
            if route == ("POST", "/v1/weighted"):
                self._bump("weighted")
                return await self._route_weighted(payload, tenant)
            err = ProtocolError(f"no route {method} {path or '/'}")
            return 404, encode_error(err)
        except Exception as exc:  # typed wire errors for everything
            self._bump("errors")
            return status_for(exc), encode_error(exc)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _health(self) -> dict:
        graph = self._net.graph
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "replicas": len(self.replicas),
            "hops": self._net.hops,
            "include_self": self._net.include_self,
            "backend": self._net.backend,
            "graph": {
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
            },
            "scores": list(self._net.score_names()),
        }

    def stats(self) -> dict:
        """The monitoring payload ``GET /v1/stats`` serves."""
        used, capacity = self.replicas.occupancy()
        with self._counters_lock:
            counters = dict(self._counters)
        with self._entries_lock:
            open_handles = len(self._entries)
        with self._idempotency_lock:
            idempotency_keys = len(self._idempotency)
        payload = {
            "requests": counters,
            "load": used / capacity,
            "open_handles": open_handles,
            "idempotency_keys": idempotency_keys,
            "admission": self.admission.stats(),
            "replicas": self.replicas.stats(),
        }
        plan = active_plan()
        if plan is not None:
            payload["faults"] = plan.stats()
        return payload

    def _admit_and_submit(
        self, payload: dict, tenant: str, *, stream: bool
    ) -> Tuple[int, object]:
        """Shared admission + routing + submission for query/submit."""
        request = QueryRequest.from_dict(payload.get("request"))
        cached = bool(payload.get("cached", True))
        release = self.admission.admit(request, tenant)
        try:
            index, lane = self.replicas.route(request)
            handle = lane.submit(request, stream=stream, cached=cached)
        except BaseException:
            release()
            raise
        handle.add_done_callback(lambda _h: release())
        self._bump(f"lane_{index}")
        return index, handle

    async def _route_query(self, payload: dict, tenant: str) -> Tuple[int, dict]:
        index, handle = self._admit_and_submit(payload, tenant, stream=False)
        await self._await_handle(handle)
        result = handle.result(timeout=0)  # raises the typed terminal error
        return 200, {"result": encode_result(result), "replica": index}

    async def _route_submit(self, payload: dict, tenant: str) -> Tuple[int, dict]:
        stream = bool(payload.get("stream", False))
        idem = payload.get("idempotency_key")
        if idem is not None and not isinstance(idem, str):
            raise ProtocolError("'idempotency_key' must be a string")
        if idem:
            # Exactly-once across client retries: a key seen before means
            # the earlier attempt's 202 was lost in flight, not that the
            # work should run again.  The journal check and the insert
            # below run without an intervening await, so two racing
            # retries of the same key cannot both submit.
            with self._idempotency_lock:
                hit = self._idempotency.get(idem)
            if hit is not None:
                self._bump("idempotent_hits")
                return 202, dict(hit, deduplicated=True)
        self._evict_entries()
        index, handle = self._admit_and_submit(payload, tenant, stream=stream)
        entry = _Entry(f"q{next(self._ids)}", handle, index)
        with self._entries_lock:
            self._entries[entry.id] = entry
        response = {"query_id": entry.id, "replica": index, "stream": stream}
        if idem:
            with self._idempotency_lock:
                self._idempotency[idem] = dict(response)
                while len(self._idempotency) > _IDEMPOTENCY_LIMIT:
                    self._idempotency.popitem(last=False)
        if stream:
            pump = threading.Thread(
                target=self._pump_updates, args=(entry,), daemon=True
            )
            pump.start()
        return 202, response

    def _evict_entries(self) -> None:
        """Bound the handle table: delivered entries go first, then any
        terminal ones; refuse new submissions only when every open handle
        is still live."""
        with self._entries_lock:
            if len(self._entries) < self.config.max_handles:
                return
            for key in [
                k for k, e in self._entries.items() if e.delivered
            ] or [
                k for k, e in self._entries.items() if e.handle.done()
            ]:
                del self._entries[key]
            if len(self._entries) >= self.config.max_handles:
                raise ServiceOverloadedError(
                    f"{len(self._entries)} queries are already open on this "
                    "server; fetch or cancel some before submitting more",
                    retry_after=0.1,
                )

    def _entry(self, query_id: str) -> _Entry:
        with self._entries_lock:
            entry = self._entries.get(query_id)
        if entry is None:
            raise ProtocolError(f"unknown query id {query_id!r}")
        return entry

    async def _route_result(
        self, query_id: str, query: Dict[str, str]
    ) -> Tuple[int, dict]:
        entry = self._entry(query_id)
        timeout = float(query.get("timeout", "0") or "0")
        if not entry.handle.done() and timeout > 0:
            await self._await_handle(entry.handle, timeout=timeout)
        if not entry.handle.done():
            return 202, {"pending": True, "state": entry.handle.state}
        entry.delivered = True
        with self._entries_lock:
            self._entries.pop(query_id, None)
        result = entry.handle.result(timeout=0)  # raises typed error
        return 200, {"result": encode_result(result), "replica": entry.replica}

    def _route_cancel(self, query_id: str) -> Tuple[int, dict]:
        entry = self._entry(query_id)
        cancelled = entry.handle.cancel()
        return 200, {"cancelled": cancelled, "state": entry.handle.state}

    def _pump_updates(self, entry: _Entry) -> None:
        """Drain a streaming handle's refinements into the entry buffer.

        Runs on its own thread (the handle's ``updates()`` iterator
        blocks); terminal errors are left on the handle, where the updates
        route reports them after the buffer drains.
        """
        try:
            for update in entry.handle.updates():
                with entry.lock:
                    entry.updates.append(encode_update(update))
        except Exception:
            pass
        finally:
            entry.pumped.set()

    async def _route_updates(
        self, query_id: str, query: Dict[str, str]
    ) -> Tuple[int, dict]:
        entry = self._entry(query_id)
        cursor = int(query.get("cursor", "0") or "0")
        timeout = float(query.get("timeout", "0") or "0")
        if not entry.handle.stream:
            raise ProtocolError(
                f"query {query_id!r} was not submitted with stream=true"
            )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            with entry.lock:
                fresh = entry.updates[cursor:]
                total = len(entry.updates)
            finished = entry.pumped.is_set() and cursor + len(fresh) == total
            if fresh or finished or loop.time() >= deadline:
                break
            await asyncio.sleep(_POLL_INTERVAL)
        payload: dict = {
            "updates": fresh,
            "cursor": cursor + len(fresh),
            "done": False,
        }
        if entry.pumped.is_set() and cursor + len(fresh) == total:
            payload["done"] = True
            entry.delivered = True
            error = entry.handle.exception(timeout=0)
            if error is not None:
                payload.update(encode_error(error))
            with self._entries_lock:
                self._entries.pop(query_id, None)
        return 200, payload

    async def _route_batch(self, payload: dict, tenant: str) -> Tuple[int, dict]:
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise ProtocolError("'queries' must be a non-empty list")
        requests = [QueryRequest.from_dict(q) for q in queries]
        # One admission decision for the whole batch, priced at its most
        # expensive member — a batch must not dodge the shed policy by
        # bundling.
        release = self.admission.admit(
            max(requests, key=self._cost_of), tenant
        )
        try:
            index, lane = self.replicas.least_loaded()
            handles = lane.submit_all(requests)
        except BaseException:
            release()
            raise
        self._bump(f"lane_{index}")
        try:
            await asyncio.gather(
                *(self._await_handle(h) for h in handles)
            )
        finally:
            release()
        results = [encode_result(h.result(timeout=0)) for h in handles]
        return 200, {"results": results, "replica": index}

    async def _route_weighted(
        self, payload: dict, tenant: str
    ) -> Tuple[int, dict]:
        score = payload.get("score")
        k = payload.get("k")
        weights = payload.get("weights")
        if not isinstance(score, str) or not isinstance(k, int):
            raise ProtocolError("'score' (string) and 'k' (int) are required")
        if not isinstance(weights, list) or not weights:
            raise ProtocolError(
                "'weights' must be a non-empty list of per-hop weights "
                "(client tabulates its profile with precompute_weights)"
            )
        table = [float(w) for w in weights]
        algorithm = str(payload.get("algorithm", "backward"))
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise ProtocolError("'options' must be an object")
        representative = QueryRequest(k=int(k), score=score, hops=self._net.hops)
        release = self.admission.admit(representative, tenant)
        try:

            def profile(distance: int) -> float:
                return table[distance] if distance < len(table) else 0.0

            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                None,
                lambda: self._net.topk_weighted(
                    score, int(k), profile, algorithm, **options
                ),
            )
        finally:
            release()
        return 200, {"result": encode_result(result)}

    # ------------------------------------------------------------------
    async def _await_handle(self, handle, timeout: Optional[float] = None) -> None:
        """Await a scheduler-thread handle without blocking the loop."""
        if handle.done():
            return
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()

        def _on_done(_h) -> None:
            def _resolve() -> None:
                if not future.done():
                    future.set_result(None)

            try:
                loop.call_soon_threadsafe(_resolve)
            except RuntimeError:  # loop already closing
                pass

        handle.add_done_callback(_on_done)
        try:
            await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            pass
