"""The network front door: HTTP serving of sessions over a wire protocol.

The in-process serving layer (:mod:`repro.service`) made one session
concurrent; this package makes it *reachable* — the ROADMAP's "heavy
traffic" north star needs a socket, not a Python import.  Four pieces:

* :mod:`repro.serving.protocol` — the versioned JSON wire schema: requests
  (via :meth:`~repro.core.request.QueryRequest.to_dict`), results, stream
  updates, and the stable-code error payloads of :mod:`repro.errors`.
* :mod:`repro.serving.admission` — the front-door admission pipeline:
  token-bucket rate limiting (global and per tenant), per-tenant inflight
  quotas, and **cost-based load shedding** — under load, the planner's
  :class:`~repro.core.planner.CostEstimate` is the admission currency
  (Fagin's middleware framing): cheap queries keep flowing, expensive ones
  are rejected with a typed ``retry_after``.
* :mod:`repro.serving.replicas` — N replica lanes (each a full
  :class:`~repro.service.QueryService` with its own result cache and
  coalescing scheduler) and the shape-hash router that sends requests of
  one shape to one lane, so cache and coalescer hits *concentrate*
  instead of spraying round-robin.
* :mod:`repro.serving.server` — the asyncio HTTP/1.1 server tying them
  together, stdlib-only, plus :class:`ServerConfig` (accepted from
  kwargs, dataclasses, or a JSON config file).

The matching wire-native client is :class:`repro.client.RemoteNetwork`.
Start a server from Python (``QueryServer(net, config).start()``) or the
CLI (``repro serve --listen HOST:PORT ...``).
"""

from repro.serving.admission import AdmissionController, TokenBucket
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    decode_result,
    decode_update,
    encode_error,
    encode_result,
    encode_update,
    status_for,
)
from repro.serving.replicas import ReplicaSet
from repro.serving.server import QueryServer, ServerConfig

__all__ = [
    "PROTOCOL_VERSION",
    "QueryServer",
    "ServerConfig",
    "ReplicaSet",
    "AdmissionController",
    "TokenBucket",
    "encode_result",
    "decode_result",
    "encode_update",
    "decode_update",
    "encode_error",
    "status_for",
]
