"""Front-door admission: rate limits, tenant quotas, cost-based shedding.

The in-process scheduler already has *binary* admission control (queue
full -> reject).  A network front door needs graded policies, applied in
cheapest-first order before a request ever reaches a replica lane:

1. **Token buckets** (global, then per tenant) bound request *rate*;
   rejections are :class:`~repro.errors.RateLimitedError` with the exact
   ``retry_after`` at which a token will exist.
2. **Tenant quotas** bound *concurrency* — inflight queries per tenant —
   so one chatty client cannot occupy every lane; rejections are
   :class:`~repro.errors.QuotaExceededError`.
3. **Cost-based load shedding**: above a load watermark the planner's
   :class:`~repro.core.planner.CostEstimate` becomes the admission
   currency (Fagin's middleware framing — the middleware knows what an
   aggregation will cost before running it).  The admissible cost budget
   shrinks linearly from ``cost_limit`` at the watermark to zero at
   saturation, so cheap queries keep flowing while expensive ones are
   rejected with :class:`~repro.errors.ServiceOverloadedError` carrying
   ``retry_after``, ``estimated_cost``, and the budget that rejected it.

Every rejection is typed, coded, and wire-serializable — the client can
distinguish "slow down" from "shrink the query" mechanically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.core.request import QueryRequest
from repro.errors import (
    QuotaExceededError,
    RateLimitedError,
    ServiceOverloadedError,
)

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/sec, ``burst`` capacity.

    ``take()`` consumes one token if available, else reports how long
    until one exists.  Monotonic-clock based; thread-safe.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_lock")

    def __init__(self, rate: float, burst: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        self._tokens = self.burst
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def take(self) -> Optional[float]:
        """Consume one token; None on success, else seconds to retry."""
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate


class AdmissionController:
    """The ordered admission pipeline in front of the replica lanes.

    Parameters
    ----------
    cost_of:
        ``cost_of(request) -> float`` — the planner's amortized *online*
        cost estimate for the request (the server memoizes it per shape
        and graph version).  ``None`` disables cost shedding.
    fixed_cost_of:
        ``fixed_cost_of(request) -> float`` — the backend fixed cost
        (:data:`~repro.core.planner.BACKEND_FIXED_COSTS`) the request
        would pay on its effective backend: process-pool dispatch for
        ``parallel``, socket rounds and store shipping for ``cluster``.
        Added to ``cost_of`` in the shed comparison, so under pressure a
        cluster-routed query is priced with its communication tax, not
        just its scan work.  ``None`` prices fixed costs at zero.
    load_of:
        ``load_of() -> float`` in ``[0, 1]`` — current queued+inflight
        occupancy across the replica lanes.  ``None`` disables shedding.
    rate / burst:
        Per-tenant token bucket (requests/sec); ``None`` = unlimited.
    global_rate / global_burst:
        One bucket shared by every tenant; ``None`` = unlimited.
    quota:
        Max concurrently inflight queries per tenant; ``None`` = unlimited.
    shed_watermark:
        Load above which cost shedding engages.
    cost_limit:
        The cost budget at the watermark; the admissible budget shrinks
        linearly to zero as load approaches 1.
    """

    def __init__(
        self,
        *,
        cost_of: Optional[Callable[[QueryRequest], float]] = None,
        fixed_cost_of: Optional[Callable[[QueryRequest], float]] = None,
        load_of: Optional[Callable[[], float]] = None,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        global_rate: Optional[float] = None,
        global_burst: Optional[float] = None,
        quota: Optional[int] = None,
        shed_watermark: float = 0.75,
        cost_limit: Optional[float] = None,
    ) -> None:
        if not 0.0 <= shed_watermark < 1.0:
            raise ValueError(
                f"shed_watermark must be in [0, 1), got {shed_watermark}"
            )
        self._cost_of = cost_of
        self._fixed_cost_of = fixed_cost_of
        self._load_of = load_of
        self._rate = rate
        self._burst = burst
        self._quota = int(quota) if quota is not None else None
        self._watermark = float(shed_watermark)
        self._cost_limit = (
            float(cost_limit) if cost_limit is not None else None
        )
        self._global_bucket = (
            TokenBucket(global_rate, global_burst)
            if global_rate is not None
            else None
        )
        self._buckets: Dict[str, TokenBucket] = {}
        self._inflight: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "admitted": 0,
            "rate_limited": 0,
            "quota_rejected": 0,
            "shed": 0,
        }

    # ------------------------------------------------------------------
    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        if self._rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self._rate, self._burst)
                self._buckets[tenant] = bucket
            return bucket

    def _count(self, outcome: str) -> None:
        with self._lock:
            self.counters[outcome] += 1

    # ------------------------------------------------------------------
    def admit(
        self, request: QueryRequest, tenant: str = "default"
    ) -> Callable[[], None]:
        """Admit or raise; returns the release callable for the quota slot.

        The caller must invoke the returned callable exactly once when the
        query reaches a terminal state (the server wires it to the
        handle's done callback).
        """
        retry = None
        if self._global_bucket is not None:
            retry = self._global_bucket.take()
        if retry is None:
            bucket = self._bucket(tenant)
            if bucket is not None:
                retry = bucket.take()
        if retry is not None:
            self._count("rate_limited")
            raise RateLimitedError(
                f"tenant {tenant!r} exceeded the request rate",
                retry_after=round(retry, 4),
            )

        self._shed(request, tenant)

        # Quota slot last, so rejected requests never leak a slot.
        if self._quota is not None:
            with self._lock:
                inflight = self._inflight.get(tenant, 0)
                if inflight >= self._quota:
                    self.counters["quota_rejected"] += 1
                    raise QuotaExceededError(
                        f"tenant {tenant!r} has {inflight} queries inflight "
                        f"(quota {self._quota})",
                        retry_after=0.05,
                    )
                self._inflight[tenant] = inflight + 1
        self._count("admitted")

        released = threading.Event()

        def release() -> None:
            if released.is_set():  # idempotent: done-callback + error paths
                return
            released.set()
            if self._quota is not None:
                with self._lock:
                    remaining = self._inflight.get(tenant, 1) - 1
                    if remaining > 0:
                        self._inflight[tenant] = remaining
                    else:
                        self._inflight.pop(tenant, None)

        return release

    def _shed(self, request: QueryRequest, tenant: str) -> None:
        """Reject expensive requests once load passes the watermark."""
        if (
            self._cost_of is None
            or self._load_of is None
            or self._cost_limit is None
        ):
            return
        load = min(max(float(self._load_of()), 0.0), 1.0)
        if load <= self._watermark:
            return
        # Budget: cost_limit at the watermark, linearly down to 0 at
        # saturation — under pressure only ever-cheaper queries pass.
        headroom = (1.0 - load) / (1.0 - self._watermark)
        budget = self._cost_limit * headroom
        cost = float(self._cost_of(request))
        if self._fixed_cost_of is not None:
            cost += float(self._fixed_cost_of(request))
        if cost <= budget:
            return
        self._count("shed")
        raise ServiceOverloadedError(
            f"load {load:.2f} sheds queries costing over {budget:.1f} "
            f"(estimated {cost:.1f}); retry later or lower the query cost",
            retry_after=round(0.1 + 0.9 * (load - self._watermark), 4),
            estimated_cost=cost,
            cost_limit=budget,
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters plus current per-tenant inflight occupancy."""
        with self._lock:
            return {
                **self.counters,
                "tenants_inflight": dict(self._inflight),
            }
