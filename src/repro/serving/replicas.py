"""Replica lanes + the shape-hash router.

A single :class:`~repro.service.QueryService` serializes its result cache
and coalescer behind one scheduler; under network load one lane becomes
the bottleneck and — worse — a round-robin spray across lanes *destroys*
the very locality the cache and coalescer need (two identical queries on
two lanes are two cache misses and zero coalesce partners).  ADiT's
adaptive per-peer allocation (PAPERS.md) is the motivation: send the work
where it will be cheapest.

:class:`ReplicaSet` owns N lanes, each a full ``QueryService`` (own
result cache, own coalescing scheduler, own worker threads) over the
*same* session — graph and score vectors are shared state, per-lane state
is only scheduling and memoization.  The router hashes
:meth:`~repro.core.request.QueryRequest.shape_key` — the request's
identity minus score and k, exactly the compatibility key the coalescer
groups by — so every request of one shape lands on one lane: repeated hot
queries hit that lane's cache, and concurrent compatible ones meet in its
queue and fuse into shared scans.

With ``processes=True`` in the lane config, execution is offloaded to the
session's :class:`~repro.parallel.engine.ParallelEngine`: the lane's
scheduler threads only dispatch and merge while ``workers`` worker
*processes*, each attached to the shared-memory ``SharedCSR`` replica,
do the scans — the serving tier's multi-process execution mode.

Lanes register with the session (``Network._register_service``) so
dynamic mutations take every lane's write lock and invalidate every
lane's cache — the same freshness contract the single-service session
already guarantees.
"""

from __future__ import annotations

import zlib
from typing import List, Tuple

from repro.config import ServiceConfig
from repro.core.request import QueryRequest
from repro.errors import InvalidParameterError
from repro.service import QueryService

__all__ = ["ReplicaSet"]


def _shape_hash(request: QueryRequest) -> int:
    """Deterministic (process-independent) hash of the request's shape.

    ``hash()`` is salted per process; crc32 of the canonical shape repr is
    stable, so routing affinity is reproducible across restarts and
    testable against fixed expectations.
    """
    return zlib.crc32(repr(request.shape_key()).encode("utf-8"))


class ReplicaSet:
    """N routed replica lanes over one session."""

    def __init__(
        self, network, config: ServiceConfig, *, replicas: int = 2
    ) -> None:
        if replicas < 1:
            raise InvalidParameterError(
                f"replicas must be >= 1, got {replicas}"
            )
        self._net = network
        self.config = config
        self._lanes: List[QueryService] = []
        try:
            for _ in range(int(replicas)):
                lane = QueryService(network, config)
                network._register_service(lane)
                self._lanes.append(lane)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._lanes)

    @property
    def lanes(self) -> Tuple[QueryService, ...]:
        return tuple(self._lanes)

    def route(self, request: QueryRequest) -> Tuple[int, QueryService]:
        """The (lane index, lane) this request's shape is affined to."""
        index = _shape_hash(request) % len(self._lanes)
        return index, self._lanes[index]

    def least_loaded(self) -> Tuple[int, QueryService]:
        """The lane with the fewest queued+inflight queries (batch/weighted
        routes have no per-shape affinity to protect)."""
        index = min(
            range(len(self._lanes)),
            key=lambda i: self._lanes[i]._scheduler.pending
            + self._lanes[i]._scheduler.inflight,
        )
        return index, self._lanes[index]

    # ------------------------------------------------------------------
    def occupancy(self) -> Tuple[int, int]:
        """(queued+inflight, capacity) across every lane — the shed load."""
        used = 0
        for lane in self._lanes:
            used += lane._scheduler.pending + lane._scheduler.inflight
        capacity = max(1, self.config.max_pending * len(self._lanes))
        return used, capacity

    def stats(self) -> dict:
        """Per-lane serving stats plus the aggregate occupancy."""
        used, capacity = self.occupancy()
        return {
            "replicas": len(self._lanes),
            "occupancy": used,
            "capacity": capacity,
            "lanes": [lane.stats() for lane in self._lanes],
        }

    def drain(self, timeout=None) -> bool:
        """Wait for every lane to go idle."""
        return all(lane.drain(timeout) for lane in self._lanes)

    def close(self) -> None:
        """Shut every lane down and detach it from the session."""
        for lane in self._lanes:
            try:
                lane.shutdown(wait=True)
            finally:
                self._net._unregister_service(lane)
        self._lanes = []
