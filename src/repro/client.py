"""The wire-native client: a remote session that feels like a local one.

:class:`RemoteNetwork` speaks the :mod:`repro.serving` protocol over plain
:mod:`http.client` (stdlib only) and mirrors the local
:class:`~repro.session.Network` query surface — the same fluent builder
refinements, the same terminal verbs, the same ``TopKResult`` /
``StreamUpdate`` / typed-exception types — so code written against a local
session ports to a remote one by changing the constructor::

    net = repro.RemoteNetwork("http://127.0.0.1:8642")
    result = net.query("relevance").limit(10).algorithm("backward").run()
    result = net.topk("relevance", 10)                    # one-shot
    handle = net.query("relevance").limit(5).submit()     # RemoteHandle
    for update in net.query("relevance").limit(3).stream():
        ...

Parity is structural, not best-effort: requests are lowered to the *same*
:class:`~repro.core.request.QueryRequest` a local builder produces (the
client validates before the bytes leave), results decode through the same
:mod:`repro.serving.protocol` functions the server encodes with, and error
payloads rehydrate the exact exception class via
:func:`repro.errors.error_from_wire` — a remote
``DeadlineExceededError`` *is* a ``DeadlineExceededError``.

Session-shaped defaults (hops, ball convention, backend) are learned from
``GET /v1/health`` on first use, so an unrefined remote query lowers to the
identical request an unrefined local one would.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union
from urllib.parse import urlencode, urlsplit

from repro.aggregates.weighted import inverse_distance, precompute_weights
from repro.core.request import DEFAULT_SCORE, QueryRequest
from repro.core.results import StreamUpdate, TopKResult
from repro.errors import (
    InvalidParameterError,
    ProtocolError,
    QueryCancelledError,
    ReproError,
    error_from_wire,
)
from repro.serving.protocol import decode_result, decode_update

__all__ = ["RemoteNetwork", "RemoteQueryBuilder", "RemoteHandle", "RetryPolicy"]

#: Seconds of server-side wait requested per long-poll round trip.
_POLL_CHUNK = 2.0

#: Builder refinements that are plain request-field setters.  Mirrors the
#: local ``QueryBuilder`` surface (``limit`` is the paper's name for ``k``;
#: ``where`` and the terminals are defined explicitly below).
_FIELD_REFINEMENTS = (
    "k",
    "hops",
    "aggregate",
    "algorithm",
    "backend",
    "gamma",
    "distribution_fraction",
    "exact_sizes",
    "ordering",
    "seed",
    "priority",
    "deadline",
)


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`RemoteNetwork` retries transient failures.

    A call is retried only when it failed with a connection-level error
    (``OSError`` / ``http.client`` breakage) or a decoded
    :class:`~repro.errors.ReproError` whose ``retryable`` flag is true —
    the server's own judgment of whether a retry can help, carried over
    the wire.  The wait before attempt ``i`` is exponential
    (``base_delay * multiplier**i`` capped at ``max_delay``), raised to
    any server-provided ``retry_after`` hint, then stretched by up to
    ``jitter`` of itself so synchronized clients do not retry in phase.
    ``max_delay`` doubles as the policy's patience: a ``retry_after``
    hint beyond it is futile to wait out, so the error is raised instead
    of slept on.

    ``attempts`` counts total tries, so ``attempts=1`` disables retries;
    construct with ``jitter=0.0`` for deterministic timing in tests.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise InvalidParameterError(
                f"retry attempts must be >= 1, got {self.attempts}"
            )
        for name in ("base_delay", "max_delay", "multiplier", "jitter"):
            if getattr(self, name) < 0:
                raise InvalidParameterError(
                    f"retry {name} must be >= 0, got {getattr(self, name)}"
                )

    def delay_for(
        self,
        attempt: int,
        retry_after: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> float:
        """Seconds to sleep after failed attempt ``attempt`` (0-based)."""
        backoff = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        delay = max(backoff, float(retry_after or 0.0))
        if self.jitter > 0.0 and rng is not None:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


class RemoteQueryBuilder:
    """Immutable fluent builder over the wire (mirror of ``QueryBuilder``).

    Every refinement returns a *new* builder; terminals (:meth:`run`,
    :meth:`submit`, :meth:`stream`, :meth:`request`) lower to a validated
    :class:`~repro.core.request.QueryRequest` with the field-pin mask set,
    exactly as the local builder does.
    """

    __slots__ = ("_net", "_score", "_fields", "_set")

    def __init__(
        self,
        net: "RemoteNetwork",
        score: str,
        fields: Optional[Dict[str, object]] = None,
        set_names: Tuple[str, ...] = (),
    ) -> None:
        self._net = net
        self._score = score
        self._fields = dict(fields or {})
        self._set = set_names

    def _with(self, name: str, value: object) -> "RemoteQueryBuilder":
        fields = dict(self._fields)
        fields[name] = value
        set_names = (
            self._set if name in self._set else self._set + (name,)
        )
        return RemoteQueryBuilder(self._net, self._score, fields, set_names)

    # -- refinements ---------------------------------------------------
    def limit(self, k: int) -> "RemoteQueryBuilder":
        """Paper-flavored alias of :meth:`k`."""
        return self._with("k", int(k))

    def where(self, candidates) -> "RemoteQueryBuilder":
        """Restrict the competition to these node ids.

        Remote builders only accept iterables of node ids — a predicate
        callable cannot cross the wire.
        """
        if callable(candidates):
            raise InvalidParameterError(
                "remote where(...) needs an iterable of node ids; "
                "predicates cannot be serialized"
            )
        return self._with("candidates", tuple(int(u) for u in candidates))

    def __getattr__(self, name: str):
        if name in _FIELD_REFINEMENTS:
            return lambda value: self._with(name, value)
        raise AttributeError(
            f"unknown query refinement {name!r}; expected one of "
            f"{sorted(_FIELD_REFINEMENTS + ('limit', 'where'))}"
        )

    # -- terminals -----------------------------------------------------
    def request(self) -> QueryRequest:
        """Lower to the validated request this builder describes."""
        defaults = self._net._session_defaults()
        fields = dict(self._fields)
        pinned = frozenset(self._set)
        for name, value in defaults.items():
            fields.setdefault(name, value)
        fields.setdefault("k", 10)
        return QueryRequest(score=self._score, pinned=pinned, **fields)

    def run(self, *, cached: bool = True) -> TopKResult:
        """Execute remotely and wait for the answer."""
        payload = self._net._call(
            "POST",
            "/v1/query",
            {"request": self.request().to_dict(), "cached": cached},
        )
        return decode_result(payload.get("result"))

    def submit(self, *, cached: bool = True) -> "RemoteHandle":
        """Submit without waiting; poll the returned handle."""
        return self._net._submit(self.request(), stream=False, cached=cached)

    def stream(self) -> Iterator[StreamUpdate]:
        """Subscribe to progressive refinements (server-side streaming)."""
        return self._net._submit(
            self.request(), stream=True, cached=False
        ).updates()


class RemoteHandle:
    """Client-side view of a query submitted via ``POST /v1/submit``.

    Mirrors the local :class:`~repro.service.handles.QueryHandle` verbs:
    :meth:`result`, :meth:`done`, :meth:`cancel`, :meth:`updates`.  The
    terminal answer (or typed error) is cached on first fetch — the server
    forgets a query once its outcome is delivered.
    """

    def __init__(self, net: "RemoteNetwork", query_id: str, *, stream: bool) -> None:
        self._net = net
        self.query_id = query_id
        self.stream = stream
        self.state = "pending"
        self._result: Optional[TopKResult] = None
        self._error: Optional[BaseException] = None
        self._terminal = False

    def _poll_once(self, wait: float) -> bool:
        """One ``GET /v1/result`` round trip; True when terminal."""
        if self._terminal:
            return True
        query = {"timeout": f"{max(0.0, wait):.3f}"} if wait else None
        try:
            payload = self._net._call(
                "GET", f"/v1/result/{self.query_id}", query=query
            )
        except ReproError as exc:
            self._error = exc
            self._terminal = True
            self.state = "failed"
            return True
        if payload.get("pending"):
            self.state = str(payload.get("state", "pending"))
            return False
        self._result = decode_result(payload.get("result"))
        self._terminal = True
        self.state = "done"
        return True

    def done(self) -> bool:
        """True once the query reached a terminal state (non-blocking)."""
        return self._poll_once(0.0)

    def result(self, timeout: Optional[float] = None) -> TopKResult:
        """Block (long-polling) for the answer; raises the typed error."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._terminal:
            if deadline is None:
                wait = _POLL_CHUNK
            else:
                wait = min(_POLL_CHUNK, deadline - time.monotonic())
                if wait <= 0 and not self._poll_once(0.0):
                    raise TimeoutError(
                        f"query {self.query_id} still {self.state} "
                        f"after {timeout} seconds"
                    )
            self._poll_once(wait)
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The terminal error (None on success); blocks like :meth:`result`."""
        try:
            self.result(timeout)
        except TimeoutError:
            raise
        except BaseException as exc:
            return exc
        return None

    def cancel(self) -> bool:
        """Ask the server to cancel; True when no result will be produced."""
        if self._terminal:
            return self._error is not None and isinstance(
                self._error, QueryCancelledError
            )
        payload = self._net._call("POST", f"/v1/cancel/{self.query_id}")
        self.state = str(payload.get("state", self.state))
        return bool(payload.get("cancelled"))

    def updates(self, timeout: Optional[float] = None) -> Iterator[StreamUpdate]:
        """Yield streaming refinements via ``GET /v1/updates`` long-polls."""
        if not self.stream:
            raise QueryCancelledError(
                "handle was not submitted with stream=True"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        cursor = 0
        while True:
            wait = _POLL_CHUNK
            if deadline is not None:
                wait = min(wait, deadline - time.monotonic())
                if wait < 0:
                    raise TimeoutError(
                        f"stream {self.query_id} produced no update in time"
                    )
            payload = self._net._call(
                "GET",
                f"/v1/updates/{self.query_id}",
                query={"cursor": str(cursor), "timeout": f"{max(wait, 0.0):.3f}"},
            )
            for raw in payload.get("updates", ()):
                yield decode_update(raw)
            cursor = int(payload.get("cursor", cursor))
            if payload.get("done"):
                self._terminal = True
                error = payload.get("error")
                if error is not None:
                    self._error = error_from_wire(error)
                    self.state = "failed"
                    raise self._error
                self.state = "done"
                return


class RemoteNetwork:
    """A :class:`~repro.session.Network`-shaped client for a query server.

    Parameters
    ----------
    url:
        ``http://host:port`` of a running :class:`repro.serving.QueryServer`.
    tenant:
        Optional tenant name sent as ``X-Repro-Tenant`` on every request —
        the unit of the server's quota and rate-limit accounting.
    timeout:
        Socket timeout per HTTP round trip (long-polls add their own wait).
    retry:
        A :class:`RetryPolicy` governing transient-failure retries, or
        ``None`` to fail fast on the first error.  The default retries
        connection breakage and ``retryable`` wire errors three times
        with jittered exponential backoff; submissions carry an
        idempotency key so a retried ``/v1/submit`` can never run the
        same query twice.
    """

    def __init__(
        self,
        url: str,
        *,
        tenant: Optional[str] = None,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = RetryPolicy(),
    ) -> None:
        parts = urlsplit(url if "//" in url else f"//{url}", scheme="http")
        if parts.scheme != "http" or not parts.hostname:
            raise InvalidParameterError(
                f"expected an http://host:port server url, got {url!r}"
            )
        self._host = parts.hostname
        self._port = parts.port or 80
        self._timeout = float(timeout)
        self.tenant = tenant
        self.retry = retry
        self._rng = random.Random()  # jitter only; never affects results
        self._conn: Optional[http.client.HTTPConnection] = None
        self._conn_lock = threading.Lock()
        self._defaults: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _call(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        *,
        query: Optional[Dict[str, str]] = None,
    ) -> dict:
        """One logical call: round trips with transient-failure retries.

        Retries (per :class:`RetryPolicy`) only on connection-level
        failures and wire errors the server marked ``retryable`` —
        honoring any ``retry_after`` hint the error carried.  A hint
        beyond the policy's ``max_delay`` means no in-budget retry can
        succeed (the server said "not before then"), so the typed error
        surfaces immediately instead of blocking the caller.  Every route
        this client retries is safe to repeat: queries are pure reads and
        ``/v1/submit`` bodies carry an idempotency key.
        """
        policy = self.retry
        attempt = 0
        while True:
            retry_after: Optional[float] = None
            try:
                return self._call_once(method, path, body, query=query)
            except ReproError as exc:
                exhausted = policy is None or attempt + 1 >= policy.attempts
                if exhausted or not getattr(exc, "retryable", False):
                    raise
                retry_after = getattr(exc, "retry_after", None)
                if retry_after is not None and (
                    float(retry_after) > policy.max_delay
                ):
                    raise
            except (OSError, http.client.HTTPException):
                if policy is None or attempt + 1 >= policy.attempts:
                    raise
            time.sleep(policy.delay_for(attempt, retry_after, self._rng))
            attempt += 1

    def _call_once(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        *,
        query: Optional[Dict[str, str]] = None,
    ) -> dict:
        """One JSON round trip; raises the rehydrated typed error."""
        target = path if not query else f"{path}?{urlencode(query)}"
        blob = json.dumps(body).encode("utf-8") if body is not None else b""
        headers = {"Content-Type": "application/json"}
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        with self._conn_lock:
            for attempt in (1, 2):
                if self._conn is None:
                    self._conn = http.client.HTTPConnection(
                        self._host, self._port, timeout=self._timeout
                    )
                try:
                    self._conn.request(method, target, blob, headers)
                    response = self._conn.getresponse()
                    raw = response.read()
                    status = response.status
                    break
                except (OSError, http.client.HTTPException):
                    # Stale keep-alive (server restarted, idle close):
                    # reconnect once before giving up.
                    self._close_conn()
                    if attempt == 2:
                        raise
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError as exc:
            raise ProtocolError(
                f"server sent a non-JSON response (HTTP {status}): {exc}"
            ) from None
        if isinstance(payload, dict) and "error" in payload:
            raise error_from_wire(payload["error"])
        if status >= 400:
            raise ProtocolError(f"HTTP {status} without an error payload")
        if not isinstance(payload, dict):
            raise ProtocolError("server response must be a JSON object")
        return payload

    def _close_conn(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:
                pass
            self._conn = None

    def close(self) -> None:
        """Drop the keep-alive connection (the client is restartable)."""
        with self._conn_lock:
            self._close_conn()

    def __enter__(self) -> "RemoteNetwork":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """``GET /v1/health`` — liveness plus the session's shape."""
        payload = self._call("GET", "/v1/health")
        self._defaults = {
            "hops": int(payload["hops"]),
            "include_self": bool(payload["include_self"]),
            "backend": str(payload["backend"]),
        }
        return payload

    def stats(self) -> dict:
        """``GET /v1/stats`` — serving, admission, and per-lane stats."""
        return self._call("GET", "/v1/stats")

    def score_names(self) -> Tuple[str, ...]:
        """Registered score names on the server's session."""
        return tuple(self._call("GET", "/v1/scores")["scores"])

    def _session_defaults(self) -> Dict[str, object]:
        """Server-session defaults (hops/ball/backend), fetched once, so an
        unrefined remote query lowers identically to an unrefined local one."""
        if self._defaults is None:
            self.health()
        assert self._defaults is not None
        return dict(self._defaults)

    # ------------------------------------------------------------------
    # Queries (the Network-parity surface)
    # ------------------------------------------------------------------
    def query(self, score: str = DEFAULT_SCORE) -> RemoteQueryBuilder:
        """Start a fluent query against a named server-side score vector."""
        return RemoteQueryBuilder(self, score)

    def topk(
        self,
        score: str,
        k: int,
        aggregate: object = "sum",
        **builder_options: object,
    ) -> TopKResult:
        """One-shot convenience mirroring ``Network.topk``:
        ``query(score).limit(k)....run()`` over the wire."""
        builder = self.query(score).limit(k).aggregate(aggregate)
        for name, value in builder_options.items():
            builder = getattr(builder, name)(value)
        return builder.run()

    def run(self, request: Union[QueryRequest, dict], *, cached: bool = True) -> TopKResult:
        """Execute one already-lowered request (or its ``to_dict`` payload)."""
        if isinstance(request, QueryRequest):
            payload = request.to_dict()
        elif isinstance(request, dict):
            payload = QueryRequest.from_dict(request).to_dict()
        else:
            raise InvalidParameterError(
                f"expected a QueryRequest or payload dict, got {type(request).__name__}"
            )
        out = self._call("POST", "/v1/query", {"request": payload, "cached": cached})
        return decode_result(out.get("result"))

    def _submit(
        self, request: QueryRequest, *, stream: bool, cached: bool
    ) -> RemoteHandle:
        # The key is minted once per logical submission, *outside* the
        # retry loop: a retried request replays the same key and the
        # server's dedup journal answers with the original query id
        # instead of executing the query a second time.
        payload = self._call(
            "POST",
            "/v1/submit",
            {
                "request": request.to_dict(),
                "stream": stream,
                "cached": cached,
                "idempotency_key": uuid.uuid4().hex,
            },
        )
        query_id = payload.get("query_id")
        if not isinstance(query_id, str):
            raise ProtocolError(f"malformed submit response: {payload!r}")
        return RemoteHandle(self, query_id, stream=stream)

    def submit(
        self,
        request: QueryRequest,
        *,
        stream: bool = False,
        cached: bool = True,
    ) -> RemoteHandle:
        """Submit a lowered request; returns a pollable :class:`RemoteHandle`."""
        return self._submit(request, stream=stream, cached=cached)

    def batch(
        self,
        queries: Sequence[Union[RemoteQueryBuilder, QueryRequest, Tuple[str, int], Tuple[str, int, str]]],
    ) -> List[TopKResult]:
        """Answer many queries in one round trip (one result each, in order).

        Accepts remote builders, lowered requests, or ``(score, k[,
        aggregate])`` tuples.  Server-side the batch lands on one replica
        lane so compatible queries coalesce into shared scans.
        """
        payload: List[dict] = []
        for i, item in enumerate(queries):
            if isinstance(item, RemoteQueryBuilder):
                payload.append(item.request().to_dict())
            elif isinstance(item, QueryRequest):
                payload.append(item.to_dict())
            elif isinstance(item, tuple) and len(item) in (2, 3):
                score, k = str(item[0]), int(item[1])
                aggregate = str(item[2]) if len(item) == 3 else "sum"
                defaults = self._session_defaults()
                payload.append(
                    QueryRequest(
                        k=k, score=score, aggregate=aggregate, **defaults
                    ).to_dict()
                )
            else:
                raise InvalidParameterError(
                    f"batch item {i} must be a builder, request, or "
                    f"(score, k[, aggregate]) tuple, got {type(item).__name__}"
                )
        out = self._call("POST", "/v1/batch", {"queries": payload})
        return [decode_result(raw) for raw in out.get("results", ())]

    def topk_weighted(
        self,
        score: str,
        k: int,
        profile=None,
        algorithm: str = "backward",
        **options: object,
    ) -> TopKResult:
        """Distance-weighted top-k (the paper's footnote 1), remotely.

        The profile callable cannot cross the wire, so the client
        tabulates it to the server session's hop radius with
        :func:`~repro.aggregates.weighted.precompute_weights` and sends
        the table — bitwise the same weights a local run would use.
        """
        hops = int(self._session_defaults()["hops"])
        weights = precompute_weights(profile or inverse_distance, hops)
        out = self._call(
            "POST",
            "/v1/weighted",
            {
                "score": score,
                "k": int(k),
                "weights": [float(w) for w in weights],
                "algorithm": algorithm,
                "options": dict(options),
            },
        )
        return decode_result(out.get("result"))
