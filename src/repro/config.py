"""Typed configuration objects for the session's serving and parallel tiers.

``Network.service(...)`` and ``Network.parallel(...)`` historically took
loose keyword options that were forwarded — and only validated — deep
inside :class:`~repro.service.QueryService` and
:class:`~repro.parallel.engine.ParallelEngine`.  Now that the same knobs
arrive from many directions (the fluent API, the CLI, the network server's
JSON config file), each tier has one frozen dataclass that is the single
schema for them all:

* :class:`ServiceConfig` — the in-process serving tier (scheduler threads,
  admission bound, coalescing, result cache, process offload).
* :class:`ParallelConfig` — the multi-core engine (worker-process pool,
  decline threshold, partitioner, IPC timeout).
* :class:`ClusterConfig` — the socket-cluster engine (spawned or addressed
  workers, shard count, ship policy, round timeout).

Every entry point normalizes through :meth:`~ServiceConfig.coerce`, which
accepts an instance, a plain mapping (e.g. a parsed JSON section), or bare
keyword options — and **rejects unknown keys** with a
:class:`~repro.errors.InvalidParameterError` naming the valid ones, instead
of the old silently-forwarded ``TypeError`` from an inner constructor.
Instances are frozen and comparable, which is what makes
``net.service(cfg)`` idempotent: reconfiguring with an equal config is a
no-op rather than a drain-and-restart.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Mapping, Optional, Union

from repro.errors import InvalidParameterError

__all__ = ["ServiceConfig", "ParallelConfig", "ClusterConfig"]


class _FrozenConfig:
    """Shared coerce/validate/serialize machinery for the config classes."""

    @classmethod
    def _field_names(cls) -> tuple:
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_options(cls, options: Mapping[str, object]) -> "_FrozenConfig":
        """Build from a mapping, rejecting unknown keys by name.

        This is the one place option names are checked, so the fluent API,
        the CLI, and the server config file all produce the same error for
        the same typo.
        """
        if not isinstance(options, Mapping):
            raise InvalidParameterError(
                f"{cls.__name__} options must be a mapping, "
                f"got {type(options).__name__}"
            )
        known = cls._field_names()
        unknown = sorted(set(options) - set(known))
        if unknown:
            raise InvalidParameterError(
                f"unknown {cls.__name__} option(s) {unknown}; "
                f"expected a subset of {list(known)}"
            )
        return cls(**dict(options))  # type: ignore[arg-type]

    @classmethod
    def coerce(
        cls,
        config: Optional[Union["_FrozenConfig", Mapping[str, object]]] = None,
        options: Optional[Mapping[str, object]] = None,
    ) -> "_FrozenConfig":
        """Normalize the (config-object, loose-kwargs) calling convention.

        Exactly one of the two styles may carry settings: passing both a
        config and keyword options is ambiguous and rejected.
        """
        if config is not None and options:
            raise InvalidParameterError(
                f"pass either a {cls.__name__} (or mapping) or keyword "
                "options, not both"
            )
        if config is None:
            return cls.from_options(options or {})
        if isinstance(config, cls):
            return config
        if isinstance(config, Mapping):
            return cls.from_options(config)
        raise InvalidParameterError(
            f"expected a {cls.__name__} or a mapping, "
            f"got {type(config).__name__}"
        )

    def as_dict(self) -> dict:
        """Plain JSON-safe dict of every field (round-trips from_options)."""
        return asdict(self)

    def replace(self, **changes: object) -> "_FrozenConfig":
        """A copy with the given fields replaced (validated anew)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ServiceConfig(_FrozenConfig):
    """Configuration of one :class:`~repro.service.QueryService`.

    ``workers`` scheduler threads (0 = inline execution on the submitting
    thread); ``max_pending`` is the admission-control queue bound;
    ``coalesce``/``coalesce_limit`` govern fused shared scans;
    ``cache_entries`` sizes the result cache (0 disables);
    ``processes=True`` offloads unpinned queries to the process-parallel
    backend; ``cluster=True`` offloads them to the socket-cluster backend
    instead (mutually exclusive with ``processes``).
    """

    workers: int = 0
    max_pending: int = 1024
    coalesce: bool = True
    coalesce_limit: int = 64
    cache_entries: int = 512
    processes: bool = False
    cluster: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "workers", int(self.workers))
        object.__setattr__(self, "max_pending", int(self.max_pending))
        object.__setattr__(self, "coalesce", bool(self.coalesce))
        object.__setattr__(self, "coalesce_limit", int(self.coalesce_limit))
        object.__setattr__(self, "cache_entries", int(self.cache_entries))
        object.__setattr__(self, "processes", bool(self.processes))
        object.__setattr__(self, "cluster", bool(self.cluster))
        if self.processes and self.cluster:
            raise InvalidParameterError(
                "processes=True and cluster=True are mutually exclusive; "
                "unpinned queries can offload to one sharded backend only"
            )
        if self.workers < 0:
            raise InvalidParameterError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.max_pending < 1:
            raise InvalidParameterError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.coalesce_limit < 2:
            raise InvalidParameterError(
                f"coalesce_limit must be >= 2, got {self.coalesce_limit}"
            )
        if self.cache_entries < 0:
            raise InvalidParameterError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )


@dataclass(frozen=True)
class ParallelConfig(_FrozenConfig):
    """Configuration of one :class:`~repro.parallel.engine.ParallelEngine`.

    ``None`` means "the engine's default": ``workers=None`` sizes the pool
    to ``os.cpu_count()``; ``min_nodes=None`` keeps the engine's decline
    threshold (:data:`~repro.parallel.engine.DEFAULT_MIN_NODES`).
    ``work_stealing`` splits shard scans into chunks fed dynamically to
    idle workers (skew tolerance); ``result_buffers`` ships scan results
    through preallocated shared-memory buffers instead of pickled pipe
    replies.  Both default on; they exist as switches so the bench can
    measure each and a pathological workload can opt out.
    """

    workers: Optional[int] = None
    min_nodes: Optional[int] = None
    partitioner: str = "bfs"
    seed: int = 2010
    timeout: float = 120.0
    work_stealing: bool = True
    result_buffers: bool = True

    def __post_init__(self) -> None:
        if self.workers is not None:
            object.__setattr__(self, "workers", int(self.workers))
            if self.workers < 1:
                raise InvalidParameterError(
                    f"workers must be >= 1, got {self.workers}"
                )
        if self.min_nodes is not None:
            object.__setattr__(self, "min_nodes", int(self.min_nodes))
            if self.min_nodes < 0:
                raise InvalidParameterError(
                    f"min_nodes must be >= 0, got {self.min_nodes}"
                )
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "timeout", float(self.timeout))
        object.__setattr__(self, "work_stealing", bool(self.work_stealing))
        object.__setattr__(self, "result_buffers", bool(self.result_buffers))
        if self.timeout <= 0:
            raise InvalidParameterError(
                f"timeout must be > 0, got {self.timeout}"
            )

    def to_engine_kwargs(self) -> dict:
        """Engine-constructor kwargs (``None`` fields fall to the engine)."""
        out = {name: getattr(self, name) for name in self._field_names()}
        return {k: v for k, v in out.items() if v is not None}


@dataclass(frozen=True)
class ClusterConfig(_FrozenConfig):
    """Configuration of one :class:`~repro.cluster.engine.ClusterEngine`.

    ``workers`` is either a count of locally spawned ``cluster-worker``
    processes (the single-machine form) or a list/tuple of ``host:port``
    addresses of already-running workers (the multi-machine form).
    ``shards`` defaults to the worker count; a smaller value leaves standby
    workers that only serve re-issued tasks.  ``ship_policy`` is
    ``"threshold"`` (θ-shipping + adaptive quotas, the default) or
    ``"all"`` (naive ship-everything, the bench baseline).
    """

    workers: object = 2
    shards: Optional[int] = None
    min_nodes: Optional[int] = None
    partitioner: str = "bfs"
    seed: int = 2010
    timeout: float = 120.0
    connect_timeout: float = 10.0
    io_timeout: float = 30.0
    hedge: bool = True
    ship_policy: str = "threshold"

    def __post_init__(self) -> None:
        workers = self.workers
        if isinstance(workers, int):
            if workers < 1:
                raise InvalidParameterError(
                    f"workers must be >= 1, got {workers}"
                )
        elif isinstance(workers, (list, tuple)):
            if not workers:
                raise InvalidParameterError(
                    "workers address list must not be empty"
                )
            object.__setattr__(
                self, "workers", tuple(str(a) for a in workers)
            )
        else:
            raise InvalidParameterError(
                "workers must be an int (spawn locally) or a list of "
                f"host:port addresses, got {type(workers).__name__}"
            )
        if self.shards is not None:
            object.__setattr__(self, "shards", int(self.shards))
            if self.shards < 1:
                raise InvalidParameterError(
                    f"shards must be >= 1, got {self.shards}"
                )
        if self.min_nodes is not None:
            object.__setattr__(self, "min_nodes", int(self.min_nodes))
            if self.min_nodes < 0:
                raise InvalidParameterError(
                    f"min_nodes must be >= 0, got {self.min_nodes}"
                )
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "timeout", float(self.timeout))
        if self.timeout <= 0:
            raise InvalidParameterError(
                f"timeout must be > 0, got {self.timeout}"
            )
        for name in ("connect_timeout", "io_timeout"):
            object.__setattr__(self, name, float(getattr(self, name)))
            if getattr(self, name) <= 0:
                raise InvalidParameterError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )
        object.__setattr__(self, "hedge", bool(self.hedge))
        if self.ship_policy not in ("threshold", "all"):
            raise InvalidParameterError(
                "ship_policy must be 'threshold' or 'all', "
                f"got {self.ship_policy!r}"
            )

    def as_dict(self) -> dict:
        """JSON-safe dict (the workers tuple serializes as a list)."""
        out = asdict(self)
        if isinstance(out.get("workers"), tuple):
            out["workers"] = list(out["workers"])
        return out

    def to_engine_kwargs(self) -> dict:
        """Engine-constructor kwargs (``None`` fields fall to the engine)."""
        out = {name: getattr(self, name) for name in self._field_names()}
        return {k: v for k, v in out.items() if v is not None}
