"""Deterministic fault injection (see :mod:`repro.faults.plan`).

The catalog of fault-point names lives in
``repro/analysis/project.py`` (``DEFAULT_CONFIG.fault_points``) and is
enforced by repro-check rule RC007: names are unique, registered, and no
production code path installs a plan.
"""

from repro.faults.plan import (
    ENV_VAR,
    FAULT_KINDS,
    PRESET_NAMES,
    FaultPlan,
    FaultRule,
    active_plan,
    clear_plan,
    fault_frame,
    fault_point,
    install_plan,
    preset_plan,
)

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "PRESET_NAMES",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "clear_plan",
    "fault_frame",
    "fault_point",
    "install_plan",
    "preset_plan",
]
