"""Deterministic, seeded fault injection for the distributed seams.

Every distributed layer (parallel pool, socket cluster, HTTP serving)
declares named **fault points** — :func:`fault_point` for control-flow
faults, :func:`fault_frame` where raw frame bytes pass by.  With no plan
installed a fault point is one global load and a ``None`` check, so the
hooks stay in production code permanently (the disabled cost is measured
by ``benchmarks/bench_faults.py`` and gated < 1%).

A :class:`FaultPlan` is a seeded schedule of fault events::

    plan = FaultPlan.from_spec({
        "seed": 7,
        "rules": [
            {"point": "cluster.worker.task", "kind": "crash",
             "after": 3, "count": 1},
            {"point": "cluster.frame.send", "kind": "corrupt_frame",
             "probability": 0.25},
        ],
    })
    install_plan(plan)

Rules fire on per-point *hit counters* and per-rule seeded RNG streams, so
the same plan against the same execution replays the same failure
sequence — that is what makes a chaos failure a unit test instead of a
flake.  Activation is strictly opt-in: :func:`install_plan` in-process, or
the ``REPRO_FAULT_PLAN`` environment variable (inline JSON, ``@path``, or
``preset:NAME,seed=N``), which spawned worker processes inherit.  No
production code path installs a plan — the RC007 repro-check rule enforces
that, plus the uniqueness and registration of every fault-point name
(see ``repro/analysis/rules/rc007_faults.py``).

Fault kinds and how they manifest at a point:

``crash``
    ``os._exit(86)`` — an abrupt process death, exactly what the pool's
    and transport's respawn/re-issue machinery must absorb.
``delay``
    ``time.sleep(rule.delay)`` — a straggler; hedging's prey.
``transient_error``
    raises :class:`~repro.errors.FaultInjectedError` (``retryable=True``)
    — a recoverable, typed failure the re-issue/retry layers must absorb.
``refuse_connect``
    raises ``ConnectionRefusedError`` — a down peer at connect time.
``truncate_frame`` / ``corrupt_frame``
    at a :func:`fault_frame` site, cut the frame short / flip bytes in its
    header region so the receiver fails its decode *loudly* (never
    silently corrupting payload data); at a plain :func:`fault_point`
    site they degrade to a ``ConnectionError``.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import FaultInjectedError, InvalidParameterError

__all__ = [
    "FAULT_KINDS",
    "FaultRule",
    "FaultPlan",
    "fault_point",
    "fault_frame",
    "install_plan",
    "clear_plan",
    "active_plan",
    "preset_plan",
    "PRESET_NAMES",
]

FAULT_KINDS = frozenset(
    {
        "crash",
        "delay",
        "truncate_frame",
        "corrupt_frame",
        "refuse_connect",
        "transient_error",
    }
)

#: Environment variable read once at import; worker processes inherit it.
ENV_VAR = "REPRO_FAULT_PLAN"


@dataclass(frozen=True)
class FaultRule:
    """One line of a fault schedule.

    ``point`` is an exact fault-point name or a ``prefix.*`` glob.  The
    rule fires on a hit when the point's hit counter has passed ``after``,
    the rule has fired fewer than ``count`` times (``None`` = unlimited),
    every ``match`` label equals the fault point's label, and the rule's
    seeded RNG draw lands under ``probability``.
    """

    point: str
    kind: str
    probability: float = 1.0
    after: int = 0
    count: Optional[int] = None
    delay: float = 0.05
    match: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise InvalidParameterError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )

    def matches_point(self, name: str) -> bool:
        if self.point.endswith(".*"):
            return name.startswith(self.point[:-1])
        return name == self.point

    def matches_labels(self, labels: Mapping[str, object]) -> bool:
        return all(labels.get(key) == value for key, value in self.match.items())

    def to_spec(self) -> dict:
        spec: dict = {"point": self.point, "kind": self.kind}
        if self.probability != 1.0:
            spec["probability"] = self.probability
        if self.after:
            spec["after"] = self.after
        if self.count is not None:
            spec["count"] = self.count
        if self.kind == "delay":
            spec["delay"] = self.delay
        if self.match:
            spec["match"] = dict(self.match)
        return spec


class FaultPlan:
    """A seeded, replayable schedule of fault events.

    Thread-safe: the decision path takes one lock (fault points sit at
    frame/connection/task boundaries, never inside kernels, so the lock is
    uncontended in practice).  Per-rule RNG streams are seeded from
    ``(seed, rule index)`` via the string-seeding path, which is stable
    across Python versions — two processes running the same plan against
    the same hit sequence take identical fault decisions.
    """

    def __init__(self, rules: Sequence[FaultRule], *, seed: int = 0) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._fired_counts: List[int] = [0] * len(self.rules)
        self._rngs = [
            random.Random(f"repro-faults:{self.seed}:{index}")
            for index in range(len(self.rules))
        ]
        #: Chronological (point, kind, hit) log of every fired event.
        self.fired: List[Tuple[str, str, int]] = []

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Mapping[str, object]) -> "FaultPlan":
        if not isinstance(spec, Mapping):
            raise InvalidParameterError(
                f"fault plan spec must be an object, got {type(spec).__name__}"
            )
        raw_rules = spec.get("rules") or ()
        rules = []
        for raw in raw_rules:
            if not isinstance(raw, Mapping):
                raise InvalidParameterError(
                    f"fault rule must be an object, got {raw!r}"
                )
            kwargs = dict(raw)
            unknown = set(kwargs) - {
                "point",
                "kind",
                "probability",
                "after",
                "count",
                "delay",
                "match",
            }
            if unknown:
                raise InvalidParameterError(
                    f"unknown fault rule field(s): {sorted(unknown)}"
                )
            rules.append(FaultRule(**kwargs))
        return cls(rules, seed=int(spec.get("seed", 0) or 0))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULT_PLAN`` forms.

        * inline JSON: ``{"seed": 3, "rules": [...]}``
        * a file: ``@/path/to/plan.json``
        * a named preset: ``preset:crash-heavy,seed=3``
        """
        text = text.strip()
        if not text:
            raise InvalidParameterError("empty fault plan spec")
        if text.startswith("@"):
            with open(text[1:], "r", encoding="utf-8") as handle:
                return cls.from_spec(json.load(handle))
        if text.startswith("preset:"):
            body = text[len("preset:") :]
            name, _, tail = body.partition(",")
            seed = 0
            if tail:
                key, _, value = tail.partition("=")
                if key.strip() != "seed" or not value.strip().lstrip("-").isdigit():
                    raise InvalidParameterError(
                        f"malformed preset spec {text!r}; "
                        f"expected preset:NAME[,seed=N]"
                    )
                seed = int(value)
            return preset_plan(name.strip(), seed=seed)
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(
                f"fault plan is not valid JSON, @path, or preset:NAME: {exc}"
            ) from None
        return cls.from_spec(spec)

    def to_spec(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [rule.to_spec() for rule in self.rules],
        }

    # ------------------------------------------------------------------
    def decide(
        self, name: str, labels: Mapping[str, object]
    ) -> Optional[FaultRule]:
        """Advance ``name``'s hit counter; the rule that fires, if any."""
        with self._lock:
            hit = self._hits.get(name, 0) + 1
            self._hits[name] = hit
            for index, rule in enumerate(self.rules):
                if not rule.matches_point(name):
                    continue
                if not rule.matches_labels(labels):
                    continue
                if rule.count is not None and (
                    self._fired_counts[index] >= rule.count
                ):
                    continue
                if hit <= rule.after:
                    continue
                if (
                    rule.probability < 1.0
                    and self._rngs[index].random() >= rule.probability
                ):
                    continue
                self._fired_counts[index] += 1
                self.fired.append((name, rule.kind, hit))
                return rule
        return None

    def hits(self) -> Dict[str, int]:
        """Snapshot of per-point hit counters (observability/bench)."""
        with self._lock:
            return dict(self._hits)

    def stats(self) -> dict:
        with self._lock:
            return {
                "seed": self.seed,
                "rules": len(self.rules),
                "hits": dict(self._hits),
                "fired": list(self.fired),
            }


# ----------------------------------------------------------------------
# The active plan + the hooks production code calls
# ----------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` process-wide (``None`` deactivates).

    Test/bench-only: production code never calls this (RC007 enforces it);
    worker processes pick plans up from ``REPRO_FAULT_PLAN`` instead.
    """
    global _PLAN
    _PLAN = plan


def clear_plan() -> None:
    install_plan(None)


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


def _execute(rule: FaultRule, name: str) -> None:
    kind = rule.kind
    if kind == "delay":
        time.sleep(rule.delay)
    elif kind == "crash":
        os._exit(86)
    elif kind == "transient_error":
        raise FaultInjectedError(f"injected transient error at {name}")
    elif kind == "refuse_connect":
        raise ConnectionRefusedError(f"injected connect refusal at {name}")
    else:
        # truncate/corrupt at a non-frame point: the nearest physical
        # analogue is a broken connection.
        raise ConnectionError(f"injected {kind} at {name}")


def fault_point(name: str, **labels: object) -> None:
    """Named injection hook; a no-op unless a plan is installed."""
    plan = _PLAN
    if plan is None:
        return
    rule = plan.decide(name, labels)
    if rule is not None:
        _execute(rule, name)


def fault_frame(
    name: str, data: bytes, *, header_offset: int = 8, **labels: object
) -> bytes:
    """Frame-bytes injection hook; returns ``data`` unchanged when disabled.

    ``header_offset`` is where the frame's JSON header region starts in
    ``data`` — corruption is confined to it so a corrupted frame always
    fails the receiver's decode instead of silently bending array blobs.
    A truncating site must treat a shortened return value as a mid-frame
    connection cut (ship the prefix, then fail like the network did).
    """
    plan = _PLAN
    if plan is None:
        return data
    rule = plan.decide(name, labels)
    if rule is None:
        return data
    if rule.kind == "truncate_frame":
        keep = min(len(data), header_offset + 2)
        return data[:keep]
    if rule.kind == "corrupt_frame":
        buffer = bytearray(data)
        start = min(header_offset, max(0, len(buffer) - 1))
        for index in range(start, min(len(buffer), start + 16)):
            buffer[index] ^= 0x5A
        return bytes(buffer)
    _execute(rule, name)
    return data


# ----------------------------------------------------------------------
# Presets — the CI chaos matrix and the quickstart vocabulary
# ----------------------------------------------------------------------

PRESET_NAMES = ("crash-heavy", "delay-heavy", "corrupt-heavy")


def preset_plan(name: str, *, seed: int = 0) -> FaultPlan:
    """A canonical plan per chaos profile, varied by ``seed``.

    ``after`` offsets keep crash storms inside the transports' respawn
    budgets for a single-query workload: each worker process dies at most
    once per generation, with at least a few completed tasks between
    generations, so recovery always converges.
    """
    if name == "crash-heavy":
        rules = [
            {"point": "cluster.worker.task", "kind": "crash",
             "after": 3 + seed % 2, "count": 1},
            {"point": "parallel.worker.task", "kind": "crash",
             "after": 2 + seed % 3, "count": 1},
        ]
    elif name == "delay-heavy":
        rules = [
            {"point": "cluster.worker.task", "kind": "delay",
             "delay": 0.05, "probability": 0.4},
            {"point": "parallel.worker.task", "kind": "delay",
             "delay": 0.05, "probability": 0.4},
            {"point": "cluster.frame.send", "kind": "delay",
             "delay": 0.01, "probability": 0.2},
            {"point": "serving.connection", "kind": "delay",
             "delay": 0.01, "probability": 0.2},
        ]
    elif name == "corrupt-heavy":
        rules = [
            {"point": "cluster.frame.send", "kind": "corrupt_frame",
             "after": 2 + seed % 3, "count": 1},
            {"point": "cluster.worker.frame.recv", "kind": "truncate_frame",
             "after": 5 + seed % 3, "count": 1},
            {"point": "cluster.frame.recv", "kind": "corrupt_frame",
             "after": 8 + seed % 3, "count": 1},
        ]
    else:
        raise InvalidParameterError(
            f"unknown fault preset {name!r}; expected one of {PRESET_NAMES}"
        )
    return FaultPlan.from_spec({"seed": seed, "rules": rules})


def _bootstrap_from_env() -> None:
    spec = os.environ.get(ENV_VAR)
    if spec:
        # Loud on malformed specs: a fault plan is a test instrument, and
        # a silently-ignored one would report green runs that tested
        # nothing.
        install_plan(FaultPlan.parse(spec))


_bootstrap_from_env()
