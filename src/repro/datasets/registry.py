"""Dataset registry: named, reproducible stand-ins for the paper's graphs.

The paper's three evaluation networks cannot ship with this repository
(cond-mat-2005 is a third-party download; NBER cite75_99 is 16M edges; the
IPsec intrusion network is proprietary).  Following the substitution rule in
DESIGN.md Sec. 3, each is replaced by a *generated* graph that preserves the
structural properties LONA's behaviour depends on — degree distribution
shape, clustering, directedness, and sparsity — at a configurable scale.

``load(name, scale=..., seed=...)`` is the single entry point; ``scale=1.0``
targets sizes a pure-Python implementation sweeps comfortably (the paper's
absolute sizes are recorded in each spec for the record).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph

__all__ = ["DatasetSpec", "register", "load", "available", "spec_of"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata binding a stand-in generator to the paper's dataset."""

    name: str
    paper_name: str
    paper_nodes: int
    paper_edges: int
    description: str
    builder: Callable[[float, Optional[int]], Graph]

    def build(self, scale: float = 1.0, seed: Optional[int] = None) -> Graph:
        """Generate the stand-in at the given scale."""
        if scale <= 0:
            raise InvalidParameterError(f"scale must be > 0, got {scale}")
        return self.builder(scale, seed)


_REGISTRY: Dict[str, DatasetSpec] = {}


def register(spec: DatasetSpec) -> DatasetSpec:
    """Add a spec to the registry (module-import time)."""
    if spec.name in _REGISTRY:
        raise InvalidParameterError(f"dataset {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def available() -> Tuple[str, ...]:
    """Registered dataset names."""
    return tuple(sorted(_REGISTRY))


def spec_of(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; available: {', '.join(available())}"
        ) from None


def load(name: str, *, scale: float = 1.0, seed: Optional[int] = None) -> Graph:
    """Build the named dataset stand-in."""
    return spec_of(name).build(scale, seed)
