"""Stand-in for the IPsec intrusion network (proprietary IP traffic data).

Paper profile: ~2.5M nodes, ~4.3M edges — average degree ~3.4, i.e. very
sparse; intrusion traffic graphs are dominated by a modest number of
scanner/attacker IPs each touching many victims (heavy-tailed stars), most
victims touched once or twice, plus sparse cross-links through shared
infrastructure, leaving many small components.

Substitute: :func:`repro.graph.generators.star_burst` with geometric hub
sizes and a 10% "mass scanner" mixture for the heavy tail.  The many-small-
components + few-huge-hubs shape is what makes the intrusion figures look
different from the other two: most balls are tiny (cheap), a few are
enormous (expensive), and a higher blacking ratio (r=0.2 in Fig. 3) is
needed for interesting SUM answers — all reproduced by this generator.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.registry import DatasetSpec, register
from repro.graph.generators import star_burst
from repro.graph.graph import Graph

__all__ = ["INTRUSION", "build_intrusion"]

#: Nodes at scale=1.0 (paper: 2.5M).
BASE_NODES = 8000


def build_intrusion(scale: float = 1.0, seed: Optional[int] = None) -> Graph:
    """Generate the intrusion stand-in at ``scale``."""
    n = max(32, int(BASE_NODES * scale))
    return star_burst(
        n,
        num_hubs=max(4, n // 16),
        hub_degree_mean=10.0,
        cross_link_fraction=0.08,
        seed=seed,
        name="intrusion_like",
    )


INTRUSION = register(
    DatasetSpec(
        name="intrusion_like",
        paper_name="IPsec intrusion network (proprietary)",
        paper_nodes=2_500_000,
        paper_edges=4_300_000,
        description=(
            "star-burst stand-in: heavy-tailed attacker hubs, sparse cross "
            "links, many small components, avg degree ~3.4"
        ),
        builder=build_intrusion,
    )
)
