"""Stand-in for the Condensed Matter Collaboration network (cond-mat 2005).

Paper profile: ~40k nodes, ~180k edges — average degree ~9, undirected,
power-law degrees, and the very high clustering characteristic of
co-authorship (each paper contributes a clique among its authors).

Substitute: :func:`repro.graph.generators.coauthorship`, a bipartite
paper-author projection.  Papers draw geometric team sizes; members are
drawn preferentially by publication count.  This reproduces the three
structural properties LONA's behaviour depends on:

* heavy-tailed degrees with a large degree-1/2 author population,
* clique-level clustering (cond-mat's defining feature), and
* near-duplicate neighborhoods within a team — the ``delta(v-u) -> 0``
  regime in which the differential index is informative.

Parameters are tuned so the scale-1.0 graph matches cond-mat's average
degree (~8-9) with ~16% isolated or near-isolated authors, as in the
original data.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.registry import DatasetSpec, register
from repro.graph.generators import coauthorship
from repro.graph.graph import Graph

__all__ = ["COLLABORATION", "build_collaboration"]

#: Nodes at scale=1.0; chosen so a full Base scan (one 2-hop BFS per node)
#: stays interactive in pure Python while the degree shape matches cond-mat.
BASE_NODES = 4000


def build_collaboration(scale: float = 1.0, seed: Optional[int] = None) -> Graph:
    """Generate the collaboration stand-in at ``scale``."""
    n = max(16, int(BASE_NODES * scale))
    return coauthorship(
        n,
        papers_per_author=1.2,
        team_mean=2.6,
        max_team=8,
        seed=seed,
        name="collaboration_like",
    )


COLLABORATION = register(
    DatasetSpec(
        name="collaboration_like",
        paper_name="Condensed Matter Collaboration (cond-mat 2005)",
        paper_nodes=40_000,
        paper_edges=180_000,
        description=(
            "bipartite paper-author projection stand-in: clique-structured, "
            "power-law degrees, avg degree ~8-9, undirected"
        ),
        builder=build_collaboration,
    )
)
