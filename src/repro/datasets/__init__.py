"""Synthetic stand-ins for the paper's three evaluation networks.

``load("collaboration_like")``, ``load("citation_like")``,
``load("intrusion_like")`` — see each module's docstring for the
paper-dataset -> substitute mapping and why it preserves the relevant
behaviour (summarized in DESIGN.md Sec. 3).
"""

from repro.datasets.citation import CITATION, build_citation
from repro.datasets.collaboration import COLLABORATION, build_collaboration
from repro.datasets.intrusion import INTRUSION, build_intrusion
from repro.datasets.registry import (
    DatasetSpec,
    available,
    load,
    register,
    spec_of,
)

__all__ = [
    "DatasetSpec",
    "available",
    "load",
    "register",
    "spec_of",
    "COLLABORATION",
    "CITATION",
    "INTRUSION",
    "build_collaboration",
    "build_citation",
    "build_intrusion",
]
