"""Stand-in for the NBER patent citation network (cite75_99).

Paper profile: ~3M nodes, ~16M edges — average out-degree ~5.3, directed
acyclic (patents cite earlier patents), heavily skewed in-degree (a few
patents collect enormous citation counts), strong recency bias.

Substitute: :func:`repro.graph.generators.citation_dag` — time-ordered
preferential attachment with a recency window.  The skewed in-degree is what
creates the few huge 2-hop balls that dominate SUM queries on citation data;
the recency bias keeps most balls small, reproducing the long-tailed ball
size distribution that makes Forward's bound loose at low blacking ratios
(the Fig. 5 deterioration the paper reports).
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.registry import DatasetSpec, register
from repro.graph.generators import citation_dag
from repro.graph.graph import Graph

__all__ = ["CITATION", "build_citation"]

#: Nodes at scale=1.0 (paper: 3M; pure-Python sweep budget dictates less).
BASE_NODES = 6000


def build_citation(scale: float = 1.0, seed: Optional[int] = None) -> Graph:
    """Generate the citation stand-in at ``scale``.

    Two deliberate choices, both recorded in DESIGN.md:

    * ``heavy_tail=True`` — reference-list lengths are geometric (mean 5)
      rather than constant, matching the enormous spread of real patent
      citation counts.
    * the returned graph is the **undirected view** of the DAG.  The paper
      treats all three datasets uniformly as networks with h-hop
      neighborhoods; on citation data the natural neighborhood ("papers
      related within 2 steps, citing or cited") is the undirected one, and
      it is what gives the citation figures their distinctive shape (a few
      enormous hub neighborhoods).  The raw DAG remains available through
      :func:`repro.graph.generators.citation_dag`.
    """
    n = max(32, int(BASE_NODES * scale))
    dag = citation_dag(
        n, 5, seed=seed, recency_bias=0.35, heavy_tail=True, name="citation_like"
    )
    return dag.as_undirected()


CITATION = register(
    DatasetSpec(
        name="citation_like",
        paper_name="NBER patent citations (cite75_99)",
        paper_nodes=3_000_000,
        paper_edges=16_000_000,
        description=(
            "preferential-attachment DAG stand-in: directed, acyclic, "
            "avg out-degree ~5, power-law in-degree, recency-biased"
        ),
        builder=build_citation,
    )
)
