"""Neighborhood aggregate functions (paper P2).

The paper develops its pruning machinery for SUM and AVG ("we introduce a
solution ... by studying the two basic aggregation functions SUM and AVG.
However, the similar ideas could be extended to other more complicated
functions", Sec. II).  This module defines those two as first-class citizens
plus the natural extensions — COUNT, MAX, MIN — that the Base algorithm and
the engine support out of the box.

The split that matters to the algorithms:

* *sum-convertible* aggregates (SUM, AVG, COUNT) are fully determined by the
  pair ``(sum of ball scores, ball size)``; all LONA bound formulas work in
  sum space and convert at the end.  COUNT is SUM over the 0/1 indicator
  transform of the scores, which the engine applies before running.
* MAX and MIN are not sum-convertible; Base evaluates them directly, and
  MAX admits its own cheap upper bound (``max over ball <= max over graph``)
  used by the engine's generic pruning fallback.
"""

from __future__ import annotations

import enum
from typing import Iterable, Union

from repro.errors import InvalidParameterError

__all__ = [
    "AggregateKind",
    "finalize_sum",
    "evaluate_scores",
    "coerce_aggregate",
    "fold_scores",
]


class AggregateKind(enum.Enum):
    """The supported neighborhood aggregate functions."""

    SUM = "sum"
    AVG = "avg"
    COUNT = "count"
    MAX = "max"
    MIN = "min"

    @property
    def sum_convertible(self) -> bool:
        """Whether the value is a function of (score sum, ball size)."""
        return self in (AggregateKind.SUM, AggregateKind.AVG, AggregateKind.COUNT)

    @property
    def lona_supported(self) -> bool:
        """Whether the paper's pruning algorithms apply directly."""
        return self in (AggregateKind.SUM, AggregateKind.AVG, AggregateKind.COUNT)


def coerce_aggregate(value: Union[str, AggregateKind]) -> AggregateKind:
    """Accept ``"sum"`` / ``AggregateKind.SUM`` style inputs uniformly."""
    if isinstance(value, AggregateKind):
        return value
    try:
        return AggregateKind(str(value).lower())
    except ValueError:
        valid = ", ".join(kind.value for kind in AggregateKind)
        raise InvalidParameterError(
            f"unknown aggregate {value!r}; expected one of: {valid}"
        ) from None


def fold_scores(kind: AggregateKind, scores: Iterable[float]) -> list:
    """The score list an aggregate's *sum machinery* should fold over.

    COUNT is SUM over the 0/1 indicator transform of the scores; every
    other aggregate folds the raw values.  One helper so the shared-scan,
    filtered-scan, and streaming executors apply the identical transform.
    """
    if kind is AggregateKind.COUNT:
        return [1.0 if s > 0.0 else 0.0 for s in scores]
    return list(scores)


def finalize_sum(kind: AggregateKind, total: float, ball_size: int) -> float:
    """Convert a ball's score sum into the aggregate value.

    Only valid for sum-convertible kinds.  ``ball_size`` is ``N(u)``; an
    empty ball (possible only with ``include_self=False`` on an isolated
    node) yields 0 for AVG rather than dividing by zero — an isolated node
    has no neighbors to average over, and 0 is the paper's "not relevant"
    element.
    """
    if kind is AggregateKind.SUM or kind is AggregateKind.COUNT:
        # For COUNT the caller has already replaced scores by indicators,
        # so the sum *is* the count.
        return total
    if kind is AggregateKind.AVG:
        if ball_size <= 0:
            return 0.0
        return total / ball_size
    raise InvalidParameterError(f"{kind.value} is not a sum-convertible aggregate")


def evaluate_scores(kind: AggregateKind, ball_scores: Iterable[float]) -> float:
    """Directly evaluate an aggregate over the ball's score multiset.

    Reference implementation used by Base for the non-sum-convertible kinds
    and by tests as an independent oracle for all kinds.
    """
    if kind is AggregateKind.SUM:
        return sum(ball_scores)
    if kind is AggregateKind.AVG:
        values = list(ball_scores)
        if not values:
            return 0.0
        return sum(values) / len(values)
    if kind is AggregateKind.COUNT:
        return float(sum(1 for v in ball_scores if v > 0.0))
    if kind is AggregateKind.MAX:
        values = list(ball_scores)
        return max(values) if values else 0.0
    if kind is AggregateKind.MIN:
        values = list(ball_scores)
        return min(values) if values else 0.0
    raise InvalidParameterError(f"unknown aggregate kind {kind!r}")
