"""Aggregate functions over h-hop neighborhoods (paper P2)."""

from repro.aggregates.functions import (
    AggregateKind,
    coerce_aggregate,
    evaluate_scores,
    finalize_sum,
)
from repro.aggregates.weighted import (
    DecayProfile,
    exponential_decay,
    inverse_distance,
    uniform_weight,
    weighted_ball_sum,
)

__all__ = [
    "AggregateKind",
    "coerce_aggregate",
    "evaluate_scores",
    "finalize_sum",
    "DecayProfile",
    "inverse_distance",
    "exponential_decay",
    "uniform_weight",
    "weighted_ball_sum",
]
