"""Distance-weighted aggregation (the paper's footnote 1).

Footnote 1: *"If we introduce edge weights, F(u) could be
w(u, v1) f(v1) + ... + w(u, vm) f(vm), where w(u, v) measures the connection
strength between u and v, e.g., the inverse of the shortest distance between
u and v."*

This module implements that weighted SUM with pluggable hop-distance decay
profiles.  The weight of the center itself (distance 0) is 1.  Weighted
aggregation is evaluated by :func:`weighted_ball_sum` (forward, per node) and
by the backward distribution in :mod:`repro.core.backward` via
``weight_profile`` — both directions agree because hop distance is symmetric
on undirected graphs (the directed case distributes over the reversed graph).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.traversal import TraversalCounter, hop_ball_with_distances

__all__ = [
    "DecayProfile",
    "inverse_distance",
    "exponential_decay",
    "uniform_weight",
    "weighted_ball_sum",
]

#: A decay profile maps hop distance (0, 1, 2, ...) to a weight in [0, 1].
DecayProfile = Callable[[int], float]


def inverse_distance(distance: int) -> float:
    """The paper's example: ``w = 1 / dist`` (distance-0 weight is 1)."""
    if distance <= 0:
        return 1.0
    return 1.0 / distance


def exponential_decay(factor: float = 0.5) -> DecayProfile:
    """``w = factor ** dist``; ``factor`` in (0, 1]."""
    if not 0.0 < factor <= 1.0:
        raise InvalidParameterError(f"factor must be in (0, 1], got {factor}")

    def profile(distance: int) -> float:
        return factor ** max(distance, 0)

    return profile


def uniform_weight(distance: int) -> float:
    """Weight 1 at every distance — reduces weighted SUM to plain SUM."""
    return 1.0


def precompute_weights(profile: DecayProfile, hops: int) -> List[float]:
    """Tabulate ``profile(0..hops)`` once, validating the [0, 1] range."""
    weights = []
    for d in range(hops + 1):
        w = profile(d)
        if not 0.0 <= w <= 1.0:
            raise InvalidParameterError(
                f"decay profile returned {w} at distance {d}; weights must "
                "be in [0, 1] for the pruning bounds to stay sound"
            )
        weights.append(w)
    return weights


def weighted_ball_sum(
    graph: Graph,
    scores: Sequence[float],
    center: int,
    hops: int,
    profile: DecayProfile = inverse_distance,
    *,
    include_self: bool = True,
    counter: Optional[TraversalCounter] = None,
) -> float:
    """``F(center) = sum over ball of profile(dist) * f(v)``."""
    weights = precompute_weights(profile, hops)
    distances = hop_ball_with_distances(
        graph, center, hops, include_self=include_self, counter=counter
    )
    return sum(weights[d] * scores[v] for v, d in distances.items())
