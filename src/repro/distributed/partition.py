"""Graph partitioning for the simulated distributed engine.

The paper's conclusion: "We are currently developing an infrastructure to
partition large networks into subnetworks and distribute them into multiple
machines."  This module provides that partitioning step with two strategies:

* :func:`hash_partition` — stateless modulo assignment; perfectly balanced,
  oblivious to structure (high edge cut), the baseline every distributed
  graph system compares against.
* :func:`bfs_partition` — balanced region growing from spread-out seeds;
  exploits locality so that h-hop balls mostly stay within one partition,
  which is what keeps remote message counts down in the BSP engine.

Both return a :class:`Partition` carrying the assignment plus the quality
metrics (edge cut, balance) the ablation benchmark reports.
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Optional

from repro.errors import PartitionError
from repro.graph.graph import Graph

__all__ = ["Partition", "hash_partition", "bfs_partition"]


class Partition:
    """An assignment of nodes to ``num_parts`` workers.

    Immutable once constructed, which is what makes the two lazily built
    lookup structures safe without any invalidation protocol: the
    per-partition *members index* (:meth:`members` — one O(n) bucketing
    pass instead of an O(n) rescan per call) and the numpy
    :meth:`as_array` form the BSP engine and the shard builder classify
    arcs with.
    """

    __slots__ = ("assignment", "num_parts", "_members_index", "_array")

    def __init__(self, assignment: List[int], num_parts: int) -> None:
        if num_parts < 1:
            raise PartitionError(f"num_parts must be >= 1, got {num_parts}")
        for node, part in enumerate(assignment):
            if not (0 <= part < num_parts):
                raise PartitionError(
                    f"node {node} assigned to invalid partition {part}"
                )
        self.assignment = assignment
        self.num_parts = num_parts
        self._members_index: Optional[List[List[int]]] = None
        self._array = None

    def part_of(self, node: int) -> int:
        """The worker owning ``node``."""
        return self.assignment[node]

    def members(self, part: int) -> List[int]:
        """All nodes owned by ``part`` (ascending; do not mutate).

        Served from a lazily built index: hot paths that iterate every
        partition (the shard builder, the BSP coordinator's local top-k
        pass) pay one O(n) bucketing pass total instead of
        O(n * num_parts) rescans.
        """
        if not 0 <= part < self.num_parts:
            raise PartitionError(
                f"partition {part} out of range [0, {self.num_parts})"
            )
        if self._members_index is None:
            index: List[List[int]] = [[] for _ in range(self.num_parts)]
            for u, p in enumerate(self.assignment):
                index[p].append(u)
            self._members_index = index
        return self._members_index[part]

    def as_array(self):
        """The assignment as a cached numpy int64 array (None sans numpy)."""
        if self._array is None:
            from repro.core.backends import numpy_or_none

            np = numpy_or_none()
            if np is None:
                return None
            self._array = np.asarray(self.assignment, dtype=np.int64)
        return self._array

    def sizes(self) -> List[int]:
        """Nodes per partition."""
        counts = [0] * self.num_parts
        for part in self.assignment:
            counts[part] += 1
        return counts

    def balance(self) -> float:
        """Max partition size over ideal size (1.0 = perfectly balanced)."""
        sizes = self.sizes()
        if not self.assignment:
            return 1.0
        ideal = len(self.assignment) / self.num_parts
        return max(sizes) / ideal if ideal else 1.0

    def edge_cut(self, graph: Graph) -> int:
        """Number of edges whose endpoints live on different workers."""
        if len(self.assignment) != graph.num_nodes:
            raise PartitionError(
                f"partition covers {len(self.assignment)} nodes, "
                f"graph has {graph.num_nodes}"
            )
        cut = 0
        for u, v in graph.edges():
            if self.assignment[u] != self.assignment[v]:
                cut += 1
        return cut


def hash_partition(graph: Graph, num_parts: int) -> Partition:
    """Modulo assignment: node ``u`` goes to worker ``u % num_parts``."""
    if num_parts < 1:
        raise PartitionError(f"num_parts must be >= 1, got {num_parts}")
    return Partition([u % num_parts for u in graph.nodes()], num_parts)


def bfs_partition(
    graph: Graph, num_parts: int, *, seed: Optional[int] = None
) -> Partition:
    """Balanced BFS region growing.

    Seeds are sampled uniformly; regions take turns claiming their frontier,
    skipping already-claimed nodes, so partitions stay near-balanced while
    keeping neighborhoods together.  Unreached nodes (other components) are
    assigned round-robin to the smallest partitions.
    """
    if num_parts < 1:
        raise PartitionError(f"num_parts must be >= 1, got {num_parts}")
    n = graph.num_nodes
    if n == 0:
        return Partition([], num_parts)
    rng = random.Random(seed)
    work_graph = graph.as_undirected() if graph.directed else graph
    assignment = [-1] * n
    seeds = rng.sample(range(n), min(num_parts, n))
    queues = [deque([s]) for s in seeds]
    sizes = [0] * num_parts
    for part, s in enumerate(seeds):
        assignment[s] = part
        sizes[part] += 1
    target = n / num_parts

    active = True
    while active:
        active = False
        for part in range(len(queues)):
            if sizes[part] >= target * 1.05:
                continue  # let smaller regions catch up this round
            queue = queues[part]
            claimed = False
            while queue and not claimed:
                u = queue.popleft()
                for v in work_graph.neighbors(u):
                    if assignment[v] == -1:
                        assignment[v] = part
                        sizes[part] += 1
                        queue.append(v)
                        claimed = True
                if queue or claimed:
                    active = True
        if not active:
            # All frontiers stalled; allow over-target growth to mop up the
            # rest of the reached components.
            for part, queue in enumerate(queues):
                while queue:
                    u = queue.popleft()
                    for v in work_graph.neighbors(u):
                        if assignment[v] == -1:
                            assignment[v] = part
                            sizes[part] += 1
                            queue.append(v)
                            active = True
            if not active:
                break

    # Other connected components / isolated nodes: smallest partition first.
    for u in range(n):
        if assignment[u] == -1:
            part = min(range(num_parts), key=lambda p: sizes[p])
            # Flood u's whole component into this partition for locality.
            stack = [u]
            assignment[u] = part
            sizes[part] += 1
            while stack:
                x = stack.pop()
                for v in work_graph.neighbors(x):
                    if assignment[v] == -1:
                        assignment[v] = part
                        sizes[part] += 1
                        stack.append(v)
    return Partition(assignment, num_parts)
