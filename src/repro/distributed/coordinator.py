"""Coordinator: distributed top-k neighborhood aggregation, end to end.

Pipeline (the future-work system sketched in the paper's Sec. V):

1. partition the graph across ``num_parts`` simulated workers;
2. run the score flood (and, for AVG, the size flood) on the BSP engine;
3. each worker selects its *local* top-k among the vertices it owns;
4. the coordinator merges the per-worker candidate lists into the global
   answer — only ``num_parts * k`` candidates ever cross the network, which
   is the classic distributed top-k communication pattern.

The result's ``stats.extra`` records supersteps, local/remote message
counts, and edge cut so ablation ``abl-dist`` can compare partitioners.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple, Union

from repro.aggregates.functions import AggregateKind, coerce_aggregate
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult
from repro.core.topk import TopKAccumulator
from repro.distributed.aggregation import ScoreFloodProgram, SizeFloodProgram
from repro.distributed.bsp import BSPEngine
from repro.distributed.partition import (
    Partition,
    bfs_partition,
    hash_partition,
)
from repro.errors import InvalidParameterError
from repro.graph.graph import Graph

__all__ = ["DistributedTopKEngine", "distributed_topk"]

PARTITIONERS = ("hash", "bfs")


class DistributedTopKEngine:
    """Simulated cluster execution of top-k neighborhood aggregation."""

    def __init__(
        self,
        graph: Graph,
        scores: Sequence[float],
        *,
        hops: int = 2,
        include_self: bool = True,
        num_parts: int = 4,
        partitioner: str = "bfs",
        seed: Optional[int] = None,
    ) -> None:
        if partitioner not in PARTITIONERS:
            raise InvalidParameterError(
                f"unknown partitioner {partitioner!r}; expected {PARTITIONERS}"
            )
        self.graph = graph
        self.scores = list(scores)
        self.hops = hops
        self.include_self = include_self
        self.num_parts = num_parts
        self.partitioner = partitioner
        self.seed = seed
        # Floods must follow reversed arcs so that v accumulates exactly the
        # origins inside S_h(v) (see repro.distributed.aggregation).
        self._flood_graph = graph.reversed() if graph.directed else graph
        if partitioner == "hash":
            self.partition: Partition = hash_partition(self._flood_graph, num_parts)
        else:
            self.partition = bfs_partition(self._flood_graph, num_parts, seed=seed)

    def topk(
        self,
        k: int,
        aggregate: Union[str, AggregateKind] = "sum",
    ) -> TopKResult:
        """Answer the query on the simulated cluster."""
        spec = QuerySpec(
            k=k,
            aggregate=coerce_aggregate(aggregate),
            hops=self.hops,
            include_self=self.include_self,
        )
        return distributed_topk(
            self._flood_graph,
            self.scores,
            spec,
            partition=self.partition,
            edge_cut_graph=self.graph,
        )


def distributed_topk(
    flood_graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    partition: Partition,
    edge_cut_graph: Optional[Graph] = None,
) -> TopKResult:
    """Run the BSP floods and merge per-worker top-k lists.

    ``flood_graph`` must already be reversed for directed inputs.
    """
    kind = spec.aggregate
    if not kind.lona_supported:
        raise InvalidParameterError(
            f"distributed execution supports SUM/AVG/COUNT, not {kind.value}"
        )
    work_scores = list(scores)
    if kind is AggregateKind.COUNT:
        work_scores = [1.0 if s > 0.0 else 0.0 for s in work_scores]
    is_avg = kind is AggregateKind.AVG

    start = time.perf_counter()
    engine = BSPEngine(flood_graph, partition)
    engine.run(
        ScoreFloodProgram(work_scores, spec.hops, include_self=spec.include_self),
        max_supersteps=spec.hops + 2,
    )
    if is_avg:
        engine.run(
            SizeFloodProgram(spec.hops, include_self=spec.include_self),
            max_supersteps=spec.hops + 2,
        )

    # Per-worker local top-k, then coordinator merge.
    local_candidates: List[List[Tuple[int, float]]] = []
    for part in range(partition.num_parts):
        local = TopKAccumulator(spec.k)
        for u in partition.members(part):
            state = engine.vertex_state[u]
            total = state.get("ps", 0.0)
            if is_avg:
                size = state.get("size", 0)
                value = total / size if size else 0.0
            else:
                value = total
            local.offer(u, value)
        local_candidates.append(local.entries())

    merged = TopKAccumulator(spec.k)
    shipped = 0
    for candidate_list in local_candidates:
        for node, value in candidate_list:
            merged.offer(node, value)
            shipped += 1

    stats = QueryStats(
        algorithm="distributed",
        aggregate=spec.aggregate.value,
        hops=spec.hops,
        k=spec.k,
        elapsed_sec=time.perf_counter() - start,
    )
    stats.extra.update(engine.stats.as_dict())
    stats.extra["num_parts"] = float(partition.num_parts)
    stats.extra["balance"] = partition.balance()
    stats.extra["candidates_shipped"] = float(shipped)
    cut_graph = edge_cut_graph if edge_cut_graph is not None else flood_graph
    if len(partition.assignment) == cut_graph.num_nodes:
        stats.extra["edge_cut"] = float(partition.edge_cut(cut_graph))
    return TopKResult(entries=merged.entries(), stats=stats)
