"""Distributed neighborhood aggregation as a BSP vertex program.

The distribution idea of LONA-Backward maps directly onto Pregel-style
message passing: every node with a non-zero score floods ``(origin, score)``
tokens outward for ``h`` supersteps; each vertex accumulates the scores of
the *distinct* origins that reach it.  Because all floods start at
superstep 0 and proceed synchronously, a token's first arrival at a vertex
travels a shortest path — so forwarding each origin only on first receipt
delivers exactly the "distinct nodes within h hops" semantics of
Definition 2 (this is the standard multi-source BFS argument; the
correctness test exercises it against the single-machine oracle).

For SUM only non-zero origins flood (Algorithm 2's zero-skipping, now in
message-count form).  AVG additionally needs the exact ball size ``N(v)``,
obtained by flooding a unit token from *every* node — the expensive
denominator pass that the benchmark reports separately.

Directionality: a token from ``u`` reaching ``v`` means ``v`` is reachable
*from* ``u``, but Definition 2 needs ``u`` reachable from ``v``.  On
directed graphs the coordinator therefore runs both floods over the
**reversed** graph; undirected graphs are their own reverse.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.distributed.bsp import VertexContext

__all__ = ["ScoreFloodProgram", "SizeFloodProgram"]


class ScoreFloodProgram:
    """Flood non-zero scores ``hops`` steps; accumulate per-vertex sums.

    Vertex state after the run:

    * ``ps``   — sum of distinct origin scores within ``hops``.
    * ``seen`` — the set of origins received (used for dedup).
    """

    def __init__(
        self,
        scores: Sequence[float],
        hops: int,
        *,
        include_self: bool = True,
    ) -> None:
        self.scores = scores
        self.hops = hops
        self.include_self = include_self

    def init(self, ctx: VertexContext) -> None:
        state = ctx.state()
        state["ps"] = 0.0
        state["seen"] = set()  # type: Set[int]
        u = ctx.vertex
        score = self.scores[u]
        if score <= 0.0:
            return
        state["seen"].add(u)
        if self.include_self:
            state["ps"] = score
        if self.hops >= 1:
            ctx.send_to_neighbors((u, score, self.hops - 1))

    def compute(self, ctx: VertexContext, messages: List[Tuple[int, float, int]]) -> None:
        state = ctx.state()
        seen: Set[int] = state["seen"]
        for origin, score, ttl in messages:
            if origin in seen:
                continue
            seen.add(origin)
            state["ps"] += score
            if ttl > 0:
                ctx.send_to_neighbors((origin, score, ttl - 1))


class SizeFloodProgram:
    """Flood a unit token from every node to compute exact ``N(v)``.

    Vertex state after the run: ``size`` — the number of distinct nodes
    within ``hops`` (respecting the ball convention).
    """

    def __init__(self, hops: int, *, include_self: bool = True) -> None:
        self.hops = hops
        self.include_self = include_self

    def init(self, ctx: VertexContext) -> None:
        state = ctx.state()
        u = ctx.vertex
        state["size_seen"] = {u}
        state["size"] = 1 if self.include_self else 0
        if self.hops >= 1:
            ctx.send_to_neighbors((u, self.hops - 1))

    def compute(self, ctx: VertexContext, messages: List[Tuple[int, int]]) -> None:
        state = ctx.state()
        seen: Set[int] = state["size_seen"]
        for origin, ttl in messages:
            if origin in seen:
                continue
            seen.add(origin)
            state["size"] += 1
            if ttl > 0:
                ctx.send_to_neighbors((origin, ttl - 1))
