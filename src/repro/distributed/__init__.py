"""Simulated distributed execution (the paper's stated future work).

* :class:`Partition` + :func:`hash_partition` / :func:`bfs_partition`.
* :class:`BSPEngine` — Pregel-style supersteps with local/remote message
  accounting.
* :class:`DistributedTopKEngine` — partition, flood, merge.
"""

from repro.distributed.aggregation import ScoreFloodProgram, SizeFloodProgram
from repro.distributed.bsp import BSPEngine, MessageStats, VertexContext
from repro.distributed.coordinator import (
    DistributedTopKEngine,
    distributed_topk,
)
from repro.distributed.partition import Partition, bfs_partition, hash_partition

__all__ = [
    "Partition",
    "hash_partition",
    "bfs_partition",
    "BSPEngine",
    "MessageStats",
    "VertexContext",
    "ScoreFloodProgram",
    "SizeFloodProgram",
    "DistributedTopKEngine",
    "distributed_topk",
]
