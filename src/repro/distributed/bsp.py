"""A Pregel-style BSP (bulk synchronous parallel) engine, simulated.

Vertex programs run in synchronous supersteps; messages sent in superstep
``s`` are delivered at ``s + 1``.  The engine simulates a cluster on one
machine but accounts for distribution faithfully through the partition:
every message is classified *local* (same worker) or *remote* (crosses the
partition boundary and would traverse the network), and per-superstep
traffic is recorded.  That accounting — not parallel speedup, which a
single-process simulation cannot honestly claim — is what the distributed
experiments report.

The programming model is the standard one:

* ``program.init(ctx)`` runs once per vertex at superstep 0.
* ``program.compute(ctx, messages)`` runs at every later superstep for
  vertices that received messages (halted vertices wake on delivery).
* A vertex halts by default after each superstep; the run ends when no
  messages are in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Protocol, Sequence, Tuple

from repro.distributed.partition import Partition
from repro.errors import DistributedError
from repro.graph.graph import Graph

__all__ = ["VertexContext", "VertexProgram", "MessageStats", "BSPEngine"]


@dataclass
class MessageStats:
    """Network accounting for one BSP run."""

    supersteps: int = 0
    messages_local: int = 0
    messages_remote: int = 0
    per_superstep: List[Tuple[int, int]] = field(default_factory=list)
    active_vertex_steps: int = 0

    @property
    def messages_total(self) -> int:
        """All messages, local + remote."""
        return self.messages_local + self.messages_remote

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric view for reports."""
        return {
            "supersteps": float(self.supersteps),
            "messages_local": float(self.messages_local),
            "messages_remote": float(self.messages_remote),
            "messages_total": float(self.messages_total),
            "active_vertex_steps": float(self.active_vertex_steps),
        }


class VertexContext:
    """Per-vertex API handed to the program's hooks."""

    __slots__ = ("vertex", "superstep", "_engine")

    def __init__(self, vertex: int, superstep: int, engine: "BSPEngine") -> None:
        self.vertex = vertex
        self.superstep = superstep
        self._engine = engine

    def neighbors(self) -> Sequence[int]:
        """Out-neighbors of this vertex in the engine's graph."""
        return self._engine.graph.neighbors(self.vertex)

    def send(self, target: int, payload: Any) -> None:
        """Send ``payload`` to ``target``, delivered next superstep."""
        self._engine._route(self.vertex, target, payload)

    def send_to_neighbors(self, payload: Any) -> None:
        """Broadcast ``payload`` to all out-neighbors.

        The whole-adjacency broadcast is the flood programs' hot path, so
        the engine classifies it with precomputed per-node local/remote arc
        counts instead of one partition lookup per message.
        """
        self._engine._route_neighbors(self.vertex, payload)

    def state(self) -> Dict[str, Any]:
        """This vertex's mutable state dictionary (persists across steps)."""
        return self._engine.vertex_state[self.vertex]


class VertexProgram(Protocol):
    """The two hooks a BSP computation implements."""

    def init(self, ctx: VertexContext) -> None:
        """Superstep-0 hook, runs once for every vertex."""
        ...  # pragma: no cover - protocol

    def compute(self, ctx: VertexContext, messages: List[Any]) -> None:
        """Per-superstep hook for vertices with pending messages."""
        ...  # pragma: no cover - protocol


class BSPEngine:
    """Synchronous message-passing execution over a partitioned graph."""

    def __init__(self, graph: Graph, partition: Partition) -> None:
        if len(partition.assignment) != graph.num_nodes:
            raise DistributedError(
                f"partition covers {len(partition.assignment)} nodes, "
                f"graph has {graph.num_nodes}"
            )
        self.graph = graph
        self.partition = partition
        self.vertex_state: List[Dict[str, Any]] = [
            {} for _ in range(graph.num_nodes)
        ]
        self.stats = MessageStats()
        self._inbox: Dict[int, List[Any]] = {}
        self._next_inbox: Dict[int, List[Any]] = {}
        # Lazily built numpy fast path for broadcast classification:
        # per-node counts of local vs remote out-arcs (see _arc_classes).
        self._local_arcs = None
        self._remote_arcs = None
        self._arc_classes_built = False

    # ------------------------------------------------------------------
    # Internal routing
    # ------------------------------------------------------------------
    def _route(self, source: int, target: int, payload: Any) -> None:
        if not (0 <= target < self.graph.num_nodes):
            raise DistributedError(f"message to unknown vertex {target}")
        if self.partition.part_of(source) == self.partition.part_of(target):
            self.stats.messages_local += 1
        else:
            self.stats.messages_remote += 1
        self._next_inbox.setdefault(target, []).append(payload)

    def _arc_classes(self):
        """``(local_arcs, remote_arcs)`` per node, classified in one pass.

        Vectorized over the CSR neighbor slab with the partition as an int
        array: every stored arc ``(u, v)`` is *remote* iff
        ``part[u] != part[v]``, so two ``bincount`` calls over the slab
        replace the per-message partition lookups of the scalar path.
        Returns ``(None, None)`` when numpy is unavailable — callers fall
        back to :meth:`_route`, and :class:`MessageStats` accounting is
        identical either way.
        """
        if not self._arc_classes_built:
            self._arc_classes_built = True
            parts = self.partition.as_array()
            if parts is not None:
                import numpy as np

                from repro.graph.csr import to_csr

                csr = to_csr(self.graph, use_numpy=True)
                n = csr.num_nodes
                degrees = np.diff(csr.indptr)
                src_parts = np.repeat(parts, degrees)
                remote_mask = src_parts != parts[csr.indices]
                owners = np.repeat(np.arange(n, dtype=np.int64), degrees)
                self._remote_arcs = np.bincount(
                    owners, weights=remote_mask, minlength=n
                ).astype(np.int64)
                self._local_arcs = degrees - self._remote_arcs
        return self._local_arcs, self._remote_arcs

    def _route_neighbors(self, source: int, payload: Any) -> None:
        """Broadcast ``payload`` to ``source``'s out-neighbors.

        Semantically identical to calling :meth:`_route` per neighbor —
        same deliveries, same local/remote totals — but the partition
        classification of the whole adjacency slab is two precomputed
        array lookups.
        """
        local_arcs, remote_arcs = self._arc_classes()
        neighbors = self.graph.neighbors(source)
        if local_arcs is None:
            for v in neighbors:
                self._route(source, v, payload)
            return
        self.stats.messages_local += int(local_arcs[source])
        self.stats.messages_remote += int(remote_arcs[source])
        inbox = self._next_inbox
        for v in neighbors:
            inbox.setdefault(v, []).append(payload)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, program: VertexProgram, *, max_supersteps: int = 64) -> MessageStats:
        """Run ``program`` to quiescence (or ``max_supersteps``)."""
        if max_supersteps < 1:
            raise DistributedError(
                f"max_supersteps must be >= 1, got {max_supersteps}"
            )
        # Superstep 0: init every vertex.
        self._next_inbox = {}
        before_local = self.stats.messages_local
        before_remote = self.stats.messages_remote
        for u in self.graph.nodes():
            program.init(VertexContext(u, 0, self))
            self.stats.active_vertex_steps += 1
        self.stats.supersteps = 1
        self.stats.per_superstep.append(
            (
                self.stats.messages_local - before_local,
                self.stats.messages_remote - before_remote,
            )
        )

        superstep = 1
        while self._next_inbox and superstep < max_supersteps:
            self._inbox, self._next_inbox = self._next_inbox, {}
            before_local = self.stats.messages_local
            before_remote = self.stats.messages_remote
            for u, messages in self._inbox.items():
                program.compute(VertexContext(u, superstep, self), messages)
                self.stats.active_vertex_steps += 1
            self.stats.supersteps += 1
            self.stats.per_superstep.append(
                (
                    self.stats.messages_local - before_local,
                    self.stats.messages_remote - before_remote,
                )
            )
            superstep += 1
        if self._next_inbox:
            raise DistributedError(
                f"BSP run did not quiesce within {max_supersteps} supersteps"
            )
        return self.stats
