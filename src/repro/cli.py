"""Command-line interface: run top-k aggregation queries from a shell.

Examples::

    # top-10 SUM over a bundled dataset stand-in
    python -m repro.cli query --dataset collaboration_like --k 10

    # top-5 AVG on your own edge list, 1-hop, explicit algorithm
    python -m repro.cli query --edge-list graph.txt --k 5 \
        --aggregate avg --hops 1 --algorithm backward

    # machine-readable output (entries + stats as one JSON object)
    python -m repro.cli query --dataset citation_like --k 10 --json

    # explain the planner's choice without executing
    python -m repro.cli explain --dataset citation_like --k 50 --json

    # structural profile of a graph
    python -m repro.cli profile --dataset intrusion_like

    # drive a concurrent workload through the serving scheduler
    python -m repro.cli serve --dataset collaboration_like --k 10 \
        --queries 16 --workers 4 --repeat 2 --json

Relevance comes from ``--blacking-ratio`` (the paper's mixture function;
``--binary`` for the 0/1 variant) or ``--scores FILE`` with one
``node score`` pair per line.

The CLI is a thin shell over the :class:`repro.session.Network` facade:
every command builds a session, registers the scores under the name
``"cli"``, and lowers the flags to one fluent query.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.datasets import available, load
from repro.errors import ReproError
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list
from repro.graph.metrics import profile_graph
from repro.relevance.base import ScoreVector
from repro.relevance.mixture import MixtureRelevance
from repro.session import Network

__all__ = ["main"]

#: Score name the CLI registers its vector under in the session.
_CLI_SCORE = "cli"


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset",
        choices=available(),
        help="bundled dataset stand-in",
    )
    source.add_argument("--edge-list", help="path to a whitespace edge list")
    parser.add_argument(
        "--scale", type=float, default=0.5, help="dataset scale factor"
    )
    parser.add_argument(
        "--directed", action="store_true", help="treat the edge list as directed"
    )
    parser.add_argument("--seed", type=int, default=2010, help="random seed")


def _add_relevance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--blacking-ratio",
        type=float,
        default=0.01,
        help="fraction of nodes assigned relevance 1.0 (paper's r)",
    )
    parser.add_argument(
        "--binary",
        action="store_true",
        help="0/1 relevance instead of the continuous mixture",
    )
    parser.add_argument(
        "--scores", help="path to a 'node score' file overriding the mixture"
    )


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object instead of text",
    )


def _build_graph(args: argparse.Namespace) -> Graph:
    if args.dataset:
        return load(args.dataset, scale=args.scale, seed=args.seed)
    return read_edge_list(args.edge_list, directed=args.directed)


def _build_scores(args: argparse.Namespace, graph: Graph) -> ScoreVector:
    if args.scores:
        values = [0.0] * graph.num_nodes
        with open(args.scores, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                parts = stripped.split()
                if len(parts) < 2:
                    raise ReproError(
                        f"{args.scores}:{lineno}: expected 'node score'"
                    )
                node = graph.id_of(parts[0]) if graph.has_labels else int(parts[0])
                values[node] = float(parts[1])
        return ScoreVector(values)
    relevance = MixtureRelevance(
        args.blacking_ratio, binary=args.binary, seed=args.seed + 1
    )
    return relevance.scores(graph)


def _build_session(args: argparse.Namespace) -> Network:
    graph = _build_graph(args)
    net = Network(graph, hops=args.hops, backend=args.backend)
    net.add_scores(_CLI_SCORE, _build_scores(args, graph))
    return net


def _cmd_query(args: argparse.Namespace) -> int:
    net = _build_session(args)
    if getattr(args, "index", None):
        net.load_index(args.index)
    try:
        result = (
            net.query(_CLI_SCORE)
            .limit(args.k)
            .aggregate(args.aggregate)
            .algorithm(args.algorithm)
            .run()
        )
    finally:
        net.close()  # worker processes / cluster connections, if any
    graph = net.graph
    stats = result.stats
    if args.json:
        payload = {
            "command": "query",
            "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
            "entries": [
                {
                    "rank": rank,
                    "node": node,
                    "label": str(graph.label_of(node)),
                    "value": value,
                }
                for rank, (node, value) in enumerate(result.entries, start=1)
            ],
            "stats": stats.as_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"# {graph.num_nodes} nodes, {graph.num_edges} edges; "
        f"algorithm={stats.algorithm}; backend={stats.backend}; "
        f"{stats.elapsed_sec * 1000:.1f} ms; "
        f"{stats.nodes_evaluated} balls evaluated"
    )
    for rank, (node, value) in enumerate(result.entries, start=1):
        label = graph.label_of(node)
        print(f"{rank}\t{label}\t{value:.6f}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    net = _build_session(args)
    plan = (
        net.query(_CLI_SCORE)
        .limit(args.k)
        .aggregate(args.aggregate)
        .explain(amortize_index=not args.cold)
    )
    if args.json:
        payload = {
            "command": "explain",
            "graph": {
                "nodes": net.graph.num_nodes,
                "edges": net.graph.num_edges,
            },
            "plan": plan.as_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(plan.explain())
    return 0


def _cmd_build_index(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    net = Network(graph, hops=args.hops)
    build_sec = net.build_indexes()
    net.save_index(args.out)
    print(
        f"# differential index for {graph.num_nodes} nodes / "
        f"{graph.num_edges} edges (h={args.hops}) built in {build_sec:.2f}s "
        f"-> {args.out}"
    )
    return 0


def _parse_cluster_workers(value: str):
    """``--cluster`` value: a spawn count or comma-separated addresses."""
    text = value.strip()
    try:
        return int(text)
    except ValueError:
        return [addr.strip() for addr in text.split(",") if addr.strip()]


def _cmd_serve(args: argparse.Namespace) -> int:
    """Concurrent serving driver: many queries through the scheduler."""
    import time

    graph = _build_graph(args)
    net = Network(graph, hops=args.hops, backend=args.backend)
    for i in range(args.queries):
        relevance = MixtureRelevance(
            args.blacking_ratio, binary=args.binary, seed=args.seed + 1 + i
        )
        net.add_scores(f"q{i}", relevance.scores(graph))
    if args.cluster:
        net.cluster(workers=_parse_cluster_workers(args.cluster))
    if args.listen is not None:
        return _serve_listen(args, net)
    service = net.service(
        workers=args.workers,
        coalesce=not args.no_coalesce,
        max_pending=max(args.queries * max(args.repeat, 1), 16),
        processes=args.processes,
        cluster=bool(args.cluster),
    )
    try:
        start = time.perf_counter()
        results = []
        # Rounds are submitted concurrently *within* themselves and
        # sequentially across repeats, so repeat rounds exercise the
        # result cache instead of coalescing with their own first pass.
        for _ in range(max(args.repeat, 1)):
            handles = [
                net.query(f"q{i}").limit(args.k).submit()
                for i in range(args.queries)
            ]
            results.extend(handle.result(timeout=600) for handle in handles)
        elapsed = time.perf_counter() - start
        stats = service.stats()
    finally:
        net.close()  # serving threads, worker processes, shared memory
    total = len(results)
    if args.json:
        payload = {
            "command": "serve",
            "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
            "workers": args.workers,
            "queries": total,
            "elapsed_sec": elapsed,
            "throughput_qps": total / elapsed if elapsed else 0.0,
            "service": {
                key: value
                for key, value in stats.items()
                if not isinstance(value, dict)
            },
            "result_cache": stats["result_cache"],
            "top_nodes": {
                f"q{i}": [node for node, _ in results[i].entries[:3]]
                for i in range(min(args.queries, 4))
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"# served {total} queries over {graph.num_nodes} nodes with "
        f"{args.workers} workers in {elapsed * 1000:.1f} ms "
        f"({total / elapsed:.1f} q/s)"
    )
    print(
        f"# coalesced {stats['coalesced_queries']} queries into "
        f"{stats['coalesced_batches']} shared scans; "
        f"{stats['cache_hits']} cache hits / {stats['cache_misses']} misses"
    )
    for i in range(args.queries):
        entries = results[i].entries
        head = ", ".join(
            f"{graph.label_of(node)}={value:.4f}" for node, value in entries[:3]
        )
        print(f"q{i}\t{head}")
    return 0


def _serve_listen(args: argparse.Namespace, net: Network) -> int:
    """Network serving mode: bind the HTTP front door over this session.

    ``--config FILE`` loads a full :class:`repro.serving.ServerConfig`
    (JSON, nested ``service``/``parallel`` sections); the flags below
    override only what they name.  ``--duration 0`` serves until
    interrupted.
    """
    import time

    from repro.serving import QueryServer, ServerConfig

    host, _, port = args.listen.rpartition(":")
    if args.config:
        cfg = ServerConfig.from_file(args.config)
    else:
        cfg = ServerConfig(
            replicas=args.replicas,
            service={
                "workers": args.workers,
                "coalesce": not args.no_coalesce,
                "processes": args.processes,
                "cluster": bool(args.cluster),
            },
        )
    cfg = cfg.replace(
        host=host or cfg.host, port=int(port) if port else cfg.port
    )
    server = QueryServer(net, cfg)
    try:
        server.start()
        print(f"listening on {server.url}", flush=True)
        print(
            f"# {net.graph.num_nodes} nodes, {net.graph.num_edges} edges; "
            f"{len(server.replicas)} replicas x "
            f"{cfg.service.workers} workers; scores: "
            f"{', '.join(net.score_names())}",
            flush=True,
        )
        if args.duration > 0:
            time.sleep(args.duration)
        else:
            while True:  # until SIGINT
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        net.close()
    return 0


def _cmd_cluster_worker(args: argparse.Namespace) -> int:
    """Run one cluster worker process (the remote end of ``--backend
    cluster``).  Prints ``listening on host:port`` once bound; serves
    until its coordinator sends a shutdown frame or the process is
    interrupted."""
    from repro.cluster import cluster_worker_main

    try:
        cluster_worker_main(args.listen, ident=args.ident)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    profile = profile_graph(graph, hops=args.hops, seed=args.seed)
    print(profile.describe())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the repro-check static-analysis suite (see DESIGN.md §9).

    Thin shim over ``python -m repro.analysis`` so the suite is reachable
    from the installed entry point; both spellings share one argparse
    definition and exit-code contract (0 = no active findings).
    """
    from repro.analysis.__main__ import run as check_run

    return check_run(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Top-k neighborhood aggregation queries over networks (LONA).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="run a top-k query")
    _add_graph_arguments(query)
    _add_relevance_arguments(query)
    query.add_argument("--k", type=int, required=True, help="result size")
    query.add_argument(
        "--aggregate",
        default="sum",
        choices=("sum", "avg", "count", "max", "min"),
    )
    query.add_argument("--hops", type=int, default=2)
    query.add_argument(
        "--algorithm",
        default="auto",
        choices=("auto", "planned", "base", "forward", "backward", "relational"),
    )
    query.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "python", "numpy", "native", "parallel", "cluster"),
        help="execution backend (auto = compiled kernels when numba is "
        "installed, else vectorized numpy; native = jitted CSR kernels; "
        "parallel = multi-process shared-memory shards; cluster = "
        "socket-connected cluster workers)",
    )
    query.add_argument(
        "--index", help="path to a persisted differential index (see build-index)"
    )
    _add_json_argument(query)
    query.set_defaults(func=_cmd_query)

    build_index = subparsers.add_parser(
        "build-index",
        help="precompute the differential index and store it on disk",
    )
    _add_graph_arguments(build_index)
    build_index.add_argument("--hops", type=int, default=2)
    build_index.add_argument(
        "--out", required=True, help="output path for the index file"
    )
    build_index.set_defaults(func=_cmd_build_index)

    explain = subparsers.add_parser(
        "explain", help="show the planner's cost estimates"
    )
    _add_graph_arguments(explain)
    _add_relevance_arguments(explain)
    explain.add_argument("--k", type=int, required=True)
    explain.add_argument(
        "--aggregate", default="sum", choices=("sum", "avg", "count")
    )
    explain.add_argument("--hops", type=int, default=2)
    explain.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "python", "numpy", "native", "parallel", "cluster"),
        help="execution backend the plan will run on",
    )
    explain.add_argument(
        "--cold",
        action="store_true",
        help="charge the offline index build to this query",
    )
    _add_json_argument(explain)
    explain.set_defaults(func=_cmd_explain)

    serve = subparsers.add_parser(
        "serve",
        help="drive a concurrent query workload through the serving scheduler",
    )
    _add_graph_arguments(serve)
    # serve generates one mixture relevance per query (--queries distinct
    # seeds), so unlike the single-query commands it takes no --scores file.
    serve.add_argument(
        "--blacking-ratio",
        type=float,
        default=0.01,
        help="fraction of nodes assigned relevance 1.0 (paper's r)",
    )
    serve.add_argument(
        "--binary",
        action="store_true",
        help="0/1 relevance instead of the continuous mixture",
    )
    serve.add_argument("--k", type=int, required=True, help="result size")
    serve.add_argument("--hops", type=int, default=2)
    serve.add_argument(
        "--queries",
        type=int,
        default=8,
        help="number of distinct relevance functions to serve",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker threads in the serving pool (0 = inline)",
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="submit the workload this many times (repeats hit the result cache)",
    )
    serve.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable shared-scan coalescing (for comparison)",
    )
    serve.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "python", "numpy", "native", "parallel", "cluster"),
        help="execution backend",
    )
    serve.add_argument(
        "--processes",
        action="store_true",
        help="serve on the process-parallel backend: --workers worker "
        "processes over shared-memory CSR shards",
    )
    serve.add_argument(
        "--cluster",
        metavar="N|HOST:PORT,...",
        help="serve on the socket-cluster backend: an integer spawns that "
        "many local cluster-worker processes; a comma-separated host:port "
        "list connects to workers already running (see the cluster-worker "
        "command)",
    )
    serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="serve the session over HTTP instead of driving a local "
        "workload (port 0 binds an ephemeral port, printed on stdout)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="replica lanes behind the HTTP front door (with --listen)",
    )
    serve.add_argument(
        "--config",
        help="JSON ServerConfig file (with --listen); flags override "
        "host/port only",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="with --listen: serve for this many seconds then exit "
        "(0 = until interrupted)",
    )
    _add_json_argument(serve)
    serve.set_defaults(func=_cmd_serve)

    cluster_worker = subparsers.add_parser(
        "cluster-worker",
        help="run a cluster worker that executes shard tasks for a "
        "coordinator (the remote end of --backend cluster)",
    )
    cluster_worker.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address (port 0 picks an ephemeral port; the bound "
        "address is printed as 'listening on host:port')",
    )
    cluster_worker.add_argument(
        "--ident",
        type=int,
        default=-1,
        help="spawner-assigned peer identity (surfaced in stats; fault "
        "plans match their 'peer' label against it)",
    )
    cluster_worker.set_defaults(func=_cmd_cluster_worker)

    profile = subparsers.add_parser(
        "profile", help="structural statistics of a graph"
    )
    _add_graph_arguments(profile)
    profile.add_argument("--hops", type=int, default=2)
    profile.set_defaults(func=_cmd_profile)

    from repro.analysis.__main__ import build_parser as _check_parser

    check = subparsers.add_parser(
        "check",
        help="run the repro-check static-analysis suite",
        parents=[_check_parser(add_help=False)],
    )
    check.set_defaults(func=_cmd_check)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
