"""The parallel backend's session-side engine: exports, dispatch, merge.

One :class:`ParallelEngine` lives on a
:class:`~repro.core.context.GraphContext` (shared by every query of a
session) and owns three kinds of state:

* **Shared-memory exports** — the CSR view (and its reversal, for directed
  graphs), every score vector recently queried, the per-shard owned-node
  arrays, and per-(score, aggregate) static-bound arrays.  All exports are
  version-stamped: a dynamic mutation moves ``graph.version``, the engine
  marks the old export stale (attached workers refuse it), unlinks, and
  re-exports lazily on the next query.
* **The worker pool** — a persistent, spawn-started
  :class:`~repro.parallel.pool.ShardWorkerPool` whose processes stay warm
  (attachments cached) across queries.
* **The shard plan** — a :func:`~repro.distributed.partition.bfs_partition`
  ownership map (see :mod:`repro.parallel.shards`).

Routes: sharded Base scan (every aggregate kind, optionally restricted to
a candidate set), bound-pruned Forward scan, the sharded Backward pipeline
(parallel distribution -> merged Eq. 3 bounds -> TA-style verification
rounds dispatched to owning shards), the fused multi-query batch scan, and
the distance-weighted scan.  Every ``execute*`` method returns ``None``
when the engine *declines* — graph below ``min_nodes``, fewer than two
workers, or an unsupported knob combination — and the caller falls back to
the in-process numpy backend; that decline rule is the runtime face of the
planner's parallel fixed-cost term.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aggregates.functions import AggregateKind
from repro.core.deadline import check_deadline
from repro.core.results import QueryStats, TopKResult
from repro.core.topk import TopKAccumulator
from repro.errors import InvalidParameterError, ParallelError, StaleShardError
from repro.graph.csr import SharedArray, SharedCSR
from repro.parallel.merge import (
    merge_counters,
    merge_entry_buffers,
    merge_shard_entries,
)
from repro.parallel.pool import ShardWorkerPool
from repro.parallel.shards import ShardPlan, build_shard_plan

__all__ = ["DEFAULT_MIN_NODES", "ParallelEngine"]

#: Below this many nodes the engine declines and the query runs in-process:
#: a spawn-warm pool still pays ~1 ms of queue IPC per round, which at small
#: n exceeds the whole vectorized scan.
DEFAULT_MIN_NODES = 8192

#: Resident score-vector exports kept per engine (LRU beyond this).
_SCORE_EXPORT_LIMIT = 16

#: Resident static-bound exports kept per engine (LRU beyond this).
_BOUND_EXPORT_LIMIT = 8

#: Candidates verified per TA round of the sharded backward pipeline.
_VERIFY_ROUND = 256

#: Max work-stealing chunks per shard scan.  A few pieces per shard is
#: enough for idle workers to absorb a skewed partition's tail; many more
#: would multiply per-task fixed cost for no extra overlap.
_STEAL_CHUNKS = 4


def _close_resources(resources: dict) -> None:
    """Finalizer target: release pool + shared memory without reviving self."""
    pool = resources.get("pool")
    if pool is not None:
        try:
            pool.close()
        except Exception:  # pragma: no cover - interpreter-shutdown races
            pass
    for export in resources.get("exports", []):
        try:
            export.mark_stale()
        except AttributeError:
            pass
        except Exception:  # pragma: no cover
            pass
        try:
            export.unlink()
        except Exception:  # pragma: no cover
            pass
    resources["pool"] = None
    resources["exports"] = []


class ParallelEngine:
    """Process-parallel execution over one graph context (see module doc)."""

    def __init__(
        self,
        ctx,
        *,
        workers: Optional[int] = None,
        min_nodes: int = DEFAULT_MIN_NODES,
        partitioner: str = "bfs",
        seed: int = 2010,
        timeout: float = 120.0,
        work_stealing: bool = True,
        result_buffers: bool = True,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.ctx = ctx
        self.workers = int(workers)
        self.min_nodes = int(min_nodes)
        self.partitioner = partitioner
        self.seed = seed
        self.timeout = timeout
        self.work_stealing = bool(work_stealing)
        self.result_buffers = bool(result_buffers)
        self._lock = threading.RLock()
        self._closed = False
        # All process/shared-memory state lives in one dict so a weakref
        # finalizer can release it even if the session forgets close().
        self._resources: dict = {"pool": None, "exports": []}
        self._finalizer = weakref.finalize(self, _close_resources, self._resources)
        self._plan: Optional[ShardPlan] = None
        self._csr_export: Optional[SharedCSR] = None
        self._rev_export: Optional[SharedCSR] = None
        self._owned_exports: List[SharedArray] = []
        self._score_exports: "OrderedDict[Tuple[int, ...], Tuple[object, SharedArray]]" = OrderedDict()
        self._bound_exports: "OrderedDict[Tuple, Tuple[object, SharedArray]]" = OrderedDict()
        # Exports evicted from the LRUs *while a round's tasks are being
        # built* may already be referenced by task metas of that round;
        # they are parked here and unlinked only after the round returns.
        self._deferred_drops: List[SharedArray] = []
        # Per-task-slot shared reply buffers (float64 (capacity, 2) rows of
        # [node, value]); rotated — never reused — after any round that
        # respawned a worker or raised, because a straggler holding the old
        # mapping could still write it.
        self._reply_buffers: List[SharedArray] = []
        self._reply_capacity = 0
        self._reply_dirty = False
        self._native: Optional[bool] = None
        self._export_version: Optional[int] = None
        self.queries_served = 0
        self.declined = 0
        self.stale_retries = 0

    # ------------------------------------------------------------------
    # Lifecycle / exports
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _pool(self) -> ShardWorkerPool:
        pool = self._resources["pool"]
        if pool is None:
            pool = ShardWorkerPool(self.workers, timeout=self.timeout)
            self._resources["pool"] = pool
        return pool

    def _graph_version(self) -> int:
        return int(getattr(self.ctx.graph, "version", 0) or 0)

    def _track(self, export) -> None:
        self._resources["exports"].append(export)

    def _untrack(self, export) -> None:
        try:
            self._resources["exports"].remove(export)
        except ValueError:  # pragma: no cover - double release
            pass

    def _drop_export(self, export) -> None:
        self._untrack(export)
        export.unlink()
        export.close()

    def _defer_drop(self, export) -> None:
        """Queue an evicted export for unlinking after the in-flight round.

        An LRU eviction can fire in the middle of building a round's tasks
        (``_score_meta`` is called once per batch member), at which point
        earlier tasks of the *same* round already embed the evicted
        segment's name — unlinking it now would make the workers'
        ``attach`` fail mid-round.
        """
        self._deferred_drops.append(export)

    def _flush_deferred_drops(self) -> None:
        for export in self._deferred_drops:
            self._drop_export(export)
        self._deferred_drops = []

    def _invalidate_exports(self) -> None:
        """Tear down every shared segment (after a graph mutation)."""
        if self._csr_export is not None:
            self._csr_export.mark_stale()
        for export in (self._csr_export, self._rev_export):
            if export is not None:
                self._drop_export(export)
        self._csr_export = None
        self._rev_export = None
        for export in self._owned_exports:
            self._drop_export(export)
        self._owned_exports = []
        for _vec, export in self._score_exports.values():
            self._drop_export(export)
        self._score_exports.clear()
        for _vec, export in self._bound_exports.values():
            self._drop_export(export)
        self._bound_exports.clear()
        for export in self._reply_buffers:
            self._drop_export(export)
        self._reply_buffers = []
        self._reply_capacity = 0
        self._flush_deferred_drops()
        self._plan = None
        self._export_version = None

    def invalidate(self) -> None:
        """Public form of export teardown (the context calls this on close)."""
        with self._lock:
            self._invalidate_exports()

    def close(self) -> None:
        """Shut the pool down and release every shared segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._invalidate_exports()
            self._finalizer()

    def _refresh(self) -> None:
        """(Re)build exports and the shard plan for the current graph version."""
        if self._closed:
            raise ParallelError("parallel engine has been closed")
        version = self._graph_version()
        if self._csr_export is not None and self._export_version != version:
            self._invalidate_exports()
        if self._csr_export is not None:
            return
        graph = self.ctx.graph
        self._csr_export = SharedCSR.export(self.ctx.csr(), version=version)
        self._track(self._csr_export)
        rev = self.ctx.rev_csr()
        if rev is not None:
            self._rev_export = SharedCSR.export(rev, version=version)
            self._track(self._rev_export)
        self._plan = build_shard_plan(
            graph,
            self.workers,
            partitioner=self.partitioner,
            seed=self.seed,
        )
        self._owned_exports = []
        for owned in self._plan.owned:
            export = SharedArray.create(owned)
            self._track(export)
            self._owned_exports.append(export)
        self._export_version = version

    def shard_plan(self) -> ShardPlan:
        """The current shard ownership map (builds exports if needed)."""
        with self._lock:
            self._refresh()
            assert self._plan is not None
            return self._plan

    def _score_meta(self, scores) -> dict:
        """Export (or reuse) a score vector's values; key is object identity.

        The session replaces a :class:`~repro.relevance.base.ScoreVector`
        wholesale on any score mutation, so identity equality is exactly
        value equality here; the strong reference kept with the export
        pins the id.  Raw values are exported — per-aggregate folding
        (COUNT's 0/1 indicator) happens worker-side.
        """
        import numpy as np

        key = id(scores)
        hit = self._score_exports.get(key)
        if hit is not None:
            self._score_exports.move_to_end(key)
            return hit[1].meta()
        values = scores.values() if hasattr(scores, "values") else list(scores)
        export = SharedArray.create(np.asarray(values, dtype=np.float64))
        self._track(export)
        self._score_exports[key] = (scores, export)
        while len(self._score_exports) > _SCORE_EXPORT_LIMIT:
            _, (_vec, dropped) = self._score_exports.popitem(last=False)
            self._defer_drop(dropped)
        return export.meta()

    def _bounds_meta(self, scores, kind: AggregateKind, include_self: bool) -> dict:
        """Export per-node static upper bounds for the pruned forward scan.

        The formulas live in one place —
        :func:`repro.core.vectorized.static_upper_bounds_array` — shared
        with every in-process consumer so the parallel scan can never
        prune on a drifted bound.
        """
        import numpy as np

        from repro.core.vectorized import static_upper_bounds_array

        key = (id(scores), kind.value, include_self)
        hit = self._bound_exports.get(key)
        if hit is not None:
            self._bound_exports.move_to_end(key)
            return hit[1].meta()
        values = scores.values() if hasattr(scores, "values") else list(scores)
        bounds = static_upper_bounds_array(
            np, values, self.ctx.size_index(), kind, include_self
        )
        export = SharedArray.create(bounds)
        self._track(export)
        # The scores object is pinned alongside the export (like
        # _score_exports): the id() in the key is only unique while the
        # object lives, and a reused id must never hit a stale bound array.
        self._bound_exports[key] = (scores, export)
        while len(self._bound_exports) > _BOUND_EXPORT_LIMIT:
            _, (_vec, dropped) = self._bound_exports.popitem(last=False)
            self._defer_drop(dropped)
        return export.meta()

    def _block_size(self, queries: int = 1) -> int:
        from repro.core.vectorized import resolve_block_size

        csr = self.ctx.csr()
        block = resolve_block_size(None, self.ctx.graph.num_nodes, int(csr.num_arcs))
        if queries > 1:
            block = max(4, block // queries)
        return block

    def _workers_native(self) -> bool:
        """Whether worker tasks should ask for the compiled kernel tier.

        Workers gate on their own import, but probing here keeps the task
        flag honest (and cheap: one import attempt per engine).  Only the
        *compiled* tier is offered — interpreted kernels are a parity
        device and lose to numpy — unless the wiring-test escape hatch
        ``REPRO_PARALLEL_NATIVE_INTERPRETED`` is set.
        """
        if self._native is None:
            try:
                from repro.native import kernels

                self._native = kernels.KERNEL_MODE == "compiled" or bool(
                    os.environ.get("REPRO_PARALLEL_NATIVE_INTERPRETED")
                )
            except Exception:  # pragma: no cover - partial numba installs
                self._native = False
        return self._native

    # ------------------------------------------------------------------
    # Shared reply buffers
    # ------------------------------------------------------------------
    def _reply_metas(self, count: int, rows: int) -> List[Optional[dict]]:
        """Reply-buffer descriptors for a round of ``count`` tasks.

        Buffers are preallocated once and reused round after round; they
        only grow (capacity highwater) and are rotated to fresh segments
        when ``_reply_dirty`` says a straggler from a respawned or failed
        round might still hold a writable mapping of the old ones.
        Unlinking a possibly-still-mapped segment is safe: POSIX keeps the
        pages alive until the last map closes, and nobody reads retired
        buffers.
        """
        if not self.result_buffers or count == 0:
            return [None] * count
        import numpy as np

        rows = max(int(rows), 1)
        if (
            self._reply_dirty
            or rows > self._reply_capacity
            or count > len(self._reply_buffers)
        ):
            needed = max(count, len(self._reply_buffers))
            capacity = max(rows, self._reply_capacity)
            for export in self._reply_buffers:
                self._drop_export(export)
            self._reply_buffers = []
            for _ in range(needed):
                export = SharedArray.create(
                    np.zeros((capacity, 2), dtype=np.float64)
                )
                self._track(export)
                self._reply_buffers.append(export)
            self._reply_capacity = capacity
            self._reply_dirty = False
        return [
            {
                "buffer": self._reply_buffers[i].meta(),
                "capacity": self._reply_capacity,
            }
            for i in range(count)
        ]

    def _result_pairs(self, result: dict, index: int, key: str):
        """One task's ``(node, value)`` rows: buffer view or pipe payload.

        ``index`` is the task's position in its round (buffer slots are
        assigned positionally).  Re-issued tasks after a worker death come
        back over the pipe even when a buffer was offered, so both forms
        can appear within one round.
        """
        if key in result:
            return result[key]
        n = int(result[key + "_n"])
        return self._reply_buffers[index].array[:n]

    def _pipe_snapshot(self) -> Tuple[int, int]:
        pool = self._pool()
        return pool.bytes_sent, pool.bytes_received

    def _stamp_pipe_bytes(self, stats: QueryStats, snapshot: Tuple[int, int]) -> None:
        """Record this query's pipe traffic (both directions) in its stats."""
        pool = self._resources["pool"]
        if pool is None:  # pragma: no cover - closed mid-query
            return
        stats.extra["pipe_bytes_sent"] = float(pool.bytes_sent - snapshot[0])
        stats.extra["pipe_bytes_received"] = float(
            pool.bytes_received - snapshot[1]
        )

    # ------------------------------------------------------------------
    # Dispatch plumbing
    # ------------------------------------------------------------------
    def _declines(self, *, force: bool = False, work_items: Optional[int] = None) -> bool:
        """Whether this query should run in-process instead.

        ``work_items`` is the number of centers actually evaluated (the
        candidate-set size for filtered scans); it defaults to the whole
        graph.  The fixed process/IPC cost amortizes over evaluated
        centers, not graph size, so a three-candidate ``.where()`` on a
        million-node graph must decline.
        """
        if force:
            return False
        if self.workers < 2:
            return True
        size = self.ctx.graph.num_nodes if work_items is None else work_items
        return size < self.min_nodes

    def _run_round(self, build_tasks, *, dynamic: bool = False) -> List[dict]:
        """Build tasks against fresh exports and run them, retrying once if
        a worker reports the exports went stale under us.

        Any abnormal outcome — stale retry, worker respawn, error, timeout
        — marks the reply buffers dirty: a task of the broken round may
        still be running somewhere with a writable mapping, so the next
        round must not reuse those segments.
        """
        for attempt in (0, 1):
            check_deadline()  # before committing a full round of worker IPC
            self._refresh()
            tasks = build_tasks()
            pool = self._pool()
            try:
                results = pool.run(tasks, dynamic=dynamic)
                if pool.last_run_respawned:
                    self._reply_dirty = True
                return results
            except StaleShardError:
                self.stale_retries += 1
                self._reply_dirty = True
                self._invalidate_exports()
                if attempt:
                    raise
            except BaseException:
                self._reply_dirty = True
                raise
            finally:
                # LRU evictions deferred during task building are safe to
                # unlink now — no task of this round is in flight anymore.
                self._flush_deferred_drops()
        raise AssertionError("unreachable")  # pragma: no cover

    def _base_stats(self, algorithm: str, spec, elapsed: float) -> QueryStats:
        stats = QueryStats(
            algorithm=algorithm,
            aggregate=spec.aggregate.value,
            backend="parallel",
            hops=spec.hops,
            k=spec.k,
            elapsed_sec=elapsed,
        )
        assert self._plan is not None
        stats.extra["shards"] = float(self._plan.num_shards)
        stats.extra["workers"] = float(self.workers)
        return stats

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def execute_scan(
        self,
        scores,
        spec,
        algorithm: str,
        *,
        candidates: Optional[Sequence[int]] = None,
        force: bool = False,
    ) -> Optional[TopKResult]:
        """Sharded Base (``algorithm="base"``) or bound-pruned Forward scan.

        ``candidates`` restricts the competitors (the ``.where(...)``
        filtered scan): each shard evaluates the intersection of the
        candidate set with its owned nodes.
        """
        import numpy as np

        if algorithm == "forward" and not spec.aggregate.lona_supported:
            # Mirror the in-process front door: forward + MAX/MIN must
            # raise the same InvalidParameterError on every backend, so
            # decline and let forward_topk deliver the canonical error
            # (the static bounds below are SUM-shaped and would otherwise
            # silently "succeed" here).
            return None
        with self._lock:
            if self._declines(
                force=force,
                work_items=None if candidates is None else len(candidates),
            ):
                self.declined += 1
                return None
            start = time.perf_counter()
            pipe0 = self._pipe_snapshot()
            block = self._block_size()
            candidate_arr = (
                None
                if candidates is None
                else np.asarray(sorted(candidates), dtype=np.int64)
            )
            steal = self.work_stealing and candidate_arr is None
            native = self._workers_native()

            def build() -> List[dict]:
                assert self._csr_export is not None and self._plan is not None
                csr_meta = self._csr_export.meta()
                scores_meta = self._score_meta(scores)
                bounds_meta = (
                    self._bounds_meta(scores, spec.aggregate, spec.include_self)
                    if algorithm == "forward"
                    else None
                )
                tasks = []
                parts = self._plan.partition.as_array()
                for shard in range(self._plan.num_shards):
                    task = {
                        "kind": "scan",
                        "csr": csr_meta,
                        "scores": scores_meta,
                        "owned": self._owned_exports[shard].meta(),
                        "centers": None,
                        "aggregate": spec.aggregate.value,
                        "hops": spec.hops,
                        "include_self": spec.include_self,
                        "k": spec.k,
                        "block": block,
                        "bounds": bounds_meta,
                        "native": native,
                    }
                    if candidate_arr is not None:
                        task["centers"] = candidate_arr[
                            parts[candidate_arr] == shard
                        ]
                        tasks.append(task)
                    elif steal:
                        tasks.extend(
                            self._chunked(task, self._plan.owned[shard].size, block)
                        )
                    else:
                        tasks.append(task)
                if steal:
                    # Heavy chunks first: the dynamic dispatcher then hands
                    # a skewed shard's tail to whichever worker idles first.
                    tasks.sort(
                        key=lambda t: t.get("hi", 0) - t.get("lo", 0),
                        reverse=True,
                    )
                for task, reply in zip(
                    tasks, self._reply_metas(len(tasks), spec.k)
                ):
                    task["reply"] = reply
                return tasks

            results = self._run_round(build, dynamic=steal)
            entries = merge_entry_buffers(
                (
                    self._result_pairs(result, i, "entries")
                    for i, result in enumerate(results)
                ),
                spec.k,
            )
            stats = self._base_stats(
                algorithm, spec, time.perf_counter() - start
            )
            merge_counters(stats, (result["counters"] for result in results))
            stats.pruned_nodes = sum(result["pruned"] for result in results)
            if candidate_arr is not None:
                stats.extra["candidates"] = float(candidate_arr.size)
            stats.extra["tasks"] = float(len(results))
            self._stamp_pipe_bytes(stats, pipe0)
            self.queries_served += 1
            return TopKResult(entries=entries, stats=stats)

    def _chunked(self, task: dict, owned_size: int, block: int) -> List[dict]:
        """Split one shard scan into owned-array slices for work-stealing.

        Chunks are ``lo``/``hi`` ranges of the already-exported owned
        array (nothing extra crosses the pipe).  A shard only splits when
        each piece still covers at least one kernel block — chunking a
        small shard would just multiply fixed task cost.
        """
        size = int(owned_size)
        pieces = min(_STEAL_CHUNKS, max(1, size // max(int(block), 1)))
        if pieces <= 1:
            return [task]
        bounds = [size * p // pieces for p in range(pieces + 1)]
        return [
            {**task, "lo": bounds[p], "hi": bounds[p + 1]}
            for p in range(pieces)
            if bounds[p + 1] > bounds[p]
        ]

    def execute_backward(
        self,
        scores,
        spec,
        *,
        gamma="auto",
        distribution_fraction: float = 0.1,
        exact_sizes: bool = False,
        force: bool = False,
    ) -> Optional[TopKResult]:
        """Sharded LONA-Backward: parallel distribution, merged Eq. 3
        bounds, TA-style verification rounds against owning shards."""
        import numpy as np

        from repro.core.vectorized import (
            backward_distribution_split,
            backward_eq3_bounds,
        )

        kind = spec.aggregate
        if not kind.lona_supported:
            raise InvalidParameterError(
                f"LONA-Backward supports SUM/AVG/COUNT, not {kind.value}; "
                "use algorithm='base' for MAX/MIN"
            )
        with self._lock:
            if self._declines(force=force):
                self.declined += 1
                return None
            start = time.perf_counter()
            pipe0 = self._pipe_snapshot()
            n = self.ctx.graph.num_nodes
            values = scores.values() if hasattr(scores, "values") else list(scores)
            scores_arr = np.asarray(values, dtype=np.float64)
            if kind is AggregateKind.COUNT:
                scores_arr = np.where(scores_arr > 0.0, 1.0, 0.0)
            eff_kind = AggregateKind.SUM if kind is AggregateKind.COUNT else kind
            is_avg = eff_kind is AggregateKind.AVG
            include_self = spec.include_self
            sizes = self.ctx.size_index(exact=exact_sizes)

            # Same distribution policy as the in-process kernel (shared
            # helper): workers then select their owned subset of the same
            # f(u) >= gamma set.
            _distributed, effective_gamma, rest_bound = (
                backward_distribution_split(
                    np, scores_arr, gamma, distribution_fraction
                )
            )
            if rest_bound == 0.0 and (not is_avg or sizes.is_exact):
                # Full distribution -> the exact-shortcut regime, where the
                # in-process kernel's *answers* are the partial sums built
                # in one sequential descending-score deposit order.
                # Summing per-shard partials reassociates those float
                # additions, so the sharded values could differ in the
                # last ulp and flip rank-k ties — and the regime is
                # distribution-only (no verification BFS at all), the one
                # backward shape with nothing left to parallelize.  Run it
                # in-process for bit-identical entries.
                self.declined += 1
                return None
            block = self._block_size()

            # --- Phase 1: parallel distribution (owned high scores out) ---
            def build_distribute() -> List[dict]:
                assert self._csr_export is not None and self._plan is not None
                dist_meta = (
                    self._rev_export.meta()
                    if self._rev_export is not None
                    else self._csr_export.meta()
                )
                scores_meta = self._score_meta(scores)
                return [
                    {
                        "kind": "distribute",
                        "csr": dist_meta,
                        "scores": scores_meta,
                        "owned": self._owned_exports[shard].meta(),
                        "aggregate": kind.value,
                        "gamma": effective_gamma,
                        "hops": spec.hops,
                        "include_self": include_self,
                        "block": block,
                    }
                    for shard in range(self._plan.num_shards)
                ]

            results = self._run_round(build_distribute)
            partial = np.zeros(n, dtype=np.float64)
            covered = np.zeros(n, dtype=np.int64)
            pushes = 0
            distributed_count = 0
            for result in results:
                # Touched indices are unique per shard (np.nonzero output),
                # so plain fancy-index addition is safe and cheaper.
                touched = result["touched"]
                partial[touched] += result["partial"]
                covered[touched] += result["covered"]
                pushes += result["pushes"]
                distributed_count += result["distributed"]

            stats = self._base_stats("backward", spec, 0.0)
            merge_counters(stats, (result["counters"] for result in results))
            stats.distribution_pushes = pushes

            # --- Phase 2: Eq. 3 bounds over the merged state (the shared
            # helper — literally the numpy backend's math) ------------------
            self_distributed = np.zeros(n, dtype=bool)
            if include_self:
                self_distributed = (scores_arr > 0.0) & (
                    scores_arr >= effective_gamma
                )
            bounds = backward_eq3_bounds(
                np,
                scores_arr,
                partial,
                covered,
                self_distributed,
                sizes,
                rest_bound,
                include_self=include_self,
                is_avg=is_avg,
            )
            stats.bound_evaluations = n
            order = np.lexsort((np.arange(n), -bounds))

            # --- Phase 3: TA rounds against owning shards -----------------
            # (The exact-shortcut regime declined above, so every offered
            # value comes from exact verification — which accumulates ball
            # members in the same ascending order as the in-process
            # kernels, keeping values bit-identical.)
            acc = TopKAccumulator(spec.k)
            offered = 0
            verify_rounds = 0
            idx = 0
            done = False
            while idx < n and not done:
                if acc.is_full and float(bounds[order[idx]]) <= acc.threshold:
                    stats.early_terminated = True
                    break
                # Frontier: the next round of candidates still above the
                # current threshold, verified in parallel by owning shard.
                hi = min(idx + _VERIFY_ROUND, n)
                frontier = order[idx:hi]
                if acc.is_full:
                    frontier = frontier[
                        bounds[frontier] > acc.threshold
                    ]
                if frontier.size == 0:
                    stats.early_terminated = True
                    break
                exact = self._verify_frontier(scores, spec, frontier, block, stats)
                verify_rounds += 1
                stats.candidates_verified += int(frontier.size)
                for v in order[idx:hi]:
                    node = int(v)
                    if acc.is_full and float(bounds[node]) <= acc.threshold:
                        stats.early_terminated = True
                        done = True
                        break
                    if node in exact:
                        acc.offer(node, exact[node])
                        offered += 1
                idx = hi
            stats.pruned_nodes = n - offered
            stats.extra["gamma"] = effective_gamma
            stats.extra["distributed_nodes"] = float(distributed_count)
            stats.extra["rest_bound"] = rest_bound
            stats.extra["exact_shortcut"] = 0.0  # shortcut shapes declined
            stats.extra["verify_rounds"] = float(verify_rounds)
            self._stamp_pipe_bytes(stats, pipe0)
            stats.elapsed_sec = time.perf_counter() - start
            self.queries_served += 1
            return TopKResult(entries=acc.entries(), stats=stats)

    def _verify_frontier(
        self, scores, spec, frontier, block: int, stats: QueryStats
    ) -> Dict[int, float]:
        """Exact values of ``frontier`` candidates, from their owning shards."""
        native = self._workers_native()

        def build() -> List[dict]:
            assert self._csr_export is not None and self._plan is not None
            csr_meta = self._csr_export.meta()
            scores_meta = self._score_meta(scores)
            parts = self._plan.partition.as_array()
            tasks = []
            rows = 1
            for shard in range(self._plan.num_shards):
                mine = frontier[parts[frontier] == shard]
                if mine.size == 0:
                    continue
                rows = max(rows, int(mine.size))
                tasks.append(
                    {
                        "kind": "verify",
                        "csr": csr_meta,
                        "scores": scores_meta,
                        "centers": mine,
                        "aggregate": spec.aggregate.value,
                        "hops": spec.hops,
                        "include_self": spec.include_self,
                        "block": block,
                        "native": native,
                    }
                )
            for task, reply in zip(tasks, self._reply_metas(len(tasks), rows)):
                task["reply"] = reply
            return tasks

        results = self._run_round(build)
        merge_counters(stats, (result["counters"] for result in results))
        exact: Dict[int, float] = {}
        for i, result in enumerate(results):
            check_deadline()  # merge boundary: one poll per shard reply
            for node, value in self._result_pairs(result, i, "pairs"):
                exact[int(node)] = float(value)
        return exact

    def execute_weighted(
        self, scores, spec, profile, *, force: bool = False
    ) -> Optional[TopKResult]:
        """Sharded distance-weighted SUM (exact scan of owned centers)."""
        from repro.aggregates.weighted import inverse_distance, precompute_weights
        from repro.core.vectorized import _check_weighted_spec

        _check_weighted_spec(spec)
        with self._lock:
            if self._declines(force=force):
                self.declined += 1
                return None
            start = time.perf_counter()
            pipe0 = self._pipe_snapshot()
            weights = precompute_weights(
                profile if profile is not None else inverse_distance, spec.hops
            )
            block = self._block_size()
            steal = self.work_stealing
            native = self._workers_native()

            def build() -> List[dict]:
                assert self._csr_export is not None and self._plan is not None
                csr_meta = self._csr_export.meta()
                scores_meta = self._score_meta(scores)
                tasks: List[dict] = []
                for shard in range(self._plan.num_shards):
                    task = {
                        "kind": "weighted",
                        "csr": csr_meta,
                        "scores": scores_meta,
                        "owned": self._owned_exports[shard].meta(),
                        "weights": tuple(weights),
                        "hops": spec.hops,
                        "include_self": spec.include_self,
                        "k": spec.k,
                        "block": block,
                        "native": native,
                    }
                    if steal:
                        tasks.extend(
                            self._chunked(task, self._plan.owned[shard].size, block)
                        )
                    else:
                        tasks.append(task)
                if steal:
                    tasks.sort(
                        key=lambda t: t.get("hi", 0) - t.get("lo", 0),
                        reverse=True,
                    )
                for task, reply in zip(
                    tasks, self._reply_metas(len(tasks), spec.k)
                ):
                    task["reply"] = reply
                return tasks

            results = self._run_round(build, dynamic=steal)
            entries = merge_entry_buffers(
                (
                    self._result_pairs(result, i, "entries")
                    for i, result in enumerate(results)
                ),
                spec.k,
            )
            stats = self._base_stats(
                "weighted-base", spec, time.perf_counter() - start
            )
            merge_counters(stats, (result["counters"] for result in results))
            stats.extra["tasks"] = float(len(results))
            self._stamp_pipe_bytes(stats, pipe0)
            self.queries_served += 1
            return TopKResult(entries=entries, stats=stats)

    def run_batch(
        self, batch: Sequence, *, hops: int, include_self: bool, force: bool = False
    ) -> Optional[List[TopKResult]]:
        """Fused multi-query shared scan, one sub-scan per shard.

        ``batch`` is a sequence of :class:`~repro.core.batch.BatchQuery`
        (sum-convertible aggregates).  Each shard expands its owned node
        blocks once and scores every query against them; per-query shard
        top-k lists are merged like any other sharded scan.
        """
        with self._lock:
            if not batch or self._declines(force=force):
                self.declined += 1 if batch else 0
                return None
            start = time.perf_counter()
            pipe0 = self._pipe_snapshot()
            block = self._block_size(queries=len(batch))

            def build() -> List[dict]:
                assert self._csr_export is not None and self._plan is not None
                csr_meta = self._csr_export.meta()
                scores_list = [
                    (self._score_meta(entry.scores), entry.aggregate.value)
                    for entry in batch
                ]
                ks = [entry.k for entry in batch]
                return [
                    {
                        "kind": "batch",
                        "csr": csr_meta,
                        "owned": self._owned_exports[shard].meta(),
                        "scores_list": scores_list,
                        "ks": ks,
                        "hops": hops,
                        "include_self": include_self,
                        "block": block,
                    }
                    for shard in range(self._plan.num_shards)
                ]

            results = self._run_round(build)
            elapsed = time.perf_counter() - start
            outputs: List[TopKResult] = []
            for i, entry in enumerate(batch):
                entries = merge_shard_entries(
                    (result["entries_list"][i] for result in results),
                    entry.k,
                )
                stats = QueryStats(
                    algorithm="batch-base",
                    aggregate=entry.aggregate.value,
                    backend="parallel",
                    hops=hops,
                    k=entry.k,
                    elapsed_sec=elapsed,
                    nodes_evaluated=self.ctx.graph.num_nodes,
                )
                merge_counters(stats, (result["counters"] for result in results))
                # Whole-batch traversal is attributed to every member, with
                # the batch size recorded so reports divide fairly — the
                # same convention as the in-process shared scan.
                stats.nodes_evaluated = self.ctx.graph.num_nodes
                stats.extra["batch_size"] = float(len(batch))
                assert self._plan is not None
                stats.extra["shards"] = float(self._plan.num_shards)
                stats.extra["workers"] = float(self.workers)
                self._stamp_pipe_bytes(stats, pipe0)
                outputs.append(TopKResult(entries=entries, stats=stats))
            self.queries_served += 1
            return outputs

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Monitoring snapshot: pool, shard, and export gauges."""
        with self._lock:
            pool = self._resources["pool"]
            return {
                "workers": self.workers,
                "min_nodes": self.min_nodes,
                "closed": self._closed,
                "pool_started": bool(pool is not None and pool.started),
                "alive_workers": 0 if pool is None else pool.alive_workers,
                "respawns": 0 if pool is None else pool.respawns,
                "queries_served": self.queries_served,
                "declined": self.declined,
                "stale_retries": self.stale_retries,
                "shards": None if self._plan is None else self._plan.sizes(),
                "score_exports": len(self._score_exports),
                "export_version": self._export_version,
                "work_stealing": self.work_stealing,
                "result_buffers": self.result_buffers,
                "reply_buffers": len(self._reply_buffers),
                "pipe_bytes_sent": 0 if pool is None else pool.bytes_sent,
                "pipe_bytes_received": (
                    0 if pool is None else pool.bytes_received
                ),
            }
