"""Exact global top-k from per-shard candidate state.

Correctness argument, once, for every sharded route:

* The library's :class:`~repro.core.topk.TopKAccumulator` offered nodes in
  ascending id order selects exactly the k best entries under the total
  order ``(-value, node id)`` — a *total* order, so the selection is
  deterministic and independent of how the node universe was split.
* Each shard returns its exact top-k **over its owned nodes** under that
  same order (worker scans offer ascending; bound-based pruning inside a
  shard only discards nodes that cannot reach the shard's own k-th value,
  which is >= the global k-th restricted to that shard).
* If a node is in the global top-k, then fewer than k nodes beat it
  *anywhere* — in particular within its own shard — so it appears in its
  shard's local top-k.  The union of local top-k lists therefore contains
  the global top-k, and merging is just re-selecting the k best under
  ``(-value, node)`` from ``num_shards * k`` candidates (the classic
  distributed top-k merge; only candidate lists ever cross the
  process boundary).

Rank-k *ties* are resolved by ascending node id — the canonical
ascending-scan order every in-process backend uses for its Base scans.
Bound-pruned routes (forward/backward) resolve boundary ties by their own
pruning order on any backend, so cross-backend tie identity is only
guaranteed for continuous scores (where exact rank-k ties do not occur);
this is the same caveat the in-process backends already carry.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.results import QueryStats
from repro.core.topk import TopKAccumulator

__all__ = ["merge_shard_entries", "merge_entry_buffers", "merge_counters"]


def merge_shard_entries(
    shard_entries: Iterable[Sequence[Tuple[int, float]]], k: int
) -> List[Tuple[int, float]]:
    """The k best ``(node, value)`` pairs of all shards, canonical order."""
    candidates: List[Tuple[int, float]] = []
    for entries in shard_entries:
        candidates.extend(entries)
    candidates.sort(key=lambda pair: pair[0])
    acc = TopKAccumulator(k)
    for node, value in candidates:
        acc.offer(node, value)
    return acc.entries()


def merge_entry_buffers(shard_entries: Iterable, k: int) -> List[Tuple[int, float]]:
    """:func:`merge_shard_entries` over mixed result carriers.

    Each element is either a plain ``[(node, value), ...]`` list (a reply
    that rode the pipe) or a float64 ``(n, 2)`` view into the shard's
    shared reply buffer (rows are ``[node, value]``).  Buffer views are
    read in place — the worker-to-parent transfer was the shared write
    itself, nothing was pickled — and only the ≤ k winning rows per shard
    are lifted back into Python tuples for the canonical ascending-node
    offer pass.  Node ids are exact in float64 up to 2**53, far beyond
    any in-memory graph here.
    """
    candidates: List[Tuple[int, float]] = []
    for entries in shard_entries:
        if hasattr(entries, "shape"):
            candidates.extend(
                (int(row[0]), float(row[1])) for row in entries
            )
        else:
            candidates.extend(entries)
    candidates.sort(key=lambda pair: pair[0])
    acc = TopKAccumulator(k)
    for node, value in candidates:
        acc.offer(node, value)
    return acc.entries()


def merge_counters(stats: QueryStats, counter_dicts: Iterable[Dict[str, int]]) -> None:
    """Sum per-shard traversal counters into one query's stats."""
    for counters in counter_dicts:
        stats.edges_scanned += counters.get("edges_scanned", 0)
        stats.nodes_visited += counters.get("nodes_visited", 0)
        stats.balls_expanded += counters.get("balls_expanded", 0)
        stats.nodes_evaluated += counters.get("nodes_evaluated", 0)
