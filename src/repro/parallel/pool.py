"""Persistent worker-process pool for the parallel backend.

A :class:`ShardWorkerPool` owns ``workers`` spawned processes running
:func:`repro.parallel.worker.worker_main`.  Design points:

* **Spawn, not fork.**  The serving layer runs worker *threads* holding
  locks; forking such a process is a documented deadlock trap.  The spawn
  start method gives every worker a clean interpreter — the startup cost
  is real and is exactly the fixed-cost term the planner and the engine's
  decline rule account for.  Workers are spawned lazily on first dispatch
  and stay warm (shared-memory attachments cached) until :meth:`close`.
* **One duplex pipe per worker, no shared queues.**  ``multiprocessing``
  queues serialize readers and writers through shared locks, and a worker
  killed *while holding one* — blocked in ``get`` (readers hold the read
  lock while waiting) or mid-``put`` in its feeder thread — takes the lock
  to its grave and deadlocks every sibling.  A ``Pipe`` per worker has a
  single writer and a single reader per direction, so worker death can
  poison nothing but its own channel, which the collector observes
  directly as EOF.  The parent multiplexes with
  :func:`multiprocessing.connection.wait`.
* **Crash recovery.**  Tasks are pure functions of shared state, so they
  are safe to re-issue.  If a worker dies mid-round (killed, OOM, bug),
  the collector sees its pipe close, replaces the dead process, and
  re-issues every task still outstanding under a fresh id; duplicate late
  results are ignored.  A round that cannot finish within ``timeout``
  raises :class:`~repro.errors.ParallelError` instead of hanging.
* **One round at a time.**  ``run()`` is serialized by a lock: concurrent
  queries queue here rather than interleaving result streams.  (The
  serving scheduler already provides cross-query concurrency; the pool's
  job is to spread *one* query's shards across cores.)
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional

from repro.errors import ParallelError, StaleShardError

__all__ = ["ShardWorkerPool"]

#: Default per-round IPC timeout (seconds); generous — it only bounds hangs.
DEFAULT_TIMEOUT = 120.0


class _Worker:
    """One spawned process plus the parent end of its duplex pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


class ShardWorkerPool:
    """A fixed-size pool of warm, spawn-started worker processes."""

    def __init__(
        self,
        workers: int,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        name: str = "repro-shard",
    ) -> None:
        if workers < 1:
            raise ParallelError(f"workers must be >= 1, got {workers}")
        import multiprocessing

        self.workers = workers
        self.timeout = timeout
        self.name = name
        self._mp = multiprocessing.get_context("spawn")
        self._members: List[_Worker] = []
        self._task_ids = itertools.count()
        self._spawned = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        self.respawns = 0

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether worker processes exist (they spawn on first dispatch)."""
        return bool(self._members)

    @property
    def alive_workers(self) -> int:
        """Currently running worker processes."""
        return sum(1 for m in self._members if m.process.is_alive())

    def _spawn_one(self) -> _Worker:
        from repro.parallel.worker import worker_main

        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=worker_main,
            args=(child_conn,),
            name=f"{self.name}-worker-{next(self._spawned)}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the child's copy is the only live one now
        return _Worker(process, parent_conn)

    def ensure_started(self) -> None:
        """Spawn (or respawn) processes until ``workers`` are alive."""
        with self._lock:
            self._ensure_started_locked()

    def _ensure_started_locked(self) -> None:
        if self._closed:
            raise ParallelError("worker pool has been closed")
        live = [m for m in self._members if m.process.is_alive()]
        if self._members and len(live) < len(self._members):
            self.respawns += len(self._members) - len(live)
            for member in self._members:
                if not member.process.is_alive():
                    member.conn.close()
        while len(live) < self.workers:
            live.append(self._spawn_one())
        self._members = live

    # ------------------------------------------------------------------
    def run(self, tasks: List[dict]) -> List[dict]:
        """Execute ``tasks`` across the pool; results in input order.

        Tasks are dealt round-robin onto the per-worker pipes.  Raises
        :class:`~repro.errors.StaleShardError` if any worker refused a task
        over an invalidated shared-memory export (the engine refreshes its
        exports and retries), and :class:`~repro.errors.ParallelError` on
        worker failure that re-spawning cannot cure or on timeout.
        """
        if not tasks:
            return []
        with self._lock:
            self._ensure_started_locked()
            return self._run_locked(tasks)

    def _dispatch(self, tasks: List[dict], positions: List[int]) -> Dict[int, int]:
        """Deal ``tasks[positions]`` round-robin; return task id -> position.

        A send that finds a worker's pipe already broken is skipped — the
        collector's death branch re-issues whatever never got out.
        """
        pending: Dict[int, int] = {}
        for slot, position in enumerate(positions):
            task_id = next(self._task_ids)
            pending[task_id] = position
            member = self._members[slot % len(self._members)]
            try:
                member.conn.send((task_id, tasks[position]))
            except (BrokenPipeError, OSError):
                pass  # collector notices the death and re-dispatches
        return pending

    def _run_locked(self, tasks: List[dict]) -> List[dict]:
        from multiprocessing.connection import wait

        results: List[Optional[dict]] = [None] * len(tasks)
        pending = self._dispatch(tasks, list(range(len(tasks))))
        deadline = time.monotonic() + self.timeout
        respawn_budget = 2 * self.workers
        while pending:
            ready = wait([m.conn for m in self._members], timeout=0.25)
            if time.monotonic() > deadline:
                raise ParallelError(
                    f"parallel round timed out after {self.timeout:.0f}s "
                    f"({len(pending)} of {len(tasks)} tasks outstanding)"
                )
            dead = False
            for conn in ready:
                try:
                    task_id, status, payload = conn.recv()
                except (EOFError, OSError):
                    dead = True  # this member's pipe closed under us
                    continue
                position = pending.pop(task_id, None)
                if position is None:
                    continue  # duplicate from a re-issued round
                if status == "stale":
                    raise StaleShardError(str(payload))
                if status == "error":
                    raise ParallelError(f"shard worker failed: {payload}")
                results[position] = payload
            if not pending:
                break
            if dead or self.alive_workers < len(self._members):
                # A worker died; its pipe died with it, so we cannot know
                # which of our tasks it swallowed.  Replace it and re-issue
                # everything still outstanding under fresh ids (stale
                # duplicates are dropped above).  Bounded: workers dying as
                # fast as they spawn (e.g. a __main__ that cannot be
                # re-imported under spawn) must surface as an error, not an
                # infinite respawn loop.
                respawn_budget -= max(
                    len(self._members) - self.alive_workers, 1
                )
                if respawn_budget < 0:
                    raise ParallelError(
                        "shard workers keep dying at startup; if this "
                        "process has no importable __main__ (interactive "
                        "stdin), the spawn start method cannot run "
                        "worker processes"
                    )
                self._ensure_started_locked()
                pending = self._dispatch(tasks, sorted(pending.values()))
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def close(self, *, join_timeout: float = 5.0) -> None:
        """Stop every worker (sentinel first, terminate stragglers)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for member in self._members:
                try:
                    member.conn.send(None)
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
            for member in self._members:
                member.process.join(timeout=join_timeout)
            for member in self._members:
                if member.process.is_alive():  # pragma: no cover - stuck worker
                    member.process.terminate()
                    member.process.join(timeout=1.0)
                member.conn.close()
            self._members = []

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
