"""Persistent worker-process pool for the parallel backend.

A :class:`ShardWorkerPool` owns ``workers`` spawned processes running
:func:`repro.parallel.worker.worker_main`.  Design points:

* **Spawn, not fork.**  The serving layer runs worker *threads* holding
  locks; forking such a process is a documented deadlock trap.  The spawn
  start method gives every worker a clean interpreter — the startup cost
  is real and is exactly the fixed-cost term the planner and the engine's
  decline rule account for.  Workers are spawned lazily on first dispatch
  and stay warm (shared-memory attachments cached) until :meth:`close`.
* **One duplex pipe per worker, no shared queues.**  ``multiprocessing``
  queues serialize readers and writers through shared locks, and a worker
  killed *while holding one* — blocked in ``get`` (readers hold the read
  lock while waiting) or mid-``put`` in its feeder thread — takes the lock
  to its grave and deadlocks every sibling.  A ``Pipe`` per worker has a
  single writer and a single reader per direction, so worker death can
  poison nothing but its own channel, which the collector observes
  directly as EOF.  The parent multiplexes with
  :func:`multiprocessing.connection.wait`.
* **Crash recovery.**  Tasks are pure functions of shared state, so they
  are safe to re-issue.  If a worker dies mid-round (killed, OOM, bug),
  the collector sees its pipe close, replaces the dead process, and
  re-issues every task still outstanding under a fresh id; duplicate late
  results are ignored.  A re-issued task additionally has its shared
  reply-buffer descriptor stripped (``"reply": None``): the original
  issue may still be running on a straggler that writes the buffer, and
  answering the re-issue over the pipe is what guarantees the two
  writers can never interleave in shared memory.  A round that cannot
  finish within ``timeout`` raises :class:`~repro.errors.ParallelError`
  instead of hanging.
* **Metered, explicitly framed IPC.**  The parent pickles task messages
  itself and moves raw frames with ``send_bytes``/``recv_bytes`` (the
  worker's plain ``Connection.send``/``recv`` speaks the same wire
  format), so every byte crossing a pipe is counted in ``bytes_sent`` /
  ``bytes_received``.  The counters are what the shared-reply-buffer
  optimization is benchmarked against.
* **Two dispatch modes.**  The default deals the round's tasks
  round-robin up front.  ``run(tasks, dynamic=True)`` enables
  work-stealing: one task is primed per worker and each completion pulls
  the next off the backlog, so when the engine splits a skewed shard
  into chunks, the heavy shard's tail drains onto idle siblings instead
  of serializing on its owner.
* **One round at a time.**  ``run()`` is serialized by a lock: concurrent
  queries queue here rather than interleaving result streams.  (The
  serving scheduler already provides cross-query concurrency; the pool's
  job is to spread *one* query's shards across cores.)
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Set

from repro.errors import FaultInjectedError, ParallelError, StaleShardError
from repro.faults import fault_point

__all__ = ["ShardWorkerPool"]

#: Default per-round IPC timeout (seconds); generous — it only bounds hangs.
DEFAULT_TIMEOUT = 120.0


class _Worker:
    """One spawned process plus the parent end of its duplex pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


class ShardWorkerPool:
    """A fixed-size pool of warm, spawn-started worker processes."""

    def __init__(
        self,
        workers: int,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        name: str = "repro-shard",
    ) -> None:
        if workers < 1:
            raise ParallelError(f"workers must be >= 1, got {workers}")
        import multiprocessing

        self.workers = workers
        self.timeout = timeout
        self.name = name
        self._mp = multiprocessing.get_context("spawn")
        self._members: List[_Worker] = []
        self._task_ids = itertools.count()
        self._spawned = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        self.respawns = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.last_run_bytes_sent = 0
        self.last_run_bytes_received = 0
        self.last_run_respawned = False

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether worker processes exist (they spawn on first dispatch)."""
        return bool(self._members)

    @property
    def alive_workers(self) -> int:
        """Currently running worker processes."""
        return sum(1 for m in self._members if m.process.is_alive())

    def _spawn_one(self) -> _Worker:
        from repro.parallel.worker import worker_main

        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=worker_main,
            args=(child_conn,),
            name=f"{self.name}-worker-{next(self._spawned)}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the child's copy is the only live one now
        return _Worker(process, parent_conn)

    def ensure_started(self) -> None:
        """Spawn (or respawn) processes until ``workers`` are alive."""
        with self._lock:
            self._ensure_started_locked()

    def _ensure_started_locked(self) -> None:
        if self._closed:
            raise ParallelError("worker pool has been closed")
        live = [m for m in self._members if m.process.is_alive()]
        if self._members and len(live) < len(self._members):
            self.respawns += len(self._members) - len(live)
            for member in self._members:
                if not member.process.is_alive():
                    member.conn.close()
        while len(live) < self.workers:
            live.append(self._spawn_one())
        self._members = live

    # ------------------------------------------------------------------
    def run(self, tasks: List[dict], *, dynamic: bool = False) -> List[dict]:
        """Execute ``tasks`` across the pool; results in input order.

        The default deals tasks round-robin onto the per-worker pipes;
        ``dynamic=True`` primes one task per worker and feeds the rest to
        whichever worker finishes first (work-stealing).  Raises
        :class:`~repro.errors.StaleShardError` if any worker refused a task
        over an invalidated shared-memory export (the engine refreshes its
        exports and retries), and :class:`~repro.errors.ParallelError` on
        worker failure that re-spawning cannot cure or on timeout.
        """
        if not tasks:
            return []
        with self._lock:
            self._ensure_started_locked()
            self.last_run_respawned = False
            sent_before = self.bytes_sent
            received_before = self.bytes_received
            try:
                return self._run_locked(tasks, dynamic)
            finally:
                self.last_run_bytes_sent = self.bytes_sent - sent_before
                self.last_run_bytes_received = (
                    self.bytes_received - received_before
                )

    def _issue(
        self,
        slot: int,
        tasks: List[dict],
        position: int,
        pending: Dict[int, int],
        stripped: Set[int],
    ) -> None:
        """Send ``tasks[position]`` to worker ``slot`` under a fresh id.

        The parent pickles the frame itself so the pipe traffic is
        countable.  A send that finds the worker's pipe already broken is
        skipped — the collector's death branch re-issues whatever never
        got out.  Positions in ``stripped`` were in flight when a worker
        died: an earlier issue may still be writing the shared reply
        buffer on a straggler, so the re-issue answers over the pipe.
        """
        task_id = next(self._task_ids)
        pending[task_id] = position
        task = tasks[position]
        if position in stripped and task.get("reply") is not None:
            task = dict(task)
            task["reply"] = None
        frame = pickle.dumps((task_id, task), protocol=pickle.HIGHEST_PROTOCOL)
        member = self._members[slot % len(self._members)]
        try:
            fault_point(
                "parallel.pipe.send",
                worker=slot % len(self._members),
                position=position,
            )
        except FaultInjectedError:
            # An injected transient send hiccup; the send below is its
            # retransmission (a swallowed frame would stall the round, so
            # the hook may delay or crash but never silently drop).
            pass
        try:
            member.conn.send_bytes(frame)
            self.bytes_sent += len(frame)
        except (BrokenPipeError, OSError):
            pass  # collector notices the death and re-dispatches

    def _run_locked(self, tasks: List[dict], dynamic: bool) -> List[dict]:
        from multiprocessing.connection import wait

        results: List[Optional[dict]] = [None] * len(tasks)
        pending: Dict[int, int] = {}
        stripped: Set[int] = set()
        backlog: "deque[int]" = deque()
        if dynamic and len(tasks) > len(self._members):
            # Work-stealing: one task in flight per worker, the rest fed
            # on completion, so a heavy chunk's siblings drain the backlog.
            backlog.extend(range(len(tasks)))
            for slot in range(len(self._members)):
                if not backlog:
                    break
                self._issue(slot, tasks, backlog.popleft(), pending, stripped)
        else:
            for position in range(len(tasks)):
                self._issue(position, tasks, position, pending, stripped)
        deadline = time.monotonic() + self.timeout
        respawn_budget = 2 * self.workers
        # Bounded tolerance for typed transient task failures (today only
        # injected faults reply "transient"): re-issue, but a worker set
        # that only ever fails must still surface as a ParallelError.
        transient_budget = 3 * len(tasks) + 4
        while pending or backlog:
            slot_of = {
                id(m.conn): slot for slot, m in enumerate(self._members)
            }
            ready = wait([m.conn for m in self._members], timeout=0.25)
            if time.monotonic() > deadline:
                raise ParallelError(
                    f"parallel round timed out after {self.timeout:.0f}s "
                    f"({len(pending) + len(backlog)} of {len(tasks)} "
                    "tasks outstanding)"
                )
            dead = False
            for conn in ready:
                try:
                    fault_point(
                        "parallel.reply.recv", worker=slot_of.get(id(conn))
                    )
                    frame = conn.recv_bytes()
                except FaultInjectedError:
                    # Injected lost-reply: fall into the death branch so
                    # outstanding work is re-issued; the reply still in
                    # the pipe drains later as a dropped duplicate.
                    dead = True
                    continue
                except (EOFError, OSError):
                    dead = True  # this member's pipe closed under us
                    continue
                self.bytes_received += len(frame)
                task_id, status, payload = pickle.loads(frame)
                position = pending.pop(task_id, None)
                if position is not None:
                    if status == "stale":
                        raise StaleShardError(str(payload))
                    if status == "transient":
                        # Typed retryable failure: the task never ran, so
                        # its reply buffer is untouched — re-queue as-is.
                        transient_budget -= 1
                        if transient_budget < 0:
                            raise ParallelError(
                                "parallel round exhausted its transient-"
                                f"failure budget: {payload}"
                            )
                        backlog.append(position)
                    elif status == "error":
                        raise ParallelError(f"shard worker failed: {payload}")
                    else:
                        results[position] = payload
                # Any reply (even a duplicate from a re-issued round) means
                # this worker is idle — feed it the next backlog task.
                if backlog:
                    self._issue(
                        slot_of[id(conn)],
                        tasks,
                        backlog.popleft(),
                        pending,
                        stripped,
                    )
            if not pending and not backlog:
                break
            if dead or self.alive_workers < len(self._members):
                # A worker died; its pipe died with it, so we cannot know
                # which of our tasks it swallowed.  Replace it and re-issue
                # everything still outstanding under fresh ids (stale
                # duplicates are dropped above).  Bounded: workers dying as
                # fast as they spawn (e.g. a __main__ that cannot be
                # re-imported under spawn) must surface as an error, not an
                # infinite respawn loop.
                respawn_budget -= max(
                    len(self._members) - self.alive_workers, 1
                )
                if respawn_budget < 0:
                    raise ParallelError(
                        "shard workers keep dying at startup; if this "
                        "process has no importable __main__ (interactive "
                        "stdin), the spawn start method cannot run "
                        "worker processes"
                    )
                self._ensure_started_locked()
                self.last_run_respawned = True
                outstanding = sorted(pending.values())
                stripped.update(outstanding)
                pending.clear()
                # Re-prime: the swallowed tasks first (they block the
                # round), then the untouched backlog, fed on completion.
                requeue: "deque[int]" = deque(outstanding)
                requeue.extend(backlog)
                backlog = requeue
                for slot in range(len(self._members)):
                    if not backlog:
                        break
                    self._issue(
                        slot, tasks, backlog.popleft(), pending, stripped
                    )
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def close(self, *, join_timeout: float = 5.0) -> None:
        """Stop every worker (sentinel first, terminate stragglers)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for member in self._members:
                try:
                    member.conn.send(None)
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
            for member in self._members:
                member.process.join(timeout=join_timeout)
            for member in self._members:
                if member.process.is_alive():  # pragma: no cover - stuck worker
                    member.process.terminate()
                    member.process.join(timeout=1.0)
                member.conn.close()
            self._members = []

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
