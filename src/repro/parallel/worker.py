"""Worker-process side of the parallel backend.

``worker_main`` is the entry point each pool process runs: a loop pulling
``(task_id, payload)`` messages off the task queue, dispatching to one of
the partition-aware kernels below, and pushing ``(task_id, status, result)``
back.  Workers are *warm*: shared-memory attachments (the CSR export, score
vectors, owned-node arrays, bound arrays) are cached across tasks keyed by
segment name — segment names are unique per export, so a re-export after a
graph mutation shows up as new names and the stale attachments simply age
out of the cache.  Before serving, a worker additionally checks the CSR
export's live version stamp against the version its task named, so a task
raced by a mutation is answered with ``"stale"`` (the engine refreshes and
retries) rather than with numbers from a dead graph.

Every kernel reuses the in-process numpy machinery —
:func:`repro.graph.csr.batched_hop_balls`,
:func:`repro.core.vectorized.aggregate_ball_segments`, the
threshold-gated ``_offer_block`` — over the worker's *owned* centers only,
which is what makes a shard's answer exact for its members and the merged
answer exact globally (see :mod:`repro.parallel.merge`).  When a task
carries ``"native": True`` and this worker's interpreter can load the
compiled kernel tier (:mod:`repro.native.kernels` with numba present),
the per-block ball evaluation runs on the jitted stamp-BFS kernels
instead — bit-identical values (the kernels accumulate in bincount
order), just faster.  The compiled gate is deliberately stricter than
``native_available()``: interpreted kernels are a parity-testing device
and would be slower than numpy here, so workers only switch when numba
actually compiled (or under ``REPRO_PARALLEL_NATIVE_INTERPRETED``, the
wiring-test escape hatch).

Results travel back one of two ways.  By default a task's entries ride
the reply pipe as pickled tuples.  A task carrying a ``"reply"``
descriptor instead writes its ``(node, value)`` rows into the named
shared-memory buffer the engine preallocated for that task slot and
replies with just the row count — the reply shrinks to a counters dict
regardless of ``k``, which is the measured pipe-byte win.
"""

from __future__ import annotations

import os
import traceback
from typing import Dict, List

from repro.aggregates.functions import AggregateKind
from repro.core.deadline import check_deadline
from repro.core.topk import TopKAccumulator
from repro.errors import FaultInjectedError, StaleShardError
from repro.faults import fault_point
from repro.graph.csr import AttachedArray, AttachedCSR

__all__ = ["worker_main"]

#: Cached attachments per worker beyond which the oldest are unmapped.
_ATTACH_CACHE_LIMIT = 64


class _AttachmentCache:
    """Name-keyed cache of shared-memory attachments (insertion-ordered).

    Evictions never unmap immediately: the evicted attachment may back a
    numpy view the *currently running* task still reads (a wide batch can
    attach more segments than the cache limit in one task), and unmapping
    under a live view is a use-after-unmap crash.  Evicted attachments are
    retired to a side list that :meth:`flush_retired` closes between
    tasks, when no kernel is executing.
    """

    def __init__(self) -> None:
        self._arrays: Dict[str, AttachedArray] = {}
        self._csrs: Dict[str, AttachedCSR] = {}
        self._retired: List = []

    def array(self, meta: dict):
        name = meta["name"]
        hit = self._arrays.get(name)
        if hit is None:
            hit = AttachedArray.attach(meta)
            self._arrays[name] = hit
            self._evict(self._arrays)
        return hit.array

    def csr(self, meta: dict) -> AttachedCSR:
        name = meta["indptr"]["name"]
        hit = self._csrs.get(name)
        if hit is None:
            hit = AttachedCSR.attach(meta)
            self._csrs[name] = hit
            self._evict(self._csrs)
        if not hit.fresh():
            raise StaleShardError(
                f"shared CSR version {hit.version} was invalidated by the owner"
            )
        return hit

    def _evict(self, cache: dict) -> None:
        while len(cache) > _ATTACH_CACHE_LIMIT:
            oldest = next(iter(cache))
            self._retired.append(cache.pop(oldest))

    def flush_retired(self) -> None:
        """Unmap evicted attachments (call only between tasks)."""
        for attachment in self._retired:
            attachment.close()
        self._retired = []

    def close(self) -> None:
        self.flush_retired()
        for attachment in list(self._arrays.values()):
            attachment.close()
        for attachment in list(self._csrs.values()):
            attachment.close()
        self._arrays.clear()
        self._csrs.clear()


def _fold(np, scores, aggregate: str):
    """(folded scores, effective kind): COUNT folds to its 0/1 indicator."""
    kind = AggregateKind(aggregate)
    if kind is AggregateKind.COUNT:
        return np.where(scores > 0.0, 1.0, 0.0), AggregateKind.SUM
    return scores, kind


# ----------------------------------------------------------------------
# Compiled kernel tier (optional, per-task opt-in)
# ----------------------------------------------------------------------
_NATIVE_KERNELS = None  # None = unprobed, False = unavailable, module = ready


def _native_kernels():
    """The jitted kernel module, or ``None`` when this worker cannot win.

    Only the *compiled* tier is worth switching to — the interpreted
    fallback exists for parity testing and loses to numpy — so the probe
    requires numba to have actually compiled, unless the
    ``REPRO_PARALLEL_NATIVE_INTERPRETED`` escape hatch asks to exercise
    the wiring anyway.
    """
    global _NATIVE_KERNELS
    if _NATIVE_KERNELS is None:
        _NATIVE_KERNELS = False
        try:
            from repro.native import kernels

            if kernels.KERNEL_MODE == "compiled" or os.environ.get(
                "REPRO_PARALLEL_NATIVE_INTERPRETED"
            ):
                from repro.native.compile_cache import ensure_warm

                ensure_warm()
                _NATIVE_KERNELS = kernels
        except Exception:  # pragma: no cover - partial numba installs
            _NATIVE_KERNELS = False
    return _NATIVE_KERNELS or None


_KIND_CODES = {
    AggregateKind.SUM: 0,
    AggregateKind.AVG: 1,
    AggregateKind.MAX: 2,
    AggregateKind.MIN: 3,
}


class _NativeScratch:
    """Per-worker stamp/member scratch reused across tasks (one graph size)."""

    __slots__ = ("n", "gen", "stamp", "member_buf", "dist_buf", "scaled_buf")

    def __init__(self) -> None:
        self.n = -1
        self.gen = 0
        self.stamp = None
        self.member_buf = None
        self.dist_buf = None
        self.scaled_buf = None

    def take(self, np, n: int, count: int) -> int:
        """Reserve ``count`` fresh generations; returns the first one."""
        if n != self.n:
            self.stamp = np.full(n, -1, dtype=np.int64)
            self.member_buf = np.empty(n, dtype=np.int64)
            self.dist_buf = None
            self.scaled_buf = None
            self.n = n
            self.gen = 0
        gen0 = self.gen + 1
        self.gen += count
        return gen0

    def distance_buffers(self, np, n: int):
        if self.dist_buf is None:
            self.dist_buf = np.empty(n, dtype=np.int64)
            self.scaled_buf = np.empty(n, dtype=np.int64)
        return self.dist_buf, self.scaled_buf


_SCRATCH = _NativeScratch()


def _native_eval(np, kernels, csr, chunk, folded, kind, hops, include_self, counters):
    """One block's aggregates on the jitted kernel (numpy-order identical)."""
    count = int(chunk.size)
    gen0 = _SCRATCH.take(np, int(csr.num_nodes), count)
    values = np.empty(count, dtype=np.float64)
    sizes = np.empty(count, dtype=np.int64)
    edges, pairs = kernels.aggregate_blocks(
        csr.indptr,
        csr.indices,
        folded,
        np.ascontiguousarray(chunk, dtype=np.int64),
        hops,
        include_self,
        _KIND_CODES[kind],
        _SCRATCH.stamp,
        gen0,
        _SCRATCH.member_buf,
        values,
        sizes,
    )
    counters["edges_scanned"] += int(edges)
    counters["nodes_visited"] += int(pairs) + (0 if include_self else count)
    counters["balls_expanded"] += count
    return values


def _eval_block(np, task, csr, chunk, folded, kind, counters, native):
    """Exact aggregates of one center block: jitted when offered, else numpy."""
    from repro.core.vectorized import aggregate_ball_segments

    hops = task["hops"]
    include_self = task["include_self"]
    if native is not None:
        return _native_eval(
            np, native, csr, chunk, folded, kind, hops, include_self, counters
        )
    owners, members = _expand_block(np, csr, chunk, hops, include_self, counters)
    return aggregate_ball_segments(
        np, kind, owners, folded[members], int(chunk.size)
    )


def _ship_pairs(np, cache, task, out: dict, pairs, key: str) -> dict:
    """Attach ``(node, value)`` pairs to a reply, via shared buffer if offered.

    With a usable ``"reply"`` descriptor the pairs land in the engine's
    preallocated shared segment as float64 rows and only their count
    crosses the pipe; otherwise (no buffer, stripped re-issue, or an
    overflow that should never happen for ``k``-bounded results) they ride
    the pipe as before.
    """
    reply = task.get("reply")
    if reply is None or len(pairs) > reply["capacity"]:
        out[key] = pairs
        return out
    buffer = cache.array(reply["buffer"])
    n = len(pairs)
    if n:
        buffer[:n] = np.asarray(pairs, dtype=np.float64)
    out[key + "_n"] = n
    return out


def _counters() -> Dict[str, int]:
    return {
        "edges_scanned": 0,
        "nodes_visited": 0,
        "balls_expanded": 0,
        "nodes_evaluated": 0,
    }


def _expand_block(np, csr, centers, hops: int, include_self: bool, counters):
    from repro.graph.csr import batched_hop_balls

    owners, members, edges = batched_hop_balls(
        csr, centers, hops, include_self=include_self
    )
    count = int(centers.size)
    counters["edges_scanned"] += edges
    counters["nodes_visited"] += int(members.size) + (0 if include_self else count)
    counters["balls_expanded"] += count
    return owners, members


def _scan_task(np, cache: _AttachmentCache, task: dict) -> dict:
    """Exact shard top-k over owned centers, optionally bound-pruned.

    Without ``bounds`` this is the sharded Base scan: centers ascending,
    every aggregate kind.  With ``bounds`` (per-node static upper bounds,
    the LONA-Forward static-pruning arm) centers are visited in descending
    bound order and the scan stops once no unseen owned node can beat the
    shard's k-th value — the per-shard analogue of Algorithm 1's
    threshold test.

    ``lo``/``hi`` (optional) select a slice of the owned array — the
    engine's work-stealing chunks name sub-ranges of the already-exported
    shard instead of shipping center lists per chunk.
    """
    from repro.core.vectorized import _offer_block

    attached = cache.csr(task["csr"])
    csr = attached.csr
    scores = cache.array(task["scores"])
    if task.get("centers") is not None:
        centers = np.asarray(task["centers"], dtype=np.int64)
    else:
        centers = cache.array(task["owned"])
        if "hi" in task:
            centers = centers[task.get("lo", 0) : task["hi"]]
    folded, kind = _fold(np, scores, task["aggregate"])
    block = task["block"]
    counters = _counters()
    native = _native_kernels() if task.get("native") else None
    acc = TopKAccumulator(task["k"])
    bounds_meta = task.get("bounds")
    ordered_bounds = None
    if bounds_meta is not None:
        bounds = cache.array(bounds_meta)
        order = np.lexsort((centers, -bounds[centers]))
        centers = centers[order]
        ordered_bounds = bounds[centers]
    evaluated = 0
    pruned = 0
    for lo in range(0, int(centers.size), block):
        check_deadline()  # block boundary (live under a cluster task scope)
        if (
            ordered_bounds is not None
            and acc.is_full
            and float(ordered_bounds[lo]) <= acc.threshold
        ):
            pruned = int(centers.size) - evaluated
            break
        chunk = centers[lo : lo + block]
        values = _eval_block(np, task, csr, chunk, folded, kind, counters, native)
        _offer_block(np, acc, chunk, values)
        evaluated += int(chunk.size)
    counters["nodes_evaluated"] = evaluated
    out = {
        "counters": counters,
        "evaluated": evaluated,
        "pruned": pruned,
    }
    return _ship_pairs(np, cache, task, out, acc.entries(), "entries")


def _batch_task(np, cache: _AttachmentCache, task: dict) -> dict:
    """Fused multi-query shared scan over the shard's owned centers.

    One ball expansion per node block; every query's values come out of a
    single ``np.add.reduceat`` over the (queries x members) score matrix —
    the same fusion as :func:`repro.core.batch._shared_scan_numpy`, run on
    one shard's slice of the node universe.
    """
    from repro.core.vectorized import _offer_block, segment_starts

    attached = cache.csr(task["csr"])
    csr = attached.csr
    centers = cache.array(task["owned"])
    rows = []
    avg_flags = []
    for meta, aggregate in task["scores_list"]:
        folded, kind = _fold(np, cache.array(meta), aggregate)
        rows.append(folded)
        avg_flags.append(kind is AggregateKind.AVG)
    matrix = np.vstack(rows)
    avg_rows = np.asarray(avg_flags, dtype=bool)
    accumulators = [TopKAccumulator(k) for k in task["ks"]]
    hops = task["hops"]
    include_self = task["include_self"]
    block = task["block"]
    counters = _counters()
    for lo in range(0, int(centers.size), block):
        check_deadline()  # block boundary (live under a cluster task scope)
        chunk = centers[lo : lo + block]
        owners, members = _expand_block(np, csr, chunk, hops, include_self, counters)
        count = int(chunk.size)
        values = np.zeros((matrix.shape[0], count), dtype=np.float64)
        if members.size:
            present, starts = segment_starts(np, owners)
            values[:, present] = np.add.reduceat(matrix[:, members], starts, axis=1)
        if avg_rows.any():
            sizes = np.maximum(np.bincount(owners, minlength=count), 1)
            values[avg_rows] = values[avg_rows] / sizes
        for i, acc in enumerate(accumulators):
            _offer_block(np, acc, chunk, values[i])
    counters["nodes_evaluated"] = int(centers.size)
    return {
        "entries_list": [acc.entries() for acc in accumulators],
        "counters": counters,
    }


def _distribute_task(np, cache: _AttachmentCache, task: dict) -> dict:
    """LONA-Backward phase 1 for one shard: push owned high scores outward.

    The shard distributes exactly its owned nodes with ``f(u) >= gamma``
    over the (reversed, for directed graphs) shared CSR, accumulating the
    partial-sum and coverage-count arrays for *all* n nodes.  The engine
    sums these per-shard states — addition is order-independent on the
    count side and reassociates only the float partials (values are
    verified exactly afterwards, so bound soundness is all that matters).
    """
    attached = cache.csr(task["csr"])
    csr = attached.csr
    scores, _kind = _fold(np, cache.array(task["scores"]), task["aggregate"])
    owned = cache.array(task["owned"])
    gamma = task["gamma"]
    hops = task["hops"]
    include_self = task["include_self"]
    block = task["block"]
    n = csr.num_nodes
    mine = owned[(scores[owned] > 0.0) & (scores[owned] >= gamma)]
    partial = np.zeros(n, dtype=np.float64)
    covered = np.zeros(n, dtype=np.int64)
    counters = _counters()
    pushes = 0
    for lo in range(0, int(mine.size), block):
        check_deadline()  # block boundary (live under a cluster task scope)
        chunk = mine[lo : lo + block]
        owners, members = _expand_block(np, csr, chunk, hops, include_self, counters)
        ball_sizes = np.bincount(owners, minlength=chunk.size)
        partial += np.bincount(
            members, weights=np.repeat(scores[chunk], ball_sizes), minlength=n
        )
        covered += np.bincount(members, minlength=n)
        pushes += int(members.size)
    # Ship only the touched slice: the pipe payload then scales with the
    # distribution's actual reach, not with n (a sparse gamma cut on a
    # million-node graph touches a fraction of it).
    touched = np.nonzero(covered)[0]
    return {
        "touched": touched,
        "partial": partial[touched],
        "covered": covered[touched],
        "pushes": pushes,
        "distributed": int(mine.size),
        "counters": counters,
    }


def _verify_task(np, cache: _AttachmentCache, task: dict) -> dict:
    """Exact aggregates of an explicit candidate set (TA verification)."""
    attached = cache.csr(task["csr"])
    csr = attached.csr
    scores = cache.array(task["scores"])
    centers = np.asarray(task["centers"], dtype=np.int64)
    folded, kind = _fold(np, scores, task["aggregate"])
    block = task["block"]
    counters = _counters()
    native = _native_kernels() if task.get("native") else None
    nodes: List[int] = []
    values: List[float] = []
    for lo in range(0, int(centers.size), block):
        check_deadline()  # block boundary (live under a cluster task scope)
        chunk = centers[lo : lo + block]
        chunk_values = _eval_block(np, task, csr, chunk, folded, kind, counters, native)
        nodes.extend(int(c) for c in chunk)
        values.extend(float(v) for v in chunk_values)
    counters["nodes_evaluated"] = int(centers.size)
    return _ship_pairs(
        np, cache, task, {"counters": counters}, list(zip(nodes, values)), "pairs"
    )


def _weighted_task(np, cache: _AttachmentCache, task: dict) -> dict:
    """Distance-weighted SUM over owned centers (the paper's footnote 1).

    The decay profile arrives pre-evaluated as one weight per hop distance
    (callables do not cross process boundaries); each block expands with
    the distance-labeled kernel and reduces ``w[d] * f(member)`` per owner.
    """
    from repro.graph.csr import batched_hop_balls_with_distances

    attached = cache.csr(task["csr"])
    csr = attached.csr
    scores = cache.array(task["scores"])
    centers = cache.array(task["owned"])
    if "hi" in task:
        centers = centers[task.get("lo", 0) : task["hi"]]
    weights = np.asarray(task["weights"], dtype=np.float64)
    hops = task["hops"]
    include_self = task["include_self"]
    block = task["block"]
    counters = _counters()
    native = _native_kernels() if task.get("native") else None
    acc = TopKAccumulator(task["k"])
    from repro.core.vectorized import _offer_block

    for lo in range(0, int(centers.size), block):
        check_deadline()  # block boundary (live under a cluster task scope)
        chunk = centers[lo : lo + block]
        count = int(chunk.size)
        if native is not None:
            gen0 = _SCRATCH.take(np, int(csr.num_nodes), count)
            dist_buf, scaled_buf = _SCRATCH.distance_buffers(
                np, int(csr.num_nodes)
            )
            values = np.empty(count, dtype=np.float64)
            sizes = np.empty(count, dtype=np.int64)
            edges, pairs = native.distance_aggregate_blocks(
                csr.indptr,
                csr.indices,
                scores,
                weights,
                np.ascontiguousarray(chunk, dtype=np.int64),
                hops,
                include_self,
                _SCRATCH.stamp,
                gen0,
                _SCRATCH.member_buf,
                dist_buf,
                scaled_buf,
                values,
                sizes,
            )
            counters["edges_scanned"] += int(edges)
            counters["nodes_visited"] += int(pairs) + (
                0 if include_self else count
            )
            counters["balls_expanded"] += count
        else:
            owners, members, dists, edges = batched_hop_balls_with_distances(
                csr, chunk, hops, include_self=include_self
            )
            counters["edges_scanned"] += edges
            counters["nodes_visited"] += int(members.size) + (
                0 if include_self else count
            )
            counters["balls_expanded"] += count
            values = np.bincount(
                owners, weights=weights[dists] * scores[members], minlength=count
            )
        _offer_block(np, acc, chunk, values)
    counters["nodes_evaluated"] = int(centers.size)
    out = {
        "counters": counters,
        "evaluated": int(centers.size),
        "pruned": 0,
    }
    return _ship_pairs(np, cache, task, out, acc.entries(), "entries")


_HANDLERS = {
    "scan": _scan_task,
    "batch": _batch_task,
    "distribute": _distribute_task,
    "verify": _verify_task,
    "weighted": _weighted_task,
}


def worker_main(conn) -> None:
    """Pool-process entry point: serve tasks off the duplex pipe.

    ``conn`` is this worker's private end of a :func:`multiprocessing.Pipe`
    — it is the sole reader of tasks and sole writer of results, so no
    lock is ever shared with the parent or with sibling workers (a killed
    worker closes its own pipe and poisons nothing else).  Exits on the
    ``None`` sentinel or when the parent's end closes.
    """
    import numpy as np

    cache = _AttachmentCache()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):  # parent gone
                break
            if message is None:
                break
            task_id, payload = message
            try:
                fault_point("parallel.worker.task", kind=payload.get("kind"))
                handler = _HANDLERS[payload["kind"]]
                conn.send((task_id, "ok", handler(np, cache, payload)))
            except StaleShardError as exc:
                conn.send((task_id, "stale", str(exc)))
            except FaultInjectedError as exc:
                # Typed retryable failure, raised before the handler ran:
                # the pool re-queues the position (bounded budget).
                conn.send((task_id, "transient", str(exc)))
            except BaseException as exc:  # report, keep serving
                conn.send(
                    (
                        task_id,
                        "error",
                        f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
                    )
                )
            finally:
                # Between tasks: no kernel holds views into evicted
                # segments anymore (results carry fresh arrays only).
                cache.flush_retired()
    finally:
        cache.close()
        conn.close()
