"""Process-parallel execution over shared-memory CSR shards.

The paper closes with "we are currently developing an infrastructure to
partition large networks into subnetworks and distribute them into multiple
machines"; this package is the single-machine, multi-core realization of
that plan.  The graph's flat CSR arrays (and every score vector touched)
are exported once into POSIX shared memory (:class:`~repro.graph.csr.SharedCSR`),
a :func:`~repro.distributed.partition.bfs_partition` assigns every node an
owning *shard* so h-hop balls mostly stay shard-local, and a persistent
pool of worker processes — each warm-attached to the same physical pages —
evaluates its shard's candidates with the numpy kernels.  Per-shard top-k
candidate/bound state is merged into the exact global answer; LONA-Backward
additionally runs a sharded distribution phase and TA-style verification
rounds that dispatch frontier candidates back to their owning shards.

Selected with ``backend="parallel"`` anywhere a backend is accepted
(builder, CLI, ``QueryRequest``) or with ``Network.service(processes=True)``;
plugged in behind :func:`repro.core.executor.execute`, so the query surface
is untouched.  The engine declines graphs too small to amortize the
process/IPC fixed cost and runs them on the in-process numpy backend
instead (see :data:`~repro.parallel.engine.DEFAULT_MIN_NODES`).
"""

from repro.parallel.engine import DEFAULT_MIN_NODES, ParallelEngine
from repro.parallel.pool import ShardWorkerPool
from repro.parallel.shards import ShardPlan, build_shard_plan

__all__ = [
    "DEFAULT_MIN_NODES",
    "ParallelEngine",
    "ShardPlan",
    "ShardWorkerPool",
    "build_shard_plan",
]
