"""Shard construction: locality-aware node ownership for the worker pool.

A *shard* is a set of nodes one worker process owns: the worker evaluates
exactly those nodes' aggregates (their balls may — and do — reach into
other shards; those reads are plain shared-memory loads of non-owned CSR
rows, so no halo copies or message rounds are needed for expansion).  The
builder reuses :func:`repro.distributed.partition.bfs_partition`, the same
region-growing partitioner the simulated distributed engine validates:
h-hop balls then mostly stay within the owner's region, which keeps each
worker's touched page set — and therefore its cache footprint — close to
``1/num_shards`` of the graph even though every worker maps the whole CSR.

The plan's owned-node arrays are themselves exported to shared memory by
the engine, so a task message names a shard by descriptor instead of
shipping a node list per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.distributed.partition import Partition, bfs_partition, hash_partition
from repro.errors import InvalidParameterError
from repro.graph.graph import Graph

__all__ = ["ShardPlan", "build_shard_plan"]

#: Recognized shard partitioners (``bfs`` is the locality-aware default).
SHARD_PARTITIONERS = ("bfs", "hash")


@dataclass(frozen=True)
class ShardPlan:
    """Node ownership for ``num_shards`` workers over one graph version.

    ``owned[s]`` is shard ``s``'s sorted int64 node array; ``partition`` is
    the underlying assignment (used to route verification candidates back
    to their owning shard).
    """

    partition: Partition
    owned: Tuple[object, ...]  # numpy int64 arrays, one per shard
    version: Optional[int]

    @property
    def num_shards(self) -> int:
        return len(self.owned)

    def owner_of(self, node: int) -> int:
        """The shard owning ``node``."""
        return self.partition.part_of(node)

    def sizes(self) -> List[int]:
        """Owned-node count per shard."""
        return [int(arr.size) for arr in self.owned]


def build_shard_plan(
    graph: Graph,
    num_shards: int,
    *,
    partitioner: str = "bfs",
    seed: Optional[int] = 2010,
) -> ShardPlan:
    """Partition ``graph`` into ``num_shards`` locality-aware shards.

    ``bfs`` (default) grows balanced regions so neighborhoods stay together;
    ``hash`` is the structure-oblivious baseline (useful to measure how much
    locality buys).  Determinism: the default seed is fixed so repeated
    sessions over one graph build identical shards.
    """
    import numpy as np

    if num_shards < 1:
        raise InvalidParameterError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    if partitioner not in SHARD_PARTITIONERS:
        raise InvalidParameterError(
            f"unknown shard partitioner {partitioner!r}; "
            f"expected one of {SHARD_PARTITIONERS}"
        )
    if partitioner == "hash":
        partition = hash_partition(graph, num_shards)
    else:
        partition = bfs_partition(graph, num_shards, seed=seed)
    owned = tuple(
        np.asarray(partition.members(shard), dtype=np.int64)
        for shard in range(num_shards)
    )
    return ShardPlan(
        partition=partition,
        owned=owned,
        version=getattr(graph, "version", None),
    )
