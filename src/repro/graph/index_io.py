"""Persistence for the offline indexes.

The differential index is the paper's precomputed artifact ("needs to be
pre-computed and stored", Sec. III).  Stored means *on disk*: this module
serializes :class:`DifferentialIndex` (and the exact size index inside it)
to a compact, versioned binary format so the offline build is paid once per
graph, not once per process.

Format (little-endian, stdlib ``array``/``struct`` only)::

    magic     8 bytes   b"LONADIF1"
    header    struct    <5i?  -> num_nodes, num_arcs, hops, fingerprint_lo,
                               fingerprint_hi, include_self
    degrees   num_nodes * int32    adjacency row lengths
    deltas    num_arcs  * int32    per-arc delta values, row-major
    sizes     num_nodes * int32    exact N(v)

The fingerprint is a stable hash of the adjacency structure; loading
validates it against the target graph, so an index can never be silently
applied to the wrong (or a mutated) graph — the same staleness discipline
the materialized view enforces.
"""

from __future__ import annotations

import os
import struct
from array import array
from typing import IO, Tuple, Union

from repro.errors import IndexNotBuiltError
from repro.graph.diffindex import DifferentialIndex
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex

__all__ = ["save_differential_index", "load_differential_index", "graph_fingerprint"]

_MAGIC = b"LONADIF1"
_HEADER = struct.Struct("<iiiII?")

PathOrFile = Union[str, "os.PathLike[str]", IO[bytes]]


def graph_fingerprint(graph: Graph) -> int:
    """A stable 64-bit structural fingerprint of the adjacency lists."""
    h = 1469598103934665603  # FNV-1a offset basis
    prime = 1099511628211
    mask = (1 << 64) - 1
    h = (h ^ graph.num_nodes) * prime & mask
    h = (h ^ (1 if graph.directed else 0)) * prime & mask
    for u in graph.nodes():
        h = (h ^ (u + 0x9E3779B9)) * prime & mask
        for v in graph.neighbors(u):
            h = (h ^ v) * prime & mask
    return h


def _split_fingerprint(fp: int) -> Tuple[int, int]:
    return fp & 0xFFFFFFFF, (fp >> 32) & 0xFFFFFFFF


def save_differential_index(
    index: DifferentialIndex, graph: Graph, sink: PathOrFile
) -> None:
    """Serialize ``index`` (built on ``graph``) to ``sink``."""
    own = isinstance(sink, (str, os.PathLike))
    handle = open(os.fspath(sink), "wb") if own else sink
    try:
        degrees = array("i", (len(index.delta_row(u)) for u in range(len(index))))
        deltas = array("i")
        for u in range(len(index)):
            deltas.extend(index.delta_row(u))
        sizes = array("i", (index.sizes.value(u) for u in range(len(index))))
        lo, hi = _split_fingerprint(graph_fingerprint(graph))
        handle.write(_MAGIC)
        handle.write(
            _HEADER.pack(
                len(index), len(deltas), index.hops, lo, hi, index.include_self
            )
        )
        degrees.tofile(handle)  # type: ignore[arg-type]
        deltas.tofile(handle)  # type: ignore[arg-type]
        sizes.tofile(handle)  # type: ignore[arg-type]
    finally:
        if own:
            handle.close()


def load_differential_index(graph: Graph, source: PathOrFile) -> DifferentialIndex:
    """Load an index and validate it against ``graph``.

    Raises :class:`IndexNotBuiltError` on any mismatch (wrong file, wrong
    graph, mutated graph) rather than returning a plausible-looking but
    wrong index.
    """
    own = isinstance(source, (str, os.PathLike))
    handle = open(os.fspath(source), "rb") if own else source
    try:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise IndexNotBuiltError(
                f"not a differential-index file (magic {magic!r})"
            )
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise IndexNotBuiltError("truncated differential-index header")
        num_nodes, num_arcs, hops, lo, hi, include_self = _HEADER.unpack(header)
        if num_nodes != graph.num_nodes:
            raise IndexNotBuiltError(
                f"index built for {num_nodes} nodes, graph has {graph.num_nodes}"
            )
        expected_lo, expected_hi = _split_fingerprint(graph_fingerprint(graph))
        if (lo, hi) != (expected_lo, expected_hi):
            raise IndexNotBuiltError(
                "graph fingerprint mismatch: the index was built on a "
                "different (or since-mutated) graph"
            )
        degrees = array("i")
        degrees.fromfile(handle, num_nodes)  # type: ignore[arg-type]
        deltas = array("i")
        deltas.fromfile(handle, num_arcs)  # type: ignore[arg-type]
        sizes = array("i")
        sizes.fromfile(handle, num_nodes)  # type: ignore[arg-type]
    except (EOFError, ValueError) as exc:
        raise IndexNotBuiltError(
            f"truncated differential-index payload ({exc})"
        ) from None
    finally:
        if own:
            handle.close()

    rows = []
    offset = 0
    for u in range(num_nodes):
        degree = degrees[u]
        if degree != graph.degree(u):
            raise IndexNotBuiltError(
                f"adjacency row length mismatch at node {u}"
            )
        rows.append(list(deltas[offset : offset + degree]))
        offset += degree
    size_list = list(sizes)
    size_index = NeighborhoodSizeIndex(
        size_list, size_list, hops=hops, include_self=include_self, exact=True
    )
    return DifferentialIndex(
        rows, size_index, hops=hops, include_self=include_self
    )
