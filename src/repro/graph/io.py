"""Reading and writing graphs as edge lists.

Supports the plain whitespace edge-list format the paper's datasets ship in
(cond-mat-2005, cite75_99 are both ``src dst`` per line), with optional
comments, weights, and arbitrary string node labels.
"""

from __future__ import annotations

import io
import os
from typing import IO, Iterator, Union

from repro.errors import GraphBuildError
from repro.graph.graph import Graph, GraphBuilder

__all__ = ["read_edge_list", "write_edge_list", "parse_edge_list"]

PathOrFile = Union[str, "os.PathLike[str]", IO[str]]


def _open_for_read(source: PathOrFile):
    if hasattr(source, "read"):
        return source, False
    return open(os.fspath(source), "r", encoding="utf-8"), True  # noqa: SIM115


def _open_for_write(sink: PathOrFile):
    if hasattr(sink, "write"):
        return sink, False
    return open(os.fspath(sink), "w", encoding="utf-8"), True  # noqa: SIM115


def parse_edge_list(
    text: str,
    *,
    directed: bool = False,
    weighted: bool = False,
    comment: str = "#",
    name: str = "",
) -> Graph:
    """Parse an edge list from a string (convenience for tests/docs)."""
    return read_edge_list(
        io.StringIO(text),
        directed=directed,
        weighted=weighted,
        comment=comment,
        name=name,
    )


def read_edge_list(
    source: PathOrFile,
    *,
    directed: bool = False,
    weighted: bool = False,
    comment: str = "#",
    name: str = "",
) -> Graph:
    """Read a graph from a whitespace-separated edge list.

    Each non-comment line is ``u v`` (or ``u v w`` when ``weighted``).  Node
    tokens may be arbitrary strings; they are interned to dense integer ids
    in first-seen order and kept as labels.  Duplicate edges are merged
    silently (real edge lists are full of them); self-loops are skipped, as
    the paper's neighborhood semantics are over simple graphs.
    """
    handle, should_close = _open_for_read(source)
    builder = GraphBuilder(
        directed=directed, weighted=weighted, allow_duplicates=True, name=name
    )
    try:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            parts = stripped.split()
            if weighted:
                if len(parts) < 3:
                    raise GraphBuildError(
                        f"line {lineno}: expected 'u v w', got {stripped!r}"
                    )
                u_tok, v_tok, w_tok = parts[0], parts[1], parts[2]
                try:
                    weight = float(w_tok)
                except ValueError:
                    raise GraphBuildError(
                        f"line {lineno}: bad weight {w_tok!r}"
                    ) from None
            else:
                if len(parts) < 2:
                    raise GraphBuildError(
                        f"line {lineno}: expected 'u v', got {stripped!r}"
                    )
                u_tok, v_tok = parts[0], parts[1]
                weight = 1.0
            if u_tok == v_tok:
                continue
            builder.add_labeled_edge(u_tok, v_tok, weight=weight)
    finally:
        if should_close:
            handle.close()
    return builder.build()


def write_edge_list(graph: Graph, sink: PathOrFile, *, header: bool = True) -> None:
    """Write ``graph`` as an edge list (labels used when present)."""
    handle, should_close = _open_for_write(sink)
    try:
        if header:
            kind = "directed" if graph.directed else "undirected"
            handle.write(
                f"# {graph.name or 'graph'}: {graph.num_nodes} nodes, "
                f"{graph.num_edges} edges, {kind}\n"
            )
        for u, v in graph.edges():
            ulabel, vlabel = graph.label_of(u), graph.label_of(v)
            if graph.weighted:
                handle.write(f"{ulabel} {vlabel} {graph.edge_weight(u, v)}\n")
            else:
                handle.write(f"{ulabel} {vlabel}\n")
    finally:
        if should_close:
            handle.close()


def iter_edge_lines(graph: Graph) -> Iterator[str]:
    """Yield edge-list lines without materializing the whole file."""
    for u, v in graph.edges():
        yield f"{graph.label_of(u)} {graph.label_of(v)}"
