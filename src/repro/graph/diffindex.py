"""The differential index (Sec. III of the paper).

For every arc ``u -> v`` the index stores

    ``delta(v - u) = |S_h(v) \\ S_h(u)|``

the number of nodes in ``v``'s h-hop ball that are *not* in ``u``'s.  After a
forward evaluation of ``u`` has produced the exact ``F(u)``, the index gives
the differential upper bound of Eq. 1:

    ``F(v) <= F(u) + delta(v - u)``

because every member of ``S(v) ∩ S(u)`` contributes to ``F(u)`` at least what
it contributes to ``F(v)`` (it contributes exactly ``f(.) <= 1``), and each of
the ``delta(v - u)`` remaining members contributes at most 1.

The index is direction-sensitive — ``delta(v - u) != delta(u - v)`` in
general — so it is stored per *arc*, aligned position-for-position with the
graph's adjacency lists: ``index.delta_row(u)[i]`` corresponds to
``graph.neighbors(u)[i]``.

Building the index is the offline, paid-once step of LONA-Forward ("The
differential index adopted by forward processing needs to be pre-computed and
stored").  The exact per-node ball sizes ``N(v)`` fall out of the same pass
for free and are exposed as a :class:`NeighborhoodSizeIndex`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.errors import IndexNotBuiltError, InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex
from repro.graph.traversal import TraversalCounter, hop_ball

__all__ = ["DifferentialIndex", "build_differential_index"]


class DifferentialIndex:
    """Per-arc ``delta(v-u)`` table plus the exact ball-size index.

    Construct with :func:`build_differential_index` (or
    :meth:`DifferentialIndex.build`).  Instances are immutable and tied to the
    ``(graph, hops, include_self)`` triple they were built for; algorithms
    validate this via :meth:`check_compatible`.
    """

    __slots__ = ("_rows", "_sizes", "hops", "include_self", "_num_nodes", "_flat")

    def __init__(
        self,
        rows: List[List[int]],
        sizes: NeighborhoodSizeIndex,
        *,
        hops: int,
        include_self: bool = True,
    ) -> None:
        self._rows = rows
        self._sizes = sizes
        self.hops = hops
        self.include_self = include_self
        self._num_nodes = len(rows)
        self._flat = None  # lazily built arc-major numpy view

    @classmethod
    def build(
        cls,
        graph: Graph,
        hops: int,
        *,
        include_self: bool = True,
        counter: Optional[TraversalCounter] = None,
    ) -> "DifferentialIndex":
        """Alias of :func:`build_differential_index`."""
        return build_differential_index(
            graph, hops, include_self=include_self, counter=counter
        )

    @property
    def sizes(self) -> NeighborhoodSizeIndex:
        """The exact ``N(v)`` index obtained during the build."""
        return self._sizes

    def __len__(self) -> int:
        return self._num_nodes

    def delta_row(self, u: int) -> Sequence[int]:
        """Deltas for all of ``u``'s out-arcs, parallel to ``neighbors(u)``.

        ``delta_row(u)[i] == delta(v - u)`` where ``v = graph.neighbors(u)[i]``.
        """
        return self._rows[u]

    def flat_deltas(self):
        """All delta rows concatenated arc-major, as a numpy int64 array.

        Position-aligned with the ``indices`` array of
        ``to_csr(graph, use_numpy=True)`` for the graph this index was built
        on (both follow adjacency-list order), which is what lets the
        vectorized backend apply Eq. 1 with one gather per evaluated node.
        Built on first use and cached; requires numpy.
        """
        if self._flat is None:
            from itertools import chain

            import numpy as np

            total = sum(len(row) for row in self._rows)
            self._flat = np.fromiter(
                chain.from_iterable(self._rows), dtype=np.int64, count=total
            )
        return self._flat

    def delta(self, graph: Graph, u: int, v: int) -> int:
        """``delta(v - u)`` for the arc ``u -> v`` (linear scan of the row)."""
        nbrs = graph.neighbors(u)
        try:
            i = nbrs.index(v)  # type: ignore[attr-defined]
        except ValueError:
            raise IndexNotBuiltError(
                f"arc ({u}, {v}) is not in the graph the index was built on"
            ) from None
        return self._rows[u][i]

    def check_compatible(self, graph: Graph, hops: int, include_self: bool) -> None:
        """Raise unless the index matches the query's graph and parameters."""
        if self._num_nodes != graph.num_nodes:
            raise IndexNotBuiltError(
                f"differential index built for {self._num_nodes} nodes, "
                f"graph has {graph.num_nodes}"
            )
        if self.hops != hops:
            raise IndexNotBuiltError(
                f"differential index built for h={self.hops}, query uses h={hops}"
            )
        if self.include_self != include_self:
            raise IndexNotBuiltError(
                "differential index built with include_self="
                f"{self.include_self}, query uses {include_self}"
            )


def build_differential_index(
    graph: Graph,
    hops: int,
    *,
    include_self: bool = True,
    counter: Optional[TraversalCounter] = None,
    max_resident_balls: Optional[int] = None,
) -> DifferentialIndex:
    """Precompute ``delta(v-u)`` for every arc and ``N(v)`` for every node.

    Strategy: materialize every node's h-hop ball once, then for each arc
    ``u -> v`` count ``|S(v) \\ S(u)|`` by probing ``S(u)`` with the members
    of ``S(v)``.  Worst-case time ``O(sum_over_arcs |S(v)|)``; memory
    ``O(sum_over_nodes |S(v)|)`` when fully resident.

    ``max_resident_balls`` bounds peak memory: when set, balls are computed
    in bounded batches and the inner loop recomputes the partner ball when it
    is not resident.  This trades time for memory for graphs whose ball
    catalog would not fit; the default (fully resident) is right for the
    bench scales in this repository.
    """
    if hops < 0:
        raise InvalidParameterError(f"hops must be >= 0, got {hops}")
    if max_resident_balls is not None and max_resident_balls < 1:
        raise InvalidParameterError(
            f"max_resident_balls must be >= 1, got {max_resident_balls}"
        )

    n = graph.num_nodes
    rows: List[List[int]] = [[] for _ in range(n)]
    sizes: List[int] = [0] * n

    if max_resident_balls is None or max_resident_balls >= n:
        balls: List[Set[int]] = [
            hop_ball(graph, u, hops, include_self=include_self, counter=counter)
            for u in range(n)
        ]
        for u in range(n):
            ball_u = balls[u]
            row = rows[u]
            sizes[u] = len(ball_u)
            for v in graph.neighbors(u):
                ball_v = balls[v]
                row.append(sum(1 for w in ball_v if w not in ball_u))
    else:
        cache: Dict[int, Set[int]] = {}

        def get_ball(node: int) -> Set[int]:
            ball = cache.get(node)
            if ball is None:
                ball = hop_ball(
                    graph, node, hops, include_self=include_self, counter=counter
                )
                if len(cache) >= max_resident_balls:
                    cache.pop(next(iter(cache)))
                cache[node] = ball
            return ball

        for u in range(n):
            ball_u = get_ball(u)
            sizes[u] = len(ball_u)
            row = rows[u]
            for v in graph.neighbors(u):
                ball_v = get_ball(v)
                # get_ball may have evicted ball_u; it is still referenced
                # locally so correctness is unaffected.
                row.append(sum(1 for w in ball_v if w not in ball_u))

    size_index = NeighborhoodSizeIndex(
        sizes, sizes, hops=hops, include_self=include_self, exact=True
    )
    return DifferentialIndex(rows, size_index, hops=hops, include_self=include_self)
