"""Compressed-sparse-row (CSR) export of a :class:`~repro.graph.graph.Graph`.

The library's hot loops use adjacency lists (faster to iterate from pure
Python), but vectorized consumers — the random-walk relevance function, the
degree-based estimates at scale, external analysis — want flat arrays.  This
module provides the conversion both with and without :mod:`numpy`, keeping
the core library dependency-free.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph

__all__ = ["CSRGraph", "to_csr", "from_csr"]


@dataclass(frozen=True)
class CSRGraph:
    """A frozen CSR view: ``indices[indptr[u]:indptr[u+1]]`` are u's neighbors.

    ``indptr`` has ``num_nodes + 1`` entries; ``weights`` is either ``None``
    or parallel to ``indices``.  Arrays are ``array('l')``/``array('d')`` by
    default or numpy arrays when ``use_numpy=True`` was requested.
    """

    indptr: Sequence[int]
    indices: Sequence[int]
    weights: Optional[Sequence[float]]
    directed: bool

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (2x edges for undirected graphs)."""
        return len(self.indices)

    def neighbors(self, u: int) -> Sequence[int]:
        """Neighbor slice of node ``u``."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Out-degree of node ``u``."""
        return self.indptr[u + 1] - self.indptr[u]


def to_csr(graph: Graph, *, use_numpy: bool = False) -> CSRGraph:
    """Convert ``graph`` to CSR.

    ``use_numpy=True`` returns ``numpy.int64`` / ``numpy.float64`` arrays
    (numpy must be importable); the default uses the stdlib ``array`` module.
    """
    indptr = array("l", [0])
    indices = array("l")
    weighted = graph.weighted
    weights = array("d") if weighted else None
    for u in graph.nodes():
        nbrs = graph.neighbors(u)
        indices.extend(nbrs)
        if weights is not None:
            weights.extend(graph.neighbor_weights(u))
        indptr.append(len(indices))
    if use_numpy:
        import numpy as np

        return CSRGraph(
            indptr=np.asarray(indptr, dtype=np.int64),
            indices=np.asarray(indices, dtype=np.int64),
            weights=None if weights is None else np.asarray(weights, dtype=np.float64),
            directed=graph.directed,
        )
    return CSRGraph(
        indptr=indptr, indices=indices, weights=weights, directed=graph.directed
    )


def from_csr(csr: CSRGraph, *, name: str = "") -> Graph:
    """Rebuild an adjacency-list :class:`Graph` from a CSR view."""
    n = csr.num_nodes
    adj: List[List[int]] = []
    weights: Optional[List[List[float]]] = [] if csr.weights is not None else None
    for u in range(n):
        lo, hi = csr.indptr[u], csr.indptr[u + 1]
        adj.append([int(v) for v in csr.indices[lo:hi]])
        if weights is not None:
            assert csr.weights is not None
            weights.append([float(w) for w in csr.weights[lo:hi]])
    return Graph(adj, directed=csr.directed, weights=weights, name=name)


def degree_array(graph: Graph) -> Any:
    """All node degrees as a numpy int64 array (numpy required)."""
    import numpy as np

    return np.fromiter(
        (graph.degree(u) for u in graph.nodes()), dtype=np.int64, count=graph.num_nodes
    )
