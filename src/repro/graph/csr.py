"""Compressed-sparse-row (CSR) export of a :class:`~repro.graph.graph.Graph`.

The adjacency-list loops stay the dependency-free reference implementation,
but the vectorized execution backend (:mod:`repro.core.vectorized`) and other
bulk consumers — the random-walk relevance function, the degree-based
estimates at scale, external analysis — run over this module's flat arrays.
Beyond the plain conversion, it provides the numpy kernels the backend is
built from:

* :func:`neighbor_slab` — gather the concatenated neighbor lists of a whole
  frontier in one vectorized indexing expression (no per-node Python calls);
* :func:`csr_hop_ball` / :class:`CSRBallCache` — single-center hop-ball
  expansion over the flat arrays, optionally cached across queries;
* :func:`batched_hop_balls` — multi-center frontier-batched expansion, the
  kernel the vectorized LONA-Forward evaluates candidate blocks with.

Everything numpy-flavored imports numpy lazily so the module itself stays
importable on a bare interpreter.
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph

__all__ = [
    "CSRGraph",
    "to_csr",
    "from_csr",
    "degree_array",
    "neighbor_slab",
    "slab_positions",
    "csr_hop_ball",
    "batched_hop_balls",
    "batched_hop_balls_with_distances",
    "CSRBallCache",
    "CSRDistanceBallCache",
    "SharedArray",
    "SharedCSR",
    "AttachedArray",
    "AttachedCSR",
]


@dataclass(frozen=True)
class CSRGraph:
    """A frozen CSR view: ``indices[indptr[u]:indptr[u+1]]`` are u's neighbors.

    ``indptr`` has ``num_nodes + 1`` entries; ``weights`` is either ``None``
    or parallel to ``indices``.  Arrays are ``array('q')``/``array('d')`` by
    default (``'q'`` is a fixed 8-byte int on every platform, unlike ``'l'``
    which is 4 bytes on Windows/ILP32) or numpy arrays when ``use_numpy=True``
    was requested.
    """

    indptr: Sequence[int]
    indices: Sequence[int]
    weights: Optional[Sequence[float]]
    directed: bool

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (2x edges for undirected graphs)."""
        return len(self.indices)

    def neighbors(self, u: int) -> Sequence[int]:
        """Neighbor slice of node ``u``."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Out-degree of node ``u``."""
        return self.indptr[u + 1] - self.indptr[u]


def to_csr(graph: Graph, *, use_numpy: bool = False) -> CSRGraph:
    """Convert ``graph`` to CSR.

    ``use_numpy=True`` returns ``numpy.int64`` / ``numpy.float64`` arrays
    (numpy must be importable); the default uses the stdlib ``array`` module.
    The neighbor order of every slice matches ``graph.neighbors(u)`` exactly,
    so per-arc tables built against the adjacency lists (e.g. the
    differential index rows) stay position-aligned with ``indices``.
    """
    indptr = array("q", [0])
    indices = array("q")
    weighted = graph.weighted
    weights = array("d") if weighted else None
    for u in graph.nodes():
        nbrs = graph.neighbors(u)
        indices.extend(nbrs)
        if weights is not None:
            weights.extend(graph.neighbor_weights(u))
        indptr.append(len(indices))
    if use_numpy:
        import numpy as np

        return CSRGraph(
            indptr=np.asarray(indptr, dtype=np.int64),
            indices=np.asarray(indices, dtype=np.int64),
            weights=None if weights is None else np.asarray(weights, dtype=np.float64),
            directed=graph.directed,
        )
    return CSRGraph(
        indptr=indptr, indices=indices, weights=weights, directed=graph.directed
    )


def from_csr(csr: CSRGraph, *, name: str = "") -> Graph:
    """Rebuild an adjacency-list :class:`Graph` from a CSR view."""
    n = csr.num_nodes
    adj: List[List[int]] = []
    weights: Optional[List[List[float]]] = [] if csr.weights is not None else None
    for u in range(n):
        lo, hi = csr.indptr[u], csr.indptr[u + 1]
        adj.append([int(v) for v in csr.indices[lo:hi]])
        if weights is not None:
            assert csr.weights is not None
            weights.append([float(w) for w in csr.weights[lo:hi]])
    return Graph(adj, directed=csr.directed, weights=weights, name=name)


def degree_array(graph: Graph) -> Any:
    """All node degrees as a numpy int64 array (numpy required)."""
    import numpy as np

    return np.fromiter(
        (graph.degree(u) for u in graph.nodes()), dtype=np.int64, count=graph.num_nodes
    )


# ---------------------------------------------------------------------------
# Vectorized expansion kernels (numpy-backed CSRGraph required)
# ---------------------------------------------------------------------------
def _require_numpy_csr(csr: CSRGraph):
    import numpy as np

    if not isinstance(csr.indptr, np.ndarray):  # pragma: no cover - misuse guard
        raise TypeError(
            "this operation needs a numpy-backed CSRGraph; "
            "build it with to_csr(graph, use_numpy=True)"
        )
    return np


def neighbor_slab(csr: CSRGraph, frontier: Any) -> Tuple[Any, Any]:
    """Concatenated neighbors of every node in ``frontier``, one gather.

    Returns ``(neighbors, counts)`` where ``neighbors`` is the concatenation
    of each frontier node's neighbor slice (frontier order preserved) and
    ``counts[i]`` is the degree of ``frontier[i]``.  The gather is a single
    fancy-indexing expression — no per-node Python iteration — which is what
    makes frontier-batched BFS levels cheap.
    """
    positions, counts = slab_positions(csr, frontier)
    return csr.indices[positions], counts


def slab_positions(csr: CSRGraph, frontier: Any) -> Tuple[Any, Any]:
    """Flat positions into ``indices`` covering every frontier node's slab.

    ``indices[positions]`` are the concatenated neighbor slices; the same
    positions index any arc-aligned side table (edge weights, the
    differential index's flat deltas), which is how the vectorized backend
    gathers ``delta(v-u)`` together with the neighbors.
    """
    np = _require_numpy_csr(csr)
    indptr = csr.indptr
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, counts
    # Position j of the output belongs to frontier node i where j falls in
    # i's slab; shift each slab's arange to its start in one repeat.
    shifts = np.cumsum(counts) - counts
    positions = np.arange(total, dtype=np.int64) + np.repeat(starts - shifts, counts)
    return positions, counts


def _expand_ball(
    np, csr: CSRGraph, center: int, hops: int, include_self: bool, stamp: Any, generation: int
) -> Tuple[Any, int]:
    """Shared single-center expansion; returns (sorted ball, edges gathered)."""
    stamp[center] = generation
    frontier = np.array([center], dtype=np.int64)
    levels = [frontier]
    edges = 0
    for _ in range(hops):
        neighbors, _counts = neighbor_slab(csr, frontier)
        if neighbors.size == 0:
            break
        edges += int(neighbors.size)
        candidates = np.unique(neighbors)
        fresh = candidates[stamp[candidates] != generation]
        if fresh.size == 0:
            break
        stamp[fresh] = generation
        levels.append(fresh)
        frontier = fresh
    if not include_self:
        levels = levels[1:]
    if not levels:
        return np.empty(0, dtype=np.int64), edges
    ball = np.concatenate(levels) if len(levels) > 1 else levels[0]
    ball.sort()
    return ball, edges


def _expand_ball_with_distances(
    np, csr: CSRGraph, center: int, hops: int, include_self: bool, stamp: Any, generation: int
) -> Tuple[Any, Any, int]:
    """:func:`_expand_ball` variant returning ``(members, dists, edges)``.

    ``members`` is sorted ascending; ``dists`` is aligned with it and holds
    each member's exact hop distance (0 for the center).  BFS levels are
    duplicate-free (the stamp filters), so each node's first — minimum —
    level is the one recorded.
    """
    stamp[center] = generation
    frontier = np.array([center], dtype=np.int64)
    levels = [frontier]
    edges = 0
    for _ in range(hops):
        neighbors, _counts = neighbor_slab(csr, frontier)
        if neighbors.size == 0:
            break
        edges += int(neighbors.size)
        candidates = np.unique(neighbors)
        fresh = candidates[stamp[candidates] != generation]
        if fresh.size == 0:
            break
        stamp[fresh] = generation
        levels.append(fresh)
        frontier = fresh
    start = 0 if include_self else 1
    levels = levels[start:]
    if not levels:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, edges
    members = np.concatenate(levels) if len(levels) > 1 else levels[0]
    dists = np.repeat(
        np.arange(start, start + len(levels), dtype=np.int64),
        np.asarray([lvl.size for lvl in levels], dtype=np.int64),
    )
    # Members are unique across levels (the stamp filters), so the scaled
    # int sort needs no dedup pass.
    span = hops + 2
    scaled = members * span + dists
    scaled.sort()
    return np.divmod(scaled, span) + (edges,)


def csr_hop_ball(
    csr: CSRGraph,
    center: int,
    hops: int,
    *,
    include_self: bool = True,
) -> Any:
    """``S_h(center)`` over the flat arrays, as a sorted int64 array.

    Frontier-batched BFS: each level gathers the whole frontier's neighbor
    slabs at once and dedups with ``np.unique``.  Callers expanding many
    balls should use :class:`CSRBallCache` instead, which reuses the
    visited-marking array across expansions.

    The result is sorted ascending so that every caller aggregates ball
    members in one canonical order — two nodes with identical balls then get
    bit-identical float aggregates, preserving the tie behavior of the pure
    Python backend.
    """
    np = _require_numpy_csr(csr)
    stamp = np.zeros(csr.num_nodes, dtype=np.int64)
    ball, _edges = _expand_ball(np, csr, center, hops, include_self, stamp, 1)
    return ball


def batched_hop_balls(
    csr: CSRGraph, centers: Any, hops: int, *, include_self: bool = True
) -> Tuple[Any, Any, int]:
    """Expand the h-hop balls of many centers in one frontier-batched sweep.

    Returns ``(owners, members, edges_scanned)``: parallel arrays listing
    every (ball, member) pair — ``members[i]`` belongs to the ball of
    ``centers[owners[i]]`` — sorted by ``(owner, member)``, plus the number
    of adjacency entries gathered.  Per-center aggregates then reduce with
    ``np.bincount(owners, ...)``.

    Membership pairs are encoded as ``owner * n + node`` keys; a flat
    boolean visited buffer filters already-reached keys per BFS level (one
    gather + one scatter, no hashing), per-level fresh keys are collected
    as they appear, and one final sort merges the levels into the canonical
    ``(owner, member)`` order while squeezing out the last level's
    duplicates.  The buffer is ``len(centers) * num_nodes`` bools; callers
    bound their block size accordingly (see
    :func:`repro.core.vectorized.adaptive_block_size`).
    """
    np = _require_numpy_csr(csr)
    n = csr.num_nodes
    count = int(centers.size)
    if count == 0 or n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, 0
    owners = np.arange(count, dtype=np.int64)
    visited = np.zeros(count * n, dtype=bool)
    frontier_keys = owners * n + centers.astype(np.int64, copy=False)
    visited[frontier_keys] = True
    parts = [frontier_keys]
    edges = 0
    for level in range(hops):
        frontier_owners, frontier_nodes = np.divmod(frontier_keys, n)
        neighbors, counts = neighbor_slab(csr, frontier_nodes)
        if neighbors.size == 0:
            break
        edges += int(neighbors.size)
        keys = np.repeat(frontier_owners, counts) * n + neighbors
        fresh = keys[~visited[keys]]
        if level == hops - 1:
            # Last level: no further expansion, so skip the visited
            # bookkeeping — intra-level duplicates fall out in the final
            # sort+dedup below.
            parts.append(fresh)
            break
        if level > 0:
            # A key can be reached from two frontier members of the same
            # ball; levels past the first need an explicit dedup to keep
            # the next frontier duplicate-free.  (Level 1 is a single
            # node's duplicate-free adjacency list per ball.)
            fresh = _sorted_unique(np, fresh)
        if fresh.size == 0:
            break
        visited[fresh] = True
        parts.append(fresh)
        frontier_keys = fresh
    keys_out = np.concatenate(parts) if len(parts) > 1 else parts[0]
    keys_out = _sorted_unique(np, keys_out)
    owners_out, members = np.divmod(keys_out, n)
    if not include_self:
        keep = members != centers[owners_out]
        owners_out = owners_out[keep]
        members = members[keep]
    return owners_out, members, edges


def batched_hop_balls_with_distances(
    csr: CSRGraph, centers: Any, hops: int, *, include_self: bool = True
) -> Tuple[Any, Any, Any, int]:
    """:func:`batched_hop_balls` plus each member's hop distance to its center.

    Returns ``(owners, members, dists, edges_scanned)`` where ``dists[i]``
    is the BFS hop distance from ``centers[owners[i]]`` to ``members[i]``
    (0 for the center itself).  Distance-weighted aggregation multiplies a
    decay profile over ``dists`` before reducing with ``np.bincount`` —
    same canonical ``(owner, member)`` order as the unweighted kernel.

    Distances are exact shortest hop counts: a member key enters the
    visited buffer at the first BFS level that reaches it, and later levels
    filter on that buffer, so every surviving (key, level) pair records the
    minimum level.  Duplicates can only arise *within* the final level
    (which skips the visited bookkeeping); they share one distance, so the
    final sort may keep either copy.
    """
    np = _require_numpy_csr(csr)
    n = csr.num_nodes
    count = int(centers.size)
    if count == 0 or n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, 0
    owners = np.arange(count, dtype=np.int64)
    visited = np.zeros(count * n, dtype=bool)
    frontier_keys = owners * n + centers.astype(np.int64, copy=False)
    visited[frontier_keys] = True
    parts = [frontier_keys]
    levels = [0]
    edges = 0
    for level in range(hops):
        frontier_owners, frontier_nodes = np.divmod(frontier_keys, n)
        neighbors, counts = neighbor_slab(csr, frontier_nodes)
        if neighbors.size == 0:
            break
        edges += int(neighbors.size)
        keys = np.repeat(frontier_owners, counts) * n + neighbors
        fresh = keys[~visited[keys]]
        if level == hops - 1:
            parts.append(fresh)
            levels.append(level + 1)
            break
        if level > 0:
            fresh = _sorted_unique(np, fresh)
        if fresh.size == 0:
            break
        visited[fresh] = True
        parts.append(fresh)
        levels.append(level + 1)
        frontier_keys = fresh
    keys_out = np.concatenate(parts) if len(parts) > 1 else parts[0]
    dists_out = np.repeat(
        np.asarray(levels, dtype=np.int64),
        np.asarray([p.size for p in parts], dtype=np.int64),
    )
    # Sort (key, dist) as one scaled integer — an in-place int sort beats a
    # stable argsort plus two gathers.  Duplicate keys only arise within
    # the final level (equal dist), so their scaled values are equal too
    # and deduping on the scaled array is deduping on keys.
    span = hops + 2
    scaled = keys_out * span + dists_out
    scaled.sort()
    if scaled.size > 1:
        keep = np.empty(scaled.size, dtype=bool)
        keep[0] = True
        np.not_equal(scaled[1:], scaled[:-1], out=keep[1:])
        scaled = scaled[keep]
    keys_out, dists_out = np.divmod(scaled, span)
    owners_out, members = np.divmod(keys_out, n)
    if not include_self:
        keep = members != centers[owners_out]
        owners_out = owners_out[keep]
        members = members[keep]
        dists_out = dists_out[keep]
    return owners_out, members, dists_out, edges


def _sorted_unique(np, keys: Any) -> Any:
    """Sort ``keys`` and drop duplicates (cheaper than np.unique's hashing)."""
    if keys.size <= 1:
        return keys
    keys = np.sort(keys)
    keep = np.empty(keys.size, dtype=bool)
    keep[0] = True
    np.not_equal(keys[1:], keys[:-1], out=keep[1:])
    return keys[keep]


class _LRUBallStore:
    """Byte-budgeted LRU storage shared by the two ball caches.

    Long-lived serving sessions over ~1M-node graphs cannot let the ball
    caches grow without limit, so entries are kept in recency order and the
    least-recently-used ones are dropped once the resident payload exceeds
    ``max_bytes`` (``None`` = unbounded, the pre-serving behavior).  A hit
    returns the *same* array object the miss stored (identity matters to
    callers that compare) and counts toward ``hits``; evictions are counted
    so a session can report cache effectiveness.  All operations take the
    owner's lock, so concurrent queries can share one cache safely.
    """

    __slots__ = ("max_bytes", "current_bytes", "hits", "misses", "evictions", "_entries")

    def __init__(self, max_bytes: Optional[int]) -> None:
        self.max_bytes = max_bytes
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[int, Tuple[Any, int]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, center: int) -> Optional[Any]:
        entry = self._entries.get(center)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(center)
        self.hits += 1
        return entry[0]

    def store(self, center: int, payload: Any, nbytes: int) -> None:
        old = self._entries.pop(center, None)
        if old is not None:
            self.current_bytes -= old[1]
        self._entries[center] = (payload, nbytes)
        self.current_bytes += nbytes
        if self.max_bytes is not None:
            while self.current_bytes > self.max_bytes and len(self._entries) > 1:
                _, (_, dropped) = self._entries.popitem(last=False)
                self.current_bytes -= dropped
                self.evictions += 1

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class CSRBallCache:
    """Cached frontier-batched ball expansion for one ``(csr, h, ball)`` triple.

    LONA-Backward expands the same node's ball in the distribution and
    verification phases (and repeated queries over one engine expand the same
    balls again); this cache pays each expansion once.  Set ``cached=False``
    for a pure expander that reuses the visited-stamp array but stores
    nothing — the right mode when every center is expanded at most once.

    The stamp array makes each expansion O(ball size): instead of a fresh
    n-sized visited mask per ball, nodes are marked with a per-ball
    generation counter.  When a ``counter`` is supplied, only *actual*
    expansions are charged to it — cache hits are free, which is the honest
    accounting for the "raw BFS work" counters.  Kernels that share a
    session cache pass their own counter per call (``ball(v, counter=c)``)
    so concurrent queries never charge each other's stats.

    ``max_bytes`` bounds the resident member arrays with an LRU byte budget
    (``None`` = unbounded); :meth:`stats` reports hit/eviction counters.
    The cache is thread-safe: the LRU structure is guarded by a lock while
    expansions themselves run *outside* it on per-thread visited-stamp
    arrays, so parallel queries expand different balls genuinely in
    parallel (two threads racing the same cold ball both expand; the
    second store wins — identical arrays, benign).
    """

    __slots__ = (
        "csr",
        "hops",
        "include_self",
        "counter",
        "_store",
        "_cached",
        "_local",
        "_np",
        "_lock",
    )

    def __init__(
        self,
        csr: CSRGraph,
        hops: int,
        *,
        include_self: bool = True,
        cached: bool = True,
        counter: Optional[Any] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        np = _require_numpy_csr(csr)
        self.csr = csr
        self.hops = hops
        self.include_self = include_self
        self.counter = counter
        self._cached = cached
        self._store = _LRUBallStore(max_bytes)
        self._local = threading.local()
        self._np = np
        self._lock = threading.Lock()

    def _thread_stamp(self) -> Tuple[Any, int]:
        """This thread's (stamp array, next generation) expansion state."""
        local = self._local
        stamp = getattr(local, "stamp", None)
        if stamp is None:
            stamp = self._np.zeros(self.csr.num_nodes, dtype=self._np.int64)
            local.stamp = stamp
            local.gen = 0
        local.gen += 1
        return stamp, local.gen

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        """Hit/miss/eviction counters and the resident byte footprint."""
        with self._lock:
            return self._store.stats()

    def ball(self, center: int, counter: Optional[Any] = None) -> Any:
        """The sorted member array of ``S_h(center)`` (treat as read-only).

        ``counter`` (default: the constructor's) receives the traversal
        charges for an actual expansion; hits are free.
        """
        counter = counter if counter is not None else self.counter
        if self._cached:
            with self._lock:
                hit = self._store.lookup(center)
            if hit is not None:
                return hit
        stamp, gen = self._thread_stamp()
        ball, edges = _expand_ball(
            self._np, self.csr, center, self.hops, self.include_self, stamp, gen
        )
        if self._cached:
            with self._lock:
                self._store.store(center, ball, int(ball.nbytes))
        if counter is not None:
            # Same convention as hop_ball: nodes_visited counts the
            # closed ball (the center is visited even when excluded).
            counter.edges_scanned += edges
            counter.nodes_visited += int(ball.size) + (
                0 if self.include_self else 1
            )
            counter.balls_expanded += 1
        return ball


class CSRDistanceBallCache:
    """:class:`CSRBallCache` for distance-labeled balls.

    Caches ``(members, dists)`` pairs — the sorted member array of
    ``S_h(center)`` plus each member's hop distance.  Distances depend only
    on the graph and ``(hops, include_self)``, never on the decay profile,
    so one cache serves every weighted query of a session.  Work accounting,
    the LRU byte budget, and thread-safety follow :class:`CSRBallCache`.
    """

    __slots__ = (
        "csr",
        "hops",
        "include_self",
        "counter",
        "_store",
        "_cached",
        "_local",
        "_np",
        "_lock",
    )

    def __init__(
        self,
        csr: CSRGraph,
        hops: int,
        *,
        include_self: bool = True,
        cached: bool = True,
        counter: Optional[Any] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        np = _require_numpy_csr(csr)
        self.csr = csr
        self.hops = hops
        self.include_self = include_self
        self.counter = counter
        self._cached = cached
        self._store = _LRUBallStore(max_bytes)
        self._local = threading.local()
        self._np = np
        self._lock = threading.Lock()

    _thread_stamp = CSRBallCache._thread_stamp

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        """Hit/miss/eviction counters and the resident byte footprint."""
        with self._lock:
            return self._store.stats()

    def get(self, center: int) -> Optional[Tuple[Any, Any]]:
        """The cached ``(members, dists)`` of a ball, or None (no expansion)."""
        with self._lock:
            return self._store.lookup(center)

    def put(self, center: int, members: Any, dists: Any) -> None:
        """Deposit an externally expanded ball (e.g. from a batched kernel).

        The arrays must follow :meth:`ball`'s contract: members sorted
        ascending, dists aligned, both treated as read-only from here on.
        """
        if self._cached:
            with self._lock:
                self._store.store(
                    center, (members, dists), int(members.nbytes) + int(dists.nbytes)
                )

    def ball(self, center: int, counter: Optional[Any] = None) -> Tuple[Any, Any]:
        """``(members, dists)`` of ``S_h(center)`` (treat both as read-only)."""
        counter = counter if counter is not None else self.counter
        if self._cached:
            with self._lock:
                hit = self._store.lookup(center)
            if hit is not None:
                return hit
        stamp, gen = self._thread_stamp()
        members, dists, edges = _expand_ball_with_distances(
            self._np, self.csr, center, self.hops, self.include_self, stamp, gen
        )
        entry = (members, dists)
        if self._cached:
            with self._lock:
                self._store.store(
                    center, entry, int(members.nbytes) + int(dists.nbytes)
                )
        if counter is not None:
            counter.edges_scanned += edges
            counter.nodes_visited += int(members.size) + (
                0 if self.include_self else 1
            )
            counter.balls_expanded += 1
        return entry


# ---------------------------------------------------------------------------
# Shared-memory export/attach (the process-parallel backend's substrate)
# ---------------------------------------------------------------------------
#: Stamp value an owner writes to tell attached workers their view is dead.
STALE_STAMP = -1


class SharedArray:
    """Owner handle of one numpy array exported via ``shared_memory``.

    ``create`` copies an array into a fresh named segment; :meth:`meta`
    returns the picklable ``{"name", "dtype", "shape"}`` descriptor another
    process hands to :class:`AttachedArray`.  The owner's :meth:`array`
    view stays writable (version stamps are updated through it).  The
    owner — and only the owner — calls :meth:`unlink` when the export dies;
    attached readers merely close.
    """

    __slots__ = ("_shm", "_array", "_meta")

    def __init__(self, shm, array, meta: dict) -> None:
        self._shm = shm
        self._array = array
        self._meta = meta

    @classmethod
    def create(cls, array) -> "SharedArray":
        """Export ``array`` (any numpy array) into a new shared segment."""
        import numpy as np
        from multiprocessing import shared_memory

        source = np.ascontiguousarray(array)
        # A zero-byte segment is invalid; keep 1 byte and record the true
        # shape so the attached view is still empty.
        shm = shared_memory.SharedMemory(create=True, size=max(source.nbytes, 1))
        view = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
        view[...] = source
        meta = {
            "name": shm.name,
            "dtype": source.dtype.str,
            "shape": tuple(int(d) for d in source.shape),
        }
        return cls(shm, view, meta)

    @property
    def array(self):
        """The owner's live view of the shared buffer."""
        return self._array

    def meta(self) -> dict:
        """Picklable descriptor for :meth:`AttachedArray.attach`."""
        return dict(self._meta)

    def close(self) -> None:
        """Unmap the owner's view (the segment itself survives)."""
        self._array = None
        self._shm.close()

    def unlink(self) -> None:
        """Free the segment (owner only; attached views die with their maps)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-unlink race
            pass


class AttachedArray:
    """Worker-side view of a :class:`SharedArray` export.

    Keeps the ``SharedMemory`` handle alive exactly as long as the numpy
    view is in use; :meth:`close` unmaps.  Never unlinks — the exporting
    process owns the segment's lifetime.
    """

    __slots__ = ("_shm", "array")

    def __init__(self, shm, array) -> None:
        self._shm = shm
        self.array = array

    @classmethod
    def attach(cls, meta: dict) -> "AttachedArray":
        """Map an exported segment read-write by its descriptor."""
        import numpy as np
        from multiprocessing import shared_memory

        # Attaching registers with the resource tracker just like creating
        # does (pre-3.13 there is no ``track=False``).  Worker processes are
        # always spawn children sharing the owner's tracker, where the
        # registration set dedups, so the owner's single ``unlink`` remains
        # the one cleanup point — no attach-side unregister needed (an
        # unregister here would race the owner's and make the tracker warn).
        shm = shared_memory.SharedMemory(name=meta["name"])
        array = np.ndarray(
            tuple(meta["shape"]), dtype=np.dtype(meta["dtype"]), buffer=shm.buf
        )
        return cls(shm, array)

    def close(self) -> None:
        self.array = None
        self._shm.close()


class SharedCSR:
    """Zero-copy export of a numpy :class:`CSRGraph` plus a version stamp.

    The owner process exports the flat CSR arrays once; every worker
    process attaches the same physical pages (:class:`AttachedCSR`), so a
    graph of any size costs one resident copy no matter how many workers
    expand balls over it.  A one-slot int64 *stamp* segment carries the
    graph version: the owner rewrites it on dynamic mutations
    (:meth:`mark_stale` / re-export under a new version), and workers
    compare it against the version their task named before serving — an
    attached view can therefore never silently answer over a dead graph.
    """

    __slots__ = ("_indptr", "_indices", "_weights", "_stamp", "directed", "version")

    def __init__(self, indptr, indices, weights, stamp, directed: bool, version: int) -> None:
        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._stamp = stamp
        self.directed = directed
        self.version = version

    @classmethod
    def export(cls, csr: CSRGraph, *, version: int = 0) -> "SharedCSR":
        """Export a numpy-backed CSR view into shared memory."""
        import numpy as np

        _require_numpy_csr(csr)
        stamp = SharedArray.create(np.asarray([version], dtype=np.int64))
        return cls(
            SharedArray.create(csr.indptr),
            SharedArray.create(csr.indices),
            None if csr.weights is None else SharedArray.create(csr.weights),
            stamp,
            csr.directed,
            int(version),
        )

    def meta(self) -> dict:
        """Picklable descriptor for :meth:`AttachedCSR.attach`."""
        return {
            "indptr": self._indptr.meta(),
            "indices": self._indices.meta(),
            "weights": None if self._weights is None else self._weights.meta(),
            "stamp": self._stamp.meta(),
            "directed": self.directed,
            "version": self.version,
        }

    def mark_stale(self) -> None:
        """Flag every attached view dead (before unlinking a stale export)."""
        self._stamp.array[0] = STALE_STAMP

    def close(self) -> None:
        for segment in (self._indptr, self._indices, self._weights, self._stamp):
            if segment is not None:
                segment.close()

    def unlink(self) -> None:
        for segment in (self._indptr, self._indices, self._weights, self._stamp):
            if segment is not None:
                segment.unlink()


class AttachedCSR:
    """Worker-side :class:`CSRGraph` view over a :class:`SharedCSR` export."""

    __slots__ = ("csr", "version", "_segments", "_stamp")

    def __init__(self, csr: CSRGraph, version: int, segments, stamp) -> None:
        self.csr = csr
        self.version = version
        self._segments = segments
        self._stamp = stamp

    @classmethod
    def attach(cls, meta: dict) -> "AttachedCSR":
        indptr = AttachedArray.attach(meta["indptr"])
        indices = AttachedArray.attach(meta["indices"])
        weights = (
            None if meta["weights"] is None else AttachedArray.attach(meta["weights"])
        )
        stamp = AttachedArray.attach(meta["stamp"])
        csr = CSRGraph(
            indptr=indptr.array,
            indices=indices.array,
            weights=None if weights is None else weights.array,
            directed=bool(meta["directed"]),
        )
        segments = [s for s in (indptr, indices, weights) if s is not None]
        return cls(csr, int(meta["version"]), segments, stamp)

    def fresh(self) -> bool:
        """Whether the owner still stands behind this version."""
        return int(self._stamp.array[0]) == self.version

    def close(self) -> None:
        self.csr = None
        for segment in self._segments:
            segment.close()
        self._stamp.close()
