"""Graph substrate: storage, traversal, indexes, generators, and IO.

This package is the memory-resident network layer the paper assumes.  The
pieces most callers need are re-exported here:

* :class:`Graph` / :class:`GraphBuilder` — adjacency-list storage.
* :func:`hop_ball` — ``S_h(u)`` enumeration (the library's one BFS).
* :class:`DifferentialIndex` — the per-edge ``delta(v-u)`` index of Sec. III.
* :class:`NeighborhoodSizeIndex` — exact or estimated ``N(v)`` tables.
* generators — synthetic networks (see :mod:`repro.graph.generators`).
"""

from repro.graph.csr import CSRGraph, from_csr, to_csr
from repro.graph.diffindex import DifferentialIndex, build_differential_index
from repro.graph.generators import (
    barabasi_albert,
    citation_dag,
    erdos_renyi,
    powerlaw_cluster,
    ring_lattice,
    star_burst,
    watts_strogatz,
)
from repro.graph.graph import Graph, GraphBuilder
from repro.graph.io import parse_edge_list, read_edge_list, write_edge_list
from repro.graph.neighborhood import (
    NeighborhoodSizeIndex,
    exact_sizes,
    lower_estimate,
    upper_estimate,
)
from repro.graph.traversal import (
    TraversalCounter,
    ball_size,
    hop_ball,
    hop_ball_with_distances,
    hop_frontiers,
)
from repro.graph.validation import (
    connected_components,
    degree_histogram,
    validate_graph,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "CSRGraph",
    "to_csr",
    "from_csr",
    "DifferentialIndex",
    "build_differential_index",
    "NeighborhoodSizeIndex",
    "exact_sizes",
    "upper_estimate",
    "lower_estimate",
    "TraversalCounter",
    "hop_ball",
    "hop_ball_with_distances",
    "hop_frontiers",
    "ball_size",
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_cluster",
    "citation_dag",
    "star_burst",
    "ring_lattice",
    "watts_strogatz",
    "parse_edge_list",
    "read_edge_list",
    "write_edge_list",
    "validate_graph",
    "degree_histogram",
    "connected_components",
]
