"""Structural invariant checks for graphs.

These checks run in tests and at dataset-build time; they are deliberately
exhaustive rather than fast.  A graph that passes :func:`validate_graph` is a
simple graph with consistent adjacency — the precondition every algorithm in
:mod:`repro.core` assumes.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.errors import GraphBuildError
from repro.graph.graph import Graph

__all__ = ["validate_graph", "degree_histogram", "connected_components"]


def validate_graph(graph: Graph) -> None:
    """Raise :class:`GraphBuildError` unless ``graph`` is a simple graph.

    Checks: node ids in range, no self-loops, no duplicate arcs, and (for
    undirected graphs) adjacency symmetry.
    """
    n = graph.num_nodes
    for u in graph.nodes():
        nbrs = graph.neighbors(u)
        seen = set()
        for v in nbrs:
            if not (0 <= v < n):
                raise GraphBuildError(f"node {u} links to out-of-range node {v}")
            if v == u:
                raise GraphBuildError(f"self-loop on node {u}")
            if v in seen:
                raise GraphBuildError(f"duplicate arc ({u}, {v})")
            seen.add(v)
    if not graph.directed:
        neighbor_sets = [set(graph.neighbors(u)) for u in graph.nodes()]
        for u in graph.nodes():
            for v in graph.neighbors(u):
                if u not in neighbor_sets[v]:
                    raise GraphBuildError(
                        f"asymmetric adjacency: {u}->{v} present, {v}->{u} missing"
                    )


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    return dict(Counter(graph.degree(u) for u in graph.nodes()))


def connected_components(graph: Graph) -> List[List[int]]:
    """Connected components (weak components for directed graphs).

    Returned as lists of node ids, largest component first.
    """
    n = graph.num_nodes
    if graph.directed:
        undirected = graph.as_undirected()
    else:
        undirected = graph
    seen = [False] * n
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        stack = [start]
        component = [start]
        while stack:
            u = stack.pop()
            for v in undirected.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
                    component.append(v)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components
