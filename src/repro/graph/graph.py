"""In-memory adjacency-list graph store.

The paper assumes memory-resident networks ("We assume memory-resident large
networks, as having them on disk would not be practical in terms of graph
traversal", Sec. V).  This module provides that substrate: a compact,
integer-indexed adjacency structure with optional edge weights, supporting
both undirected and directed graphs.

Design notes
------------
* Nodes are dense integers ``0 .. n-1``.  External string/int labels are
  supported through an optional label table; all algorithm code works on the
  dense ids, which keeps the hot loops allocation-free.
* Adjacency is ``list[list[int]]``.  For the graph sizes this pure-Python
  reproduction targets (10^4 - 10^6 edges) this is faster to traverse from
  Python than numpy arrays, while :mod:`repro.graph.csr` offers a CSR export
  for vectorized consumers.
* Construction goes through :class:`GraphBuilder` (or the convenience
  classmethods) which validates input once; the resulting :class:`Graph` is
  immutable from the public API's point of view, so indexes built against it
  (differential index, neighborhood sizes) can never silently go stale.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EdgeNotFoundError, GraphBuildError, NodeNotFoundError

__all__ = ["Graph", "GraphBuilder"]

Edge = Tuple[int, int]
WeightedEdge = Tuple[int, int, float]


class Graph:
    """A memory-resident graph with dense integer node ids.

    Instances should be created via :class:`GraphBuilder`,
    :meth:`Graph.from_edges`, or the generators in
    :mod:`repro.graph.generators`; the constructor is considered internal.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` is the list of out-neighbors of ``u``.  For
        undirected graphs each edge appears in both endpoint lists.
    directed:
        Whether edges are one-way.
    weights:
        Optional parallel structure to ``adjacency`` holding per-edge weights.
        ``weights[u][i]`` is the weight of the edge to ``adjacency[u][i]``.
    labels:
        Optional external labels, ``labels[u]`` being the label of node ``u``.
    name:
        Optional human-readable dataset name (used in reports).
    """

    __slots__ = (
        "_adj",
        "_weights",
        "_directed",
        "_labels",
        "_label_to_id",
        "_num_edges",
        "name",
    )

    def __init__(
        self,
        adjacency: List[List[int]],
        *,
        directed: bool = False,
        weights: Optional[List[List[float]]] = None,
        labels: Optional[Sequence[Hashable]] = None,
        name: str = "",
    ) -> None:
        self._adj = adjacency
        self._directed = directed
        self._weights = weights
        self.name = name
        if labels is not None:
            if len(labels) != len(adjacency):
                raise GraphBuildError(
                    f"labels has {len(labels)} entries for {len(adjacency)} nodes"
                )
            self._labels: Optional[List[Hashable]] = list(labels)
            self._label_to_id: Optional[Dict[Hashable, int]] = {
                label: i for i, label in enumerate(self._labels)
            }
            if len(self._label_to_id) != len(self._labels):
                raise GraphBuildError("node labels must be unique")
        else:
            self._labels = None
            self._label_to_id = None
        arc_count = sum(len(nbrs) for nbrs in adjacency)
        self._num_edges = arc_count if directed else arc_count // 2

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        *,
        num_nodes: Optional[int] = None,
        directed: bool = False,
        name: str = "",
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` integer pairs.

        Self-loops and duplicate edges are rejected (the paper's neighborhood
        semantics are over simple graphs).  ``num_nodes`` may be given to
        include isolated trailing nodes.
        """
        builder = GraphBuilder(directed=directed, name=name)
        for u, v in edges:
            builder.add_edge(u, v)
        if num_nodes is not None:
            builder.ensure_node(num_nodes - 1)
        return builder.build()

    @classmethod
    def from_weighted_edges(
        cls,
        edges: Iterable[Tuple[int, int, float]],
        *,
        num_nodes: Optional[int] = None,
        directed: bool = False,
        name: str = "",
    ) -> "Graph":
        """Build a weighted graph from ``(u, v, weight)`` triples."""
        builder = GraphBuilder(directed=directed, weighted=True, name=name)
        for u, v, w in edges:
            builder.add_edge(u, v, weight=w)
        if num_nodes is not None:
            builder.ensure_node(num_nodes - 1)
        return builder.build()

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges (undirected edges counted once)."""
        return self._num_edges

    @property
    def directed(self) -> bool:
        """Whether the graph is directed."""
        return self._directed

    @property
    def weighted(self) -> bool:
        """Whether per-edge weights are stored."""
        return self._weights is not None

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, node: object) -> bool:
        return isinstance(node, int) and 0 <= node < len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "DiGraph" if self._directed else "Graph"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<repro.{kind}{label} nodes={self.num_nodes} edges={self.num_edges}>"
        )

    def nodes(self) -> range:
        """All node ids as a range (cheap, no allocation)."""
        return range(len(self._adj))

    def neighbors(self, u: int) -> Sequence[int]:
        """Out-neighbors of ``u`` (all neighbors for undirected graphs).

        The returned list is the live internal list; callers must not mutate
        it.  This avoids per-call copies in BFS hot loops.
        """
        self._check_node(u)
        return self._adj[u]

    def degree(self, u: int) -> int:
        """Out-degree of ``u`` (degree, for undirected graphs)."""
        self._check_node(u)
        return len(self._adj[u])

    def edges(self) -> Iterator[Edge]:
        """Iterate edges.  Undirected edges are yielded once, as ``u <= v``."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if self._directed or u <= v:
                    yield (u, v)

    def arcs(self) -> Iterator[Edge]:
        """Iterate directed arcs (both directions for undirected edges)."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the arc ``u -> v`` exists (edge, for undirected graphs)."""
        self._check_node(u)
        self._check_node(v)
        nbrs = self._adj[u]
        # Linear scan: adjacency lists in our workloads are short; building
        # per-node sets would double memory for a cold-path predicate.
        return v in nbrs

    def edge_weight(self, u: int, v: int, default: Optional[float] = None) -> float:
        """Weight of the arc ``u -> v``.

        Unweighted graphs report ``1.0`` for every existing edge.  A missing
        edge raises :class:`EdgeNotFoundError` unless ``default`` is given.
        """
        self._check_node(u)
        self._check_node(v)
        try:
            i = self._adj[u].index(v)
        except ValueError:
            if default is not None:
                return default
            raise EdgeNotFoundError(u, v) from None
        if self._weights is None:
            return 1.0
        return self._weights[u][i]

    def neighbor_weights(self, u: int) -> Sequence[float]:
        """Weights parallel to :meth:`neighbors`; all ``1.0`` if unweighted."""
        self._check_node(u)
        if self._weights is None:
            return [1.0] * len(self._adj[u])
        return self._weights[u]

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    @property
    def has_labels(self) -> bool:
        """Whether external node labels are attached."""
        return self._labels is not None

    def label_of(self, node: int) -> Hashable:
        """External label of ``node`` (the id itself when unlabeled)."""
        self._check_node(node)
        if self._labels is None:
            return node
        return self._labels[node]

    def id_of(self, label: Hashable) -> int:
        """Dense id of an external ``label``."""
        if self._label_to_id is None:
            if isinstance(label, int) and 0 <= label < len(self._adj):
                return label
            raise NodeNotFoundError(label)
        try:
            return self._label_to_id[label]
        except KeyError:
            raise NodeNotFoundError(label) from None

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def reversed(self) -> "Graph":
        """The graph with every arc reversed (self, if undirected)."""
        if not self._directed:
            return self
        radj: List[List[int]] = [[] for _ in self._adj]
        rweights: Optional[List[List[float]]]
        rweights = [[] for _ in self._adj] if self._weights is not None else None
        for u, nbrs in enumerate(self._adj):
            for i, v in enumerate(nbrs):
                radj[v].append(u)
                if rweights is not None:
                    assert self._weights is not None
                    rweights[v].append(self._weights[u][i])
        return Graph(
            radj,
            directed=True,
            weights=rweights,
            labels=self._labels,
            name=self.name,
        )

    def as_undirected(self) -> "Graph":
        """An undirected copy (direction dropped, parallel edges merged)."""
        if not self._directed:
            return self
        seen = [set() for _ in self._adj]  # type: List[set]
        adj: List[List[int]] = [[] for _ in self._adj]
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u == v:
                    continue
                if v not in seen[u]:
                    seen[u].add(v)
                    seen[v].add(u)
                    adj[u].append(v)
                    adj[v].append(u)
        return Graph(adj, directed=False, labels=self._labels, name=self.name)

    def subgraph(self, nodes: Iterable[int]) -> Tuple["Graph", List[int]]:
        """Induced subgraph on ``nodes``.

        Returns the subgraph (with dense re-numbered ids) and the list mapping
        new ids back to original ids.
        """
        keep = sorted(set(nodes))
        for node in keep:
            self._check_node(node)
        remap = {old: new for new, old in enumerate(keep)}
        adj: List[List[int]] = [[] for _ in keep]
        weights: Optional[List[List[float]]]
        weights = [[] for _ in keep] if self._weights is not None else None
        for new_u, old_u in enumerate(keep):
            for i, old_v in enumerate(self._adj[old_u]):
                new_v = remap.get(old_v)
                if new_v is None:
                    continue
                adj[new_u].append(new_v)
                if weights is not None:
                    assert self._weights is not None
                    weights[new_u].append(self._weights[old_u][i])
        labels = [self.label_of(old) for old in keep] if self.has_labels else None
        sub = Graph(
            adj,
            directed=self._directed,
            weights=weights,
            labels=labels,
            name=self.name,
        )
        return sub, keep

    def adjacency_copy(self) -> List[List[int]]:
        """A deep copy of the adjacency structure (for external mutation)."""
        return [list(nbrs) for nbrs in self._adj]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_node(self, u: int) -> None:
        if not (0 <= u < len(self._adj)):
            raise NodeNotFoundError(u)


class GraphBuilder:
    """Incremental, validating builder for :class:`Graph`.

    The builder owns all mutation: duplicate-edge and self-loop rejection,
    automatic node-id growth, and optional label interning.  ``build()``
    freezes the result into an immutable :class:`Graph`.

    Examples
    --------
    >>> b = GraphBuilder()
    >>> b.add_edge(0, 1)
    >>> b.add_edge(1, 2)
    >>> g = b.build()
    >>> g.num_nodes, g.num_edges
    (3, 2)
    """

    def __init__(
        self,
        *,
        directed: bool = False,
        weighted: bool = False,
        allow_duplicates: bool = False,
        name: str = "",
    ) -> None:
        self._directed = directed
        self._weighted = weighted
        self._allow_duplicates = allow_duplicates
        self._name = name
        self._adj: List[List[int]] = []
        self._weights: List[List[float]] = []
        self._edge_set: set = set()
        self._labels: List[Hashable] = []
        self._label_to_id: Dict[Hashable, int] = {}
        self._interning = False
        self._built = False

    @property
    def num_nodes(self) -> int:
        """Nodes added so far."""
        return len(self._adj)

    def ensure_node(self, node: int) -> None:
        """Grow the node table so ``node`` exists (ids are dense)."""
        if node < 0:
            raise GraphBuildError(f"node ids must be non-negative, got {node}")
        while len(self._adj) <= node:
            self._adj.append([])
            if self._weighted:
                self._weights.append([])

    def intern(self, label: Hashable) -> int:
        """Map an external label to a dense id, allocating on first use."""
        self._interning = True
        node = self._label_to_id.get(label)
        if node is None:
            node = len(self._labels)
            self._label_to_id[label] = node
            self._labels.append(label)
            self.ensure_node(node)
        return node

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add the edge ``u - v`` (arc ``u -> v`` if directed)."""
        if self._built:
            raise GraphBuildError("builder already built; create a new builder")
        if u == v:
            raise GraphBuildError(f"self-loop on node {u} is not allowed")
        if u < 0 or v < 0:
            raise GraphBuildError(f"node ids must be non-negative, got ({u}, {v})")
        key = (u, v) if self._directed else (min(u, v), max(u, v))
        if key in self._edge_set:
            if self._allow_duplicates:
                return
            raise GraphBuildError(f"duplicate edge ({u}, {v})")
        self._edge_set.add(key)
        self.ensure_node(max(u, v))
        self._adj[u].append(v)
        if self._weighted:
            self._weights[u].append(weight)
        if not self._directed:
            self._adj[v].append(u)
            if self._weighted:
                self._weights[v].append(weight)

    def add_labeled_edge(self, ulabel: Hashable, vlabel: Hashable, weight: float = 1.0) -> None:
        """Add an edge between two externally-labeled nodes."""
        self.add_edge(self.intern(ulabel), self.intern(vlabel), weight=weight)

    def build(self) -> Graph:
        """Freeze into an immutable :class:`Graph`."""
        if self._built:
            raise GraphBuildError("builder already built; create a new builder")
        self._built = True
        labels: Optional[List[Hashable]] = self._labels if self._interning else None
        return Graph(
            self._adj,
            directed=self._directed,
            weights=self._weights if self._weighted else None,
            labels=labels,
            name=self._name,
        )
