"""Breadth-first traversal primitives.

Everything in the paper reduces to enumerating ``S_h(u)``, the set of nodes
within ``h`` hops of ``u``.  This module implements that enumeration once,
carefully, and every algorithm (Base, LONA-Forward, LONA-Backward, the
distributed engine) reuses it, so correctness is concentrated in one place.

The closed-ball convention (see DESIGN.md Sec. 1): ``S_h(u)`` *includes* the
center ``u`` itself, which is 0 hops from itself.  Callers that need the open
ball pass ``include_self=False``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph

__all__ = [
    "hop_ball",
    "hop_ball_csr",
    "hop_ball_with_distances",
    "hop_frontiers",
    "ball_size",
    "TraversalCounter",
]


class TraversalCounter:
    """Mutable counter threaded through traversals for cost accounting.

    The paper's cost argument is in terms of *edges accessed* (Sec. II:
    "the number of edges to be accessed could be around m^h |V|").  Wall-clock
    time in pure Python is noisy; edge/node counters give a deterministic,
    machine-independent measure that the test-suite and benchmark reports both
    use alongside timings.
    """

    __slots__ = ("edges_scanned", "nodes_visited", "balls_expanded")

    def __init__(self) -> None:
        self.edges_scanned = 0
        self.nodes_visited = 0
        self.balls_expanded = 0

    def merge(self, other: "TraversalCounter") -> None:
        """Accumulate another counter into this one."""
        self.edges_scanned += other.edges_scanned
        self.nodes_visited += other.nodes_visited
        self.balls_expanded += other.balls_expanded

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view for reports."""
        return {
            "edges_scanned": self.edges_scanned,
            "nodes_visited": self.nodes_visited,
            "balls_expanded": self.balls_expanded,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraversalCounter(edges={self.edges_scanned}, "
            f"nodes={self.nodes_visited}, balls={self.balls_expanded})"
        )


def _check_hops(hops: int) -> None:
    if hops < 0:
        raise InvalidParameterError(f"hops must be >= 0, got {hops}")


def hop_ball(
    graph: Graph,
    center: int,
    hops: int,
    *,
    include_self: bool = True,
    counter: Optional[TraversalCounter] = None,
) -> Set[int]:
    """Return ``S_h(center)``: all nodes within ``hops`` hops of ``center``.

    Runs a plain BFS truncated at depth ``hops``.  The result is a fresh set
    owned by the caller.

    Parameters
    ----------
    graph: the graph to traverse (out-edges are followed if directed).
    center: the ball's center node.
    hops: the radius ``h`` (0 gives ``{center}`` / the empty set).
    include_self: whether the center belongs to its own ball (default, and
        the convention used throughout the library).
    counter: optional :class:`TraversalCounter` for cost accounting.
    """
    _check_hops(hops)
    graph._check_node(center)
    visited: Set[int] = {center}
    if hops > 0:
        edges = 0
        frontier = [center]
        for _ in range(hops):
            next_frontier: List[int] = []
            for u in frontier:
                for v in graph._adj[u]:
                    edges += 1
                    if v not in visited:
                        visited.add(v)
                        next_frontier.append(v)
            if not next_frontier:
                break
            frontier = next_frontier
        if counter is not None:
            counter.edges_scanned += edges
    if counter is not None:
        counter.nodes_visited += len(visited)
        counter.balls_expanded += 1
    if not include_self:
        visited.discard(center)
    return visited


def hop_ball_csr(
    csr,
    center: int,
    hops: int,
    *,
    include_self: bool = True,
    counter: Optional[TraversalCounter] = None,
):
    """:func:`hop_ball` over a numpy-backed CSR view (numpy required).

    Returns a *sorted* ``numpy.int64`` array instead of a set — the
    canonical member order the vectorized backend aggregates in.  Work is
    charged to ``counter`` with the same conventions as :func:`hop_ball`.
    Callers expanding many balls should hold a
    :class:`~repro.graph.csr.CSRBallCache` instead, which reuses its
    visited-marking array (and optionally the balls) across expansions.
    """
    from repro.graph.csr import CSRBallCache

    _check_hops(hops)
    expander = CSRBallCache(
        csr, hops, include_self=include_self, cached=False, counter=counter
    )
    return expander.ball(center)


def hop_ball_with_distances(
    graph: Graph,
    center: int,
    hops: int,
    *,
    include_self: bool = True,
    counter: Optional[TraversalCounter] = None,
) -> Dict[int, int]:
    """Like :func:`hop_ball` but mapping each node to its hop distance.

    Needed for distance-weighted aggregation (the paper's footnote 1 weights
    a neighbor's score by the inverse of the shortest distance).
    """
    _check_hops(hops)
    graph._check_node(center)
    dist: Dict[int, int] = {center: 0}
    if hops > 0:
        queue = deque([center])
        edges = 0
        while queue:
            u = queue.popleft()
            du = dist[u]
            if du == hops:
                continue
            for v in graph._adj[u]:
                edges += 1
                if v not in dist:
                    dist[v] = du + 1
                    queue.append(v)
        if counter is not None:
            counter.edges_scanned += edges
    if counter is not None:
        counter.nodes_visited += len(dist)
        counter.balls_expanded += 1
    if not include_self:
        del dist[center]
    return dist


def hop_frontiers(
    graph: Graph,
    center: int,
    hops: int,
) -> Iterator[Tuple[int, List[int]]]:
    """Yield ``(distance, frontier_nodes)`` pairs, distance 0 first.

    The distance-0 frontier is ``[center]``.  Iteration stops early when a
    frontier is empty (the ball has been exhausted before ``hops``).
    """
    _check_hops(hops)
    graph._check_node(center)
    visited: Set[int] = {center}
    frontier = [center]
    yield 0, frontier
    for d in range(1, hops + 1):
        next_frontier: List[int] = []
        for u in frontier:
            for v in graph._adj[u]:
                if v not in visited:
                    visited.add(v)
                    next_frontier.append(v)
        if not next_frontier:
            return
        frontier = next_frontier
        yield d, frontier


def ball_size(graph: Graph, center: int, hops: int, *, include_self: bool = True) -> int:
    """``N(center) = |S_h(center)|`` computed by direct BFS."""
    return len(hop_ball(graph, center, hops, include_self=include_self))
