"""Structural graph statistics.

Used three ways in this repository:

* the dataset tests assert each stand-in matches its paper profile
  (degree shape, clustering, component structure);
* the cost-based planner (:mod:`repro.core.planner`) estimates algorithm
  costs from cheap statistics instead of full traversals;
* the reports in EXPERIMENTS.md quote them when explaining pruning
  behaviour.

Everything here is exact and dependency-free; the sampled variants exist
for statistics whose exact computation would itself cost a full Base scan
(ball sizes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.traversal import hop_ball
from repro.graph.validation import connected_components

__all__ = [
    "DegreeStats",
    "degree_stats",
    "clustering_coefficient",
    "average_clustering",
    "sample_ball_sizes",
    "BallSizeStats",
    "ball_size_stats",
    "component_stats",
    "GraphProfile",
    "profile_graph",
]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float
    gini: float

    def is_heavy_tailed(self) -> bool:
        """Heuristic: max degree an order of magnitude above the median."""
        return self.maximum >= 10 * max(self.median, 1.0)


def _median(sorted_values: Sequence[float]) -> float:
    n = len(sorted_values)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return float(sorted_values[mid])
    return (sorted_values[mid - 1] + sorted_values[mid]) / 2.0


def _gini(sorted_values: Sequence[float]) -> float:
    """Gini coefficient of a sorted non-negative sequence (0 = uniform)."""
    n = len(sorted_values)
    total = sum(sorted_values)
    if n == 0 or total == 0:
        return 0.0
    cumulative = 0.0
    weighted = 0.0
    for i, value in enumerate(sorted_values, start=1):
        cumulative += value
        weighted += i * value
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def degree_stats(graph: Graph) -> DegreeStats:
    """Exact degree distribution summary."""
    degrees = sorted(graph.degree(u) for u in graph.nodes())
    if not degrees:
        return DegreeStats(0, 0, 0.0, 0.0, 0.0)
    return DegreeStats(
        minimum=degrees[0],
        maximum=degrees[-1],
        mean=sum(degrees) / len(degrees),
        median=_median(degrees),
        gini=_gini([float(d) for d in degrees]),
    )


def clustering_coefficient(graph: Graph, node: int) -> float:
    """Local clustering coefficient of ``node`` (0 for degree < 2)."""
    nbrs = list(graph.neighbors(node))
    k = len(nbrs)
    if k < 2:
        return 0.0
    nbr_set = set(nbrs)
    links = 0
    for v in nbrs:
        for w in graph.neighbors(v):
            if w in nbr_set:
                links += 1
    # each triangle edge counted twice (v->w and w->v)
    return links / (k * (k - 1))


def average_clustering(
    graph: Graph, *, sample: Optional[int] = None, seed: Optional[int] = None
) -> float:
    """Mean local clustering, optionally over a random node sample."""
    nodes: Sequence[int] = range(graph.num_nodes)
    if sample is not None:
        if sample < 1:
            raise InvalidParameterError(f"sample must be >= 1, got {sample}")
        rng = random.Random(seed)
        nodes = rng.sample(range(graph.num_nodes), min(sample, graph.num_nodes))
    if not nodes:
        return 0.0
    return sum(clustering_coefficient(graph, u) for u in nodes) / len(nodes)


@dataclass(frozen=True)
class BallSizeStats:
    """Summary of sampled h-hop ball sizes."""

    hops: int
    sample_size: int
    minimum: int
    maximum: int
    mean: float
    median: float
    gini: float


def sample_ball_sizes(
    graph: Graph,
    hops: int,
    *,
    sample: int = 200,
    seed: Optional[int] = None,
    include_self: bool = True,
) -> List[int]:
    """Ball sizes of a uniform node sample (exact per sampled node)."""
    if sample < 1:
        raise InvalidParameterError(f"sample must be >= 1, got {sample}")
    if graph.num_nodes == 0:
        return []
    rng = random.Random(seed)
    nodes = rng.sample(range(graph.num_nodes), min(sample, graph.num_nodes))
    return [
        len(hop_ball(graph, u, hops, include_self=include_self)) for u in nodes
    ]


def ball_size_stats(
    graph: Graph,
    hops: int,
    *,
    sample: int = 200,
    seed: Optional[int] = None,
) -> BallSizeStats:
    """Summary statistics of sampled h-hop ball sizes."""
    sizes = sorted(sample_ball_sizes(graph, hops, sample=sample, seed=seed))
    if not sizes:
        return BallSizeStats(hops, 0, 0, 0, 0.0, 0.0, 0.0)
    return BallSizeStats(
        hops=hops,
        sample_size=len(sizes),
        minimum=sizes[0],
        maximum=sizes[-1],
        mean=sum(sizes) / len(sizes),
        median=_median(sizes),
        gini=_gini([float(s) for s in sizes]),
    )


def component_stats(graph: Graph) -> Tuple[int, int, float]:
    """``(component_count, largest_size, largest_fraction)``."""
    components = connected_components(graph)
    if not components:
        return 0, 0, 0.0
    largest = len(components[0])
    return len(components), largest, largest / graph.num_nodes


@dataclass(frozen=True)
class GraphProfile:
    """One-stop structural profile used by the planner and reports."""

    num_nodes: int
    num_edges: int
    directed: bool
    degrees: DegreeStats
    clustering: float
    balls: BallSizeStats
    num_components: int
    largest_component_fraction: float

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        return "\n".join(
            [
                f"nodes={self.num_nodes} edges={self.num_edges} "
                f"directed={self.directed}",
                f"degree: min={self.degrees.minimum} "
                f"median={self.degrees.median:.1f} mean={self.degrees.mean:.1f} "
                f"max={self.degrees.maximum} gini={self.degrees.gini:.2f}",
                f"clustering≈{self.clustering:.3f}",
                f"{self.balls.hops}-hop balls (n={self.balls.sample_size}): "
                f"median={self.balls.median:.0f} mean={self.balls.mean:.0f} "
                f"max={self.balls.maximum} gini={self.balls.gini:.2f}",
                f"components={self.num_components} "
                f"(largest {self.largest_component_fraction:.0%})",
            ]
        )


def profile_graph(
    graph: Graph,
    hops: int = 2,
    *,
    sample: int = 200,
    seed: Optional[int] = 0,
) -> GraphProfile:
    """Compute the full structural profile (sampled where exactness is a scan)."""
    comp_count, _largest, largest_fraction = component_stats(graph)
    return GraphProfile(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        directed=graph.directed,
        degrees=degree_stats(graph),
        clustering=average_clustering(
            graph, sample=min(sample, max(graph.num_nodes, 1)), seed=seed
        ),
        balls=ball_size_stats(graph, hops, sample=sample, seed=seed),
        num_components=comp_count,
        largest_component_fraction=largest_fraction,
    )
