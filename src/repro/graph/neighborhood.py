"""Neighborhood-size indexes: exact ``N(v)`` and index-free estimates.

Both LONA bound formulas consume ``N(v) = |S_h(v)|``:

* Eq. 1 (forward):  ``Fbar_sum(v) = min(F(u) + delta(v-u), N(v) - 1 + f(v))``
* Eq. 3 (backward): ``Fbar_sum(v) = PS(v) + bound_rest * (N(v) - 1 - l) + f(v)``

LONA-Forward already pays for an offline index pass (the differential index),
so an exact ``N`` table is free there.  LONA-Backward is advertised as
index-free, so this module also provides *estimates* computable in one pass
over the edges:

* :func:`upper_estimate` — ``N_ub(v) >= N(v)``, safe wherever ``N`` appears
  with a non-negative coefficient in an upper bound (Eqs. 1 and 3).
* :func:`lower_estimate` — ``N_lb(v) <= N(v)``, safe as the denominator when
  converting a SUM upper bound into an AVG upper bound (Eq. 2).

The estimates are exact for h <= 1 and become upper/lower bounds for h >= 2
via degree-sum arguments (see each function's docstring).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.traversal import TraversalCounter, hop_ball

__all__ = [
    "NeighborhoodSizeIndex",
    "exact_sizes",
    "upper_estimate",
    "lower_estimate",
]


def exact_sizes(
    graph: Graph,
    hops: int,
    *,
    include_self: bool = True,
    counter: Optional[TraversalCounter] = None,
) -> List[int]:
    """Exact ``N(v)`` for every node, by one truncated BFS per node.

    Cost is the same as one full Base scan, which is why this is an *offline*
    index build, done once per (graph, h) and reused across queries — the
    same amortization argument the paper makes for the differential index.
    """
    if hops < 0:
        raise InvalidParameterError(f"hops must be >= 0, got {hops}")
    return [
        len(hop_ball(graph, u, hops, include_self=include_self, counter=counter))
        for u in graph.nodes()
    ]


def upper_estimate(graph: Graph, hops: int, *, include_self: bool = True) -> List[int]:
    """Index-free upper bound on ``N(v)``, one pass over the edges.

    Derivation: the number of *distinct* nodes within ``h`` hops is at most
    the number of BFS tree slots,

    ``N_ub(v) = 1 + deg(v) + sum_{w in nbrs(v)} (deg(w) - b) + ...``

    where ``b = 1`` on undirected graphs (each non-root BFS node spends one
    adjacency slot on the edge back to its parent) and ``b = 0`` on directed
    graphs (out-arcs carry no such back-edge, so every out-neighbor of a
    level-1 node may be new — subtracting 1 there would *under*-estimate and
    break bound soundness).  Levels 1 and 2 expand exactly from degrees; the
    remaining levels are bounded with the maximum degree.  Always
    ``>= N(v)``; also capped at ``num_nodes``, a trivially valid bound.
    """
    if hops < 0:
        raise InvalidParameterError(f"hops must be >= 0, got {hops}")
    n = graph.num_nodes
    self_count = 1 if include_self else 0
    cap = n if include_self else max(n - 1, 0)
    if hops == 0:
        return [self_count] * n
    degrees = [graph.degree(u) for u in graph.nodes()]
    max_degree = max(degrees, default=0)
    back_edge = 0 if graph.directed else 1
    branch = max(max_degree - back_edge, 0)
    estimates: List[int] = []
    for u in graph.nodes():
        total = self_count + degrees[u]
        if hops >= 2:
            level = sum(
                max(degrees[v] - back_edge, 0) for v in graph.neighbors(u)
            )
            total += level
            # Levels 3..h: each level-(i) node contributes at most `branch`
            # new nodes.
            for _ in range(3, hops + 1):
                level *= branch
                total += level
                if total >= cap:
                    break
        estimates.append(min(total, cap))
    return estimates


def lower_estimate(graph: Graph, hops: int, *, include_self: bool = True) -> List[int]:
    """Index-free lower bound on ``N(v)``: the (closed) 1-hop size.

    For ``h >= 1`` the h-hop ball contains the 1-hop ball, so
    ``N_lb(v) = [self] + deg(v) <= N(v)`` — except on directed graphs, where
    out-neighbors may repeat... they cannot: adjacency lists are duplicate-
    free, so out-degree counts distinct 1-hop nodes there too.
    """
    if hops < 0:
        raise InvalidParameterError(f"hops must be >= 0, got {hops}")
    self_count = 1 if include_self else 0
    if hops == 0:
        return [self_count] * graph.num_nodes
    return [self_count + graph.degree(u) for u in graph.nodes()]


class NeighborhoodSizeIndex:
    """Per-node ``N(v)`` table with sound upper/lower views.

    Three construction modes:

    * :meth:`exact` — offline BFS index (used by LONA-Forward, whose offline
      pass already exists for the differential index).
    * :meth:`estimated` — index-free degree-based bounds (used by
      LONA-Backward when run without any precomputation).
    * the constructor — from explicit arrays, for tests.

    The query-time contract is:

    * ``upper(v)`` is always ``>= N(v)``,
    * ``lower(v)`` is always ``<= N(v)``,
    * when exact, both equal ``N(v)``.
    """

    __slots__ = ("_upper", "_lower", "_exact", "hops", "include_self")

    def __init__(
        self,
        upper: Sequence[int],
        lower: Sequence[int],
        *,
        hops: int,
        include_self: bool = True,
        exact: bool = False,
    ) -> None:
        if len(upper) != len(lower):
            raise InvalidParameterError(
                f"upper/lower length mismatch: {len(upper)} vs {len(lower)}"
            )
        for ub, lb in zip(upper, lower):
            if lb > ub:
                raise InvalidParameterError(
                    f"lower estimate {lb} exceeds upper estimate {ub}"
                )
        self._upper = list(upper)
        self._lower = list(lower)
        self._exact = exact
        self.hops = hops
        self.include_self = include_self

    @classmethod
    def exact(
        cls,
        graph: Graph,
        hops: int,
        *,
        include_self: bool = True,
        counter: Optional[TraversalCounter] = None,
    ) -> "NeighborhoodSizeIndex":
        """Build the exact index by BFS (offline pass)."""
        sizes = exact_sizes(graph, hops, include_self=include_self, counter=counter)
        return cls(sizes, sizes, hops=hops, include_self=include_self, exact=True)

    @classmethod
    def estimated(
        cls, graph: Graph, hops: int, *, include_self: bool = True
    ) -> "NeighborhoodSizeIndex":
        """Build index-free degree-based estimates (no BFS)."""
        return cls(
            upper_estimate(graph, hops, include_self=include_self),
            lower_estimate(graph, hops, include_self=include_self),
            hops=hops,
            include_self=include_self,
            exact=False,
        )

    @property
    def is_exact(self) -> bool:
        """Whether upper and lower coincide with the true ``N``."""
        return self._exact

    def __len__(self) -> int:
        return len(self._upper)

    def upper(self, node: int) -> int:
        """Sound upper bound on ``N(node)``."""
        return self._upper[node]

    def upper_values(self) -> Sequence[int]:
        """The whole upper-bound table (read-only; for bulk/vectorized use)."""
        return self._upper

    def lower_values(self) -> Sequence[int]:
        """The whole lower-bound table (read-only; for bulk/vectorized use)."""
        return self._lower

    def lower(self, node: int) -> int:
        """Sound lower bound on ``N(node)``."""
        return self._lower[node]

    def value(self, node: int) -> int:
        """Exact ``N(node)``; raises unless :attr:`is_exact`."""
        if not self._exact:
            raise InvalidParameterError(
                "exact N requested from an estimated NeighborhoodSizeIndex"
            )
        return self._upper[node]
