"""Synthetic graph generators, implemented from scratch.

The paper evaluates on three real networks that are not redistributable here
(see DESIGN.md Sec. 3); :mod:`repro.datasets` composes the generators below
into structural stand-ins.  The generators themselves are general-purpose and
part of the public substrate:

* :func:`erdos_renyi` — G(n, m) uniform random graphs.
* :func:`barabasi_albert` — preferential attachment (heavy-tailed degrees).
* :func:`powerlaw_cluster` — Holme-Kim: preferential attachment + triad
  closure, giving the power-law + high-clustering shape of collaboration
  networks.
* :func:`citation_dag` — time-ordered preferential attachment with each new
  paper citing ``m`` earlier ones (directed, acyclic).
* :func:`star_burst` — a forest of heavy-tailed stars plus random cross
  links, mimicking attacker->victim intrusion traffic (few scanners hitting
  many hosts, most hosts touched once or twice).
* :func:`ring_lattice` / :func:`watts_strogatz` — small-world controls used
  in tests and ablations.

All randomness is drawn from an explicit ``random.Random(seed)``; no function
touches global random state, so every dataset is reproducible from its seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_cluster",
    "citation_dag",
    "star_burst",
    "ring_lattice",
    "watts_strogatz",
]


def _new_rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def _edges_to_graph(
    n: int, edges: Set[Tuple[int, int]], *, directed: bool, name: str
) -> Graph:
    adj: List[List[int]] = [[] for _ in range(n)]
    for u, v in edges:
        adj[u].append(v)
        if not directed:
            adj[v].append(u)
    return Graph(adj, directed=directed, name=name)


def erdos_renyi(
    n: int, m: int, *, seed: Optional[int] = None, name: str = "erdos_renyi"
) -> Graph:
    """Uniform random simple graph with exactly ``n`` nodes and ``m`` edges."""
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    max_edges = n * (n - 1) // 2
    if m < 0 or m > max_edges:
        raise InvalidParameterError(
            f"m must be in [0, {max_edges}] for n={n}, got {m}"
        )
    rng = _new_rng(seed)
    edges: Set[Tuple[int, int]] = set()
    while len(edges) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if u > v:
            u, v = v, u
        edges.add((u, v))
    return _edges_to_graph(n, edges, directed=False, name=name)


def _preferential_targets(
    rng: random.Random, repeated: List[int], count: int, forbidden: Set[int]
) -> Set[int]:
    """Sample ``count`` distinct targets proportionally to degree.

    ``repeated`` holds each existing node once per incident edge endpoint, so
    uniform sampling from it is degree-proportional sampling — the standard
    O(1)-per-draw preferential-attachment trick.
    """
    targets: Set[int] = set()
    # The forbidden set (the new node itself) can never exhaust `repeated`
    # because repeated only contains older nodes.
    while len(targets) < count:
        candidate = repeated[rng.randrange(len(repeated))]
        if candidate not in forbidden:
            targets.add(candidate)
    return targets


def barabasi_albert(
    n: int, m: int, *, seed: Optional[int] = None, name: str = "barabasi_albert"
) -> Graph:
    """Barabasi-Albert preferential attachment: each new node links to ``m``
    existing nodes chosen proportionally to their degree.

    Produces the power-law degree distribution characteristic of citation and
    collaboration networks.  Requires ``1 <= m < n``.
    """
    if m < 1 or m >= max(n, 1):
        raise InvalidParameterError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = _new_rng(seed)
    edges: Set[Tuple[int, int]] = set()
    # Seed with a star on the first m+1 nodes so every node has degree >= 1.
    repeated: List[int] = []
    for v in range(1, m + 1):
        edges.add((0, v))
        repeated.extend((0, v))
    for u in range(m + 1, n):
        targets = _preferential_targets(rng, repeated, m, {u})
        for v in targets:
            edges.add((min(u, v), max(u, v)))
            repeated.extend((u, v))
    return _edges_to_graph(n, edges, directed=False, name=name)


def powerlaw_cluster(
    n: int,
    m: int,
    triangle_prob: float,
    *,
    seed: Optional[int] = None,
    heavy_tail: bool = False,
    name: str = "powerlaw_cluster",
) -> Graph:
    """Holme-Kim growing graph: preferential attachment with triad closure.

    Like :func:`barabasi_albert`, but after each preferential link to ``v``
    the next link is, with probability ``triangle_prob``, made to a random
    neighbor of ``v`` (closing a triangle).  Yields power-law degrees *and*
    the high clustering measured in collaboration networks, the structural
    property that makes h-hop balls of adjacent nodes overlap heavily — the
    exact property LONA-Forward's differential index exploits.

    ``heavy_tail=True`` draws each arriving node's link count from a
    geometric distribution with mean ``m`` (min 1, capped at ``4 m``)
    instead of the constant ``m``.  Real collaboration networks have a large
    population of degree-1/degree-2 authors alongside the hubs; that
    low-degree mass produces the small, nested neighborhoods whose bounds
    LONA's pruning feeds on, so the stand-in datasets enable it.
    """
    if m < 1 or m >= max(n, 1):
        raise InvalidParameterError(f"need 1 <= m < n, got m={m}, n={n}")
    if not 0.0 <= triangle_prob <= 1.0:
        raise InvalidParameterError(
            f"triangle_prob must be in [0, 1], got {triangle_prob}"
        )
    rng = _new_rng(seed)
    edges: Set[Tuple[int, int]] = set()
    adj: List[Set[int]] = [set() for _ in range(n)]
    repeated: List[int] = []

    def connect(u: int, v: int) -> bool:
        if u == v:
            return False
        key = (min(u, v), max(u, v))
        if key in edges:
            return False
        edges.add(key)
        adj[u].add(v)
        adj[v].add(u)
        repeated.extend((u, v))
        return True

    for v in range(1, m + 1):
        connect(0, v)
    for u in range(m + 1, n):
        links = m
        if heavy_tail:
            links = min(_geometric(rng, 1.0 / m), 4 * m, u)
        made = 0
        last_target: Optional[int] = None
        guard = 0
        while made < links and guard < 50 * links + 100:
            guard += 1
            if (
                last_target is not None
                and adj[last_target]
                and rng.random() < triangle_prob
            ):
                candidate = rng.choice(sorted(adj[last_target]))
            else:
                candidate = repeated[rng.randrange(len(repeated))]
            if connect(u, candidate):
                made += 1
                last_target = candidate
        # Degenerate corner (tiny dense graphs): fall back to any free slot.
        if made < links:
            for candidate in range(u):
                if made >= links:
                    break
                if connect(u, candidate):
                    made += 1
    return _edges_to_graph(n, edges, directed=False, name=name)


def citation_dag(
    n: int,
    m: int,
    *,
    seed: Optional[int] = None,
    recency_bias: float = 0.3,
    heavy_tail: bool = False,
    name: str = "citation_dag",
) -> Graph:
    """Directed acyclic citation-style graph.

    Nodes arrive in id order; node ``u`` cites ``m`` earlier nodes, mixing
    preferential attachment (popular papers accumulate citations — power-law
    in-degree) with a recency bias (papers mostly cite the recent
    literature).  ``recency_bias`` is the probability a citation is drawn
    uniformly from the most recent window rather than preferentially.
    Arcs point from citing node to cited node (so out-edges = references).

    ``heavy_tail=True`` draws each paper's reference count from a geometric
    with mean ``m`` (min 1, capped at ``6 m``) instead of the constant ``m``
    — real reference lists range from a couple of citations to hundreds, and
    that spread is what creates the neighborhood-size diversity the paper's
    pruning exploits.
    """
    if m < 1 or m >= max(n, 1):
        raise InvalidParameterError(f"need 1 <= m < n, got m={m}, n={n}")
    if not 0.0 <= recency_bias <= 1.0:
        raise InvalidParameterError(
            f"recency_bias must be in [0, 1], got {recency_bias}"
        )
    rng = _new_rng(seed)
    edges: Set[Tuple[int, int]] = set()
    repeated: List[int] = list(range(min(m + 1, n)))
    window = max(4 * m, 16)
    for u in range(1, n):
        cites = min(m, u)
        if heavy_tail:
            cites = min(_geometric(rng, 1.0 / m), 6 * m, u)
        chosen: Set[int] = set()
        guard = 0
        while len(chosen) < cites and guard < 50 * cites + 100:
            guard += 1
            if rng.random() < recency_bias:
                lo = max(0, u - window)
                candidate = rng.randrange(lo, u)
            else:
                candidate = repeated[rng.randrange(len(repeated))]
                if candidate >= u:
                    continue
            chosen.add(candidate)
        for v in chosen:
            edges.add((u, v))
            repeated.extend((u, v))
    return _edges_to_graph(n, edges, directed=True, name=name)


def star_burst(
    n: int,
    *,
    num_hubs: int,
    hub_degree_mean: float,
    cross_link_fraction: float = 0.05,
    seed: Optional[int] = None,
    name: str = "star_burst",
) -> Graph:
    """Heavy-tailed star forest with sparse cross links (intrusion shape).

    ``num_hubs`` attacker nodes each touch a geometric-distributed number of
    victim nodes (mean ``hub_degree_mean``); victims are drawn uniformly, so
    a few victims are hit by several attackers.  A further
    ``cross_link_fraction * n`` uniform random edges connect the bursts the
    way shared infrastructure does in IP traffic graphs.  The result matches
    the paper's intrusion network profile: very low average degree, a few
    huge hubs, many small components.
    """
    if n < 2:
        raise InvalidParameterError(f"n must be >= 2, got {n}")
    if num_hubs < 1 or num_hubs > n:
        raise InvalidParameterError(
            f"num_hubs must be in [1, {n}], got {num_hubs}"
        )
    if hub_degree_mean <= 0:
        raise InvalidParameterError(
            f"hub_degree_mean must be > 0, got {hub_degree_mean}"
        )
    if not 0.0 <= cross_link_fraction <= 1.0:
        raise InvalidParameterError(
            f"cross_link_fraction must be in [0, 1], got {cross_link_fraction}"
        )
    rng = _new_rng(seed)
    edges: Set[Tuple[int, int]] = set()
    hubs = rng.sample(range(n), num_hubs)
    geometric_p = 1.0 / hub_degree_mean
    for hub in hubs:
        # Geometric number of victims, heavy right tail via mixture: 10% of
        # hubs are "mass scanners" with 10x the mean.
        mean = hub_degree_mean * (10.0 if rng.random() < 0.1 else 1.0)
        p = min(1.0, 1.0 / mean) if mean > 0 else geometric_p
        victims = _geometric(rng, p)
        for _ in range(victims):
            v = rng.randrange(n)
            if v == hub:
                continue
            edges.add((min(hub, v), max(hub, v)))
    cross = int(cross_link_fraction * n)
    attempts = 0
    while cross > 0 and attempts < 20 * n:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in edges:
            continue
        edges.add(key)
        cross -= 1
    return _edges_to_graph(n, edges, directed=False, name=name)


def coauthorship(
    n: int,
    *,
    papers_per_author: float = 1.4,
    team_mean: float = 3.0,
    max_team: int = 10,
    prolific_bias: float = 0.6,
    seed: Optional[int] = None,
    name: str = "coauthorship",
) -> Graph:
    """Collaboration network via bipartite paper-author projection.

    Generates ``round(papers_per_author * n)`` papers; each paper gets a
    geometric team size (mean ``team_mean``, capped at ``max_team``) whose
    members are drawn preferentially by publication count with probability
    ``prolific_bias`` (prolific authors keep publishing) and uniformly
    otherwise (newcomers).  Each paper contributes a clique among its
    authors — the defining structure of co-authorship data.

    Compared to edge-rewiring models, the projection reproduces the three
    properties of cond-mat-2005 that matter to LONA: (i) heavy-tailed
    degrees with a large degree-1/2 population, (ii) very high clustering,
    and (iii) near-duplicate neighborhoods *within* a paper's clique, which
    is precisely when the differential index ``delta(v-u) = |S(v)\\S(u)|``
    approaches zero and forward pruning propagates through whole teams.
    """
    if n < 2:
        raise InvalidParameterError(f"n must be >= 2, got {n}")
    if papers_per_author <= 0:
        raise InvalidParameterError(
            f"papers_per_author must be > 0, got {papers_per_author}"
        )
    if team_mean < 1.0:
        raise InvalidParameterError(f"team_mean must be >= 1, got {team_mean}")
    if max_team < 2:
        raise InvalidParameterError(f"max_team must be >= 2, got {max_team}")
    if not 0.0 <= prolific_bias <= 1.0:
        raise InvalidParameterError(
            f"prolific_bias must be in [0, 1], got {prolific_bias}"
        )
    rng = _new_rng(seed)
    num_papers = max(1, round(papers_per_author * n))
    edges: Set[Tuple[int, int]] = set()
    # Degree-proportional sampling over publication counts, seeded so every
    # author can be drawn at least once.
    repeated: List[int] = list(range(n))
    team_p = 1.0 / team_mean
    for _ in range(num_papers):
        size = min(_geometric(rng, team_p), max_team, n)
        team: Set[int] = set()
        guard = 0
        while len(team) < size and guard < 50 * size + 20:
            guard += 1
            if rng.random() < prolific_bias:
                candidate = repeated[rng.randrange(len(repeated))]
            else:
                candidate = rng.randrange(n)
            team.add(candidate)
        members = sorted(team)
        for member in members:
            repeated.append(member)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                edges.add((u, v))
    return _edges_to_graph(n, edges, directed=False, name=name)


def ring_lattice(n: int, k: int, *, name: str = "ring_lattice") -> Graph:
    """Ring where each node links to its ``k`` nearest neighbors each side."""
    if n < 3:
        raise InvalidParameterError(f"n must be >= 3, got {n}")
    if k < 1 or 2 * k >= n:
        raise InvalidParameterError(f"need 1 <= k and 2k < n, got k={k}, n={n}")
    edges: Set[Tuple[int, int]] = set()
    for u in range(n):
        for offset in range(1, k + 1):
            v = (u + offset) % n
            edges.add((min(u, v), max(u, v)))
    return _edges_to_graph(n, edges, directed=False, name=name)


def watts_strogatz(
    n: int,
    k: int,
    rewire_prob: float,
    *,
    seed: Optional[int] = None,
    name: str = "watts_strogatz",
) -> Graph:
    """Watts-Strogatz small world: ring lattice with random rewiring."""
    if not 0.0 <= rewire_prob <= 1.0:
        raise InvalidParameterError(
            f"rewire_prob must be in [0, 1], got {rewire_prob}"
        )
    base = ring_lattice(n, k)
    rng = _new_rng(seed)
    edges: Set[Tuple[int, int]] = set(base.edges())
    for u, v in sorted(edges):
        if rng.random() >= rewire_prob:
            continue
        guard = 0
        while guard < 100:
            guard += 1
            w = rng.randrange(n)
            if w == u:
                continue
            key = (min(u, w), max(u, w))
            if key in edges:
                continue
            edges.discard((u, v))
            edges.add(key)
            break
    return _edges_to_graph(n, edges, directed=False, name=name)


def _geometric(rng: random.Random, p: float) -> int:
    """Number of failures before first success + 1 (support {1, 2, ...})."""
    # Inverse-CDF sampling keeps this exact and branch-free.
    import math

    u = rng.random()
    if p >= 1.0:
        return 1
    return max(1, int(math.ceil(math.log(1.0 - u) / math.log(1.0 - p))))
