"""Reporters for ``repro-check`` runs — text for humans, JSON for CI."""

from __future__ import annotations

import json
from typing import List

from repro.analysis.framework import Report

__all__ = ["render_text", "render_json"]


def render_text(report: Report, show_waived: bool = False) -> str:
    """Human-readable report, one finding per line, summary last."""
    lines: List[str] = []
    for finding in report.active:
        lines.append(finding.render())
    if show_waived:
        for finding in report.waived:
            lines.append(finding.render())
        for finding in report.baselined:
            lines.append(f"{finding.render()}  (baselined)")
    summary = (
        f"repro-check: {len(report.active)} finding(s), "
        f"{len(report.waived)} waived, {len(report.baselined)} baselined "
        f"[{', '.join(report.rules_run)}]"
    )
    if not report.active:
        summary = "OK " + summary
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: Report) -> str:
    """Machine-readable report (stable keys, sorted findings)."""

    def encode(finding, disposition: str) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "disposition": disposition,
            "fingerprint": finding.fingerprint(),
        }

    payload = {
        "rules_run": list(report.rules_run),
        "counts": {
            "active": len(report.active),
            "waived": len(report.waived),
            "baselined": len(report.baselined),
        },
        "findings": (
            [encode(f, "active") for f in report.active]
            + [encode(f, "waived") for f in report.waived]
            + [encode(f, "baselined") for f in report.baselined]
        ),
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2)
