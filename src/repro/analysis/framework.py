"""Core machinery of ``repro-check`` — the project-invariant analysis suite.

A *checker* is a class with a stable ``rule`` id (``RC001``, ...) and a
``check(project)`` method yielding :class:`Finding`s.  The suite exists
because this codebase's correctness rests on cross-module conventions no
generic linter can see (deadline polling in kernels, writer-lock
discipline, a backend registry mirrored across five modules, stable wire
codes, frame-encodable task payloads, numba-safe kernel bodies); each
checker mechanically enforces one of them against the live tree.

Everything here is dependency-free on purpose: the suite must run on the
no-numpy CI cell, so only :mod:`ast`, :mod:`tokenize` and :mod:`json` are
used.

Suppressions
------------
A finding is *waived* by an inline comment on its line or the line above::

    for attempt in (0, 1):  # repro: allow[RC001] retry wrapper, round polls

    # repro: allow[RC002,RC005]
    self._table.clear()

Waived findings are reported (with ``--show-waived``) but never fail the
run.  Findings can also be *grandfathered* into a committed baseline file
(:mod:`repro.analysis.baseline`) — new code must come in clean while old
debt is paid down deliberately.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

__all__ = [
    "Finding",
    "Checker",
    "SourceFile",
    "Project",
    "REGISTRY",
    "register",
    "all_checkers",
    "run_checkers",
]

#: ``# repro: allow[RC001]`` / ``# repro: allow[RC001,RC005] free text``.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    message: str
    waived: bool = False

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline mechanism.

        Deliberately excludes the line number so unrelated edits shifting
        a grandfathered finding down the file do not resurrect it.
        """
        return f"{self.rule}|{self.path}|{self.message}"

    def render(self) -> str:
        suffix = "  (waived)" if self.waived else ""
        return f"{self.path}:{self.line}: {self.rule} {self.message}{suffix}"


class SourceFile:
    """One parsed source file: text, AST, and inline-suppression table."""

    def __init__(self, root: Path, path: Path) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.text, filename=str(path))
        self._allowed: Optional[Dict[int, set]] = None

    @property
    def allowed(self) -> Dict[int, set]:
        """line number -> set of rule ids allowed on that line."""
        if self._allowed is None:
            table: Dict[int, set] = {}
            try:
                tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
                for tok in tokens:
                    if tok.type != tokenize.COMMENT:
                        continue
                    match = _ALLOW_RE.search(tok.string)
                    if match:
                        rules = {
                            part.strip()
                            for part in match.group(1).split(",")
                            if part.strip()
                        }
                        table.setdefault(tok.start[0], set()).update(rules)
            except tokenize.TokenError:  # pragma: no cover - unparseable tail
                pass
            self._allowed = table
        return self._allowed

    def is_allowed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is waived on ``line`` or the line above it."""
        for candidate in (line, line - 1):
            if rule in self.allowed.get(candidate, ()):
                return True
        return False


class Project:
    """The tree under analysis: a root directory plus a source-file cache."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root).resolve()
        self._cache: Dict[str, Optional[SourceFile]] = {}

    def source(self, rel: str) -> Optional[SourceFile]:
        """The parsed source at ``rel`` (posix, repo-relative), or None."""
        if rel not in self._cache:
            path = self.root / rel
            if path.is_file():
                self._cache[rel] = SourceFile(self.root, path)
            else:
                self._cache[rel] = None
        return self._cache[rel]

    def text(self, rel: str) -> Optional[str]:
        """Raw text of any repo file (docs included), or None when absent."""
        source = self._cache.get(rel)
        if source is not None:
            return source.text
        path = self.root / rel
        if path.is_file():
            return path.read_text(encoding="utf-8")
        return None

    def finding(
        self, rule: str, rel: str, line: int, message: str
    ) -> Finding:
        """A finding with the waiver table of ``rel`` already applied."""
        source = self.source(rel)
        waived = bool(source is not None and source.is_allowed(rule, line))
        return Finding(rule=rule, path=rel, line=line, message=message, waived=waived)


class Checker:
    """Base class: subclasses set ``rule``/``name`` and yield findings."""

    rule: str = ""
    name: str = ""
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    # Convenience used by every concrete checker -----------------------
    def missing(self, rel: str) -> Finding:
        """Standard finding for a file the checker's contract points at."""
        return Finding(
            rule=self.rule,
            path=rel,
            line=1,
            message=f"file named by the {self.rule} contract does not exist",
        )


#: rule id -> checker class, filled by :func:`register`.
REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the suite registry."""
    if not cls.rule:
        raise ValueError(f"checker {cls.__name__} has no rule id")
    existing = REGISTRY.get(cls.rule)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate checker rule id {cls.rule!r}")
    REGISTRY[cls.rule] = cls
    return cls


def all_checkers() -> List[Type[Checker]]:
    """Every registered checker class, in rule-id order."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [REGISTRY[rule] for rule in sorted(REGISTRY)]


@dataclass
class Report:
    """Outcome of one analysis run, partitioned by disposition."""

    active: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    rules_run: Sequence[str] = ()

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0


def run_checkers(
    root: Path,
    checkers: Optional[Iterable[Checker]] = None,
    baseline: Optional[set] = None,
) -> Report:
    """Run ``checkers`` (default: all registered) over the tree at ``root``."""
    project = Project(root)
    instances = (
        list(checkers)
        if checkers is not None
        else [cls() for cls in all_checkers()]
    )
    report = Report(rules_run=[checker.rule for checker in instances])
    baseline = baseline or set()
    for checker in instances:
        for finding in checker.check(project):
            if finding.waived:
                report.waived.append(finding)
            elif finding.fingerprint() in baseline:
                report.baselined.append(finding)
            else:
                report.active.append(finding)
    for bucket in (report.active, report.waived, report.baselined):
        bucket.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return report


# ----------------------------------------------------------------------
# Shared AST helpers used by several rules
# ----------------------------------------------------------------------
def call_name(node: ast.AST) -> Optional[str]:
    """The terminal name of a call target: ``f()`` -> f, ``a.b.c()`` -> c."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def function_table(tree: ast.Module) -> Dict[str, ast.AST]:
    """Qualname -> def node for module functions and single-level methods."""
    table: Dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    table[f"{node.name}.{item.name}"] = item
    return table


def walk_function(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a def body without descending into nested function definitions."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))


def calls_in(node: ast.AST) -> Iterator[ast.Call]:
    """Every call in ``node``'s subtree, nested defs excluded."""
    if isinstance(node, ast.Call):
        yield node
    for child in walk_function(node):
        if isinstance(child, ast.Call):
            yield child
