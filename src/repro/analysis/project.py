"""The declared project contracts the checkers enforce.

Every rule in :mod:`repro.analysis.rules` is *map-driven*: it checks the
files and symbols named here, nothing guessed.  The maps double as rot
guards — a declared function or class that stops existing is itself a
finding, so refactors must keep this file honest.

Tests build small :class:`AnalysisConfig` instances pointing at fixture
trees; the live suite runs :data:`DEFAULT_CONFIG`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

__all__ = [
    "HotModule",
    "LockContract",
    "AnalysisConfig",
    "DEFAULT_CONFIG",
]


@dataclass(frozen=True)
class HotModule:
    """RC001 contract for one module on the kernel/task hot path.

    ``functions``: scan/round drivers whose expansion loops must poll
    :func:`repro.core.deadline.check_deadline` at block boundaries.
    ``helpers``: per-block helpers that expand neighborhoods but are only
    ever called from inside an already-polled loop (exempt by contract).
    ``delegates``: callables that poll on the caller's behalf — a loop
    that calls one (e.g. a round dispatcher) is covered.
    """

    functions: FrozenSet[str] = frozenset()
    helpers: FrozenSet[str] = frozenset()
    delegates: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class LockContract:
    """RC002 contract for one module: class -> declared mutator methods.

    A declared mutator must enter one of ``locks`` (``with self._lock:``
    or ``with self._write_guard():`` style) or call a sibling declared
    mutator that does.
    """

    mutators: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    locks: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything the rule modules need to know about the tree."""

    # ---- RC001 deadline coverage -------------------------------------
    hot_paths: Dict[str, HotModule] = field(default_factory=dict)
    #: Calls that mark a loop as "does neighborhood-expansion-scale work".
    expansion_primitives: FrozenSet[str] = frozenset()
    #: The polling call every covered loop must reach.
    poll_call: str = "check_deadline"

    # ---- RC002 lock discipline ---------------------------------------
    lock_contracts: Dict[str, LockContract] = field(default_factory=dict)

    # ---- RC003 backend-registry parity -------------------------------
    backends_module: str = "src/repro/core/backends.py"
    backends_symbol: str = "BACKENDS"
    #: Registry entries that are resolution policies, not concrete backends.
    virtual_backends: FrozenSet[str] = frozenset({"auto"})
    planner_module: str = "src/repro/core/planner.py"
    planner_symbols: Tuple[str, ...] = ("BACKEND_COST_FACTORS", "BACKEND_FIXED_COSTS")
    cli_module: str = "src/repro/cli.py"
    cli_flag: str = "--backend"
    executor_module: str = "src/repro/core/executor.py"
    readme: str = "README.md"

    # ---- RC004 wire-code exhaustiveness ------------------------------
    errors_module: str = "src/repro/errors.py"
    errors_base: str = "ReproError"
    protocol_module: str = "src/repro/serving/protocol.py"
    status_map_symbol: str = "_STATUS_BY_CLASS"

    # ---- RC005 spawn/frame safety ------------------------------------
    #: Modules whose dispatch sinks move payloads across process/machine
    #: boundaries; arguments must stay frame/pickle-safe.
    dispatch_modules: Tuple[str, ...] = ()
    sink_names: FrozenSet[str] = frozenset({"encode_frame", "write_frame"})
    sink_attrs: FrozenSet[str] = frozenset({"send", "request", "dumps"})

    # ---- RC006 njit purity -------------------------------------------
    kernels_module: str = "src/repro/native/kernels.py"
    njit_decorators: FrozenSet[str] = frozenset({"njit"})
    njit_allowed_calls: FrozenSet[str] = frozenset(
        {"range", "len", "min", "max", "abs", "int", "float", "bool"}
    )
    njit_allowed_method_calls: FrozenSet[str] = frozenset({"sort"})

    # ---- RC007 fault-point hygiene -----------------------------------
    #: Registered fault-point name -> the one module allowed to declare it.
    #: Doubles as the rot guard: a registered name that stops existing in
    #: its module is a finding, and so is an unregistered hook call.
    fault_points: Dict[str, str] = field(default_factory=dict)
    #: The injection-hook callables whose first argument is a point name.
    fault_hook_names: FrozenSet[str] = frozenset(
        {"fault_point", "fault_frame"}
    )
    #: The package owning plan state; the only code allowed to install one.
    faults_package: str = "src/repro/faults"
    #: Source tree scanned for production installs of a fault plan.
    source_root: str = "src/repro"


#: Names whose presence in a loop marks it as expansion-scale work.  The
#: list spans the python reference (``hop_ball``/``.ball``), the numpy
#: kernels (``batched_hop_balls*``), the worker-task helpers, and the
#: jitted kernels — anything that walks neighborhoods.
_EXPANSION_PRIMITIVES = frozenset(
    {
        "hop_ball",
        "ball",
        "batched_hop_balls",
        "batched_hop_balls_with_distances",
        "_expand_block",
        "_eval_block",
        "_native_eval",
        "_verify_weighted_chunk",
        "aggregate_blocks",
        "distance_aggregate_blocks",
        "batch_aggregate_blocks",
        "forward_prune_block",
    }
)

#: The live tree's RC001 hot-path map.  ``core/batch.py`` is deliberately
#: absent: coalesced fused-scan groups answer many callers with different
#: deadlines, and aborting the shared scan for the most impatient member
#: would take everyone else's answer with it (see repro/core/deadline.py).
_HOT_PATHS = {
    "src/repro/core/base.py": HotModule(functions=frozenset({"base_topk"})),
    "src/repro/core/forward.py": HotModule(functions=frozenset({"forward_topk"})),
    "src/repro/core/backward.py": HotModule(functions=frozenset({"backward_topk"})),
    "src/repro/core/executor.py": HotModule(
        functions=frozenset(
            {"_iter_exact_values", "_filtered_topk", "_stream_updates"}
        ),
        delegates=frozenset({"_iter_exact_values"}),
    ),
    "src/repro/core/vectorized.py": HotModule(
        functions=frozenset(
            {
                "base_topk_numpy",
                "forward_topk_numpy",
                "backward_topk_numpy",
                "weighted_base_topk_numpy",
                "weighted_backward_topk_numpy",
            }
        ),
        helpers=frozenset({"_verify_weighted_chunk"}),
    ),
    "src/repro/native/engine.py": HotModule(
        functions=frozenset(
            {
                "base_topk_native",
                "forward_topk_native",
                "backward_topk_native",
                "weighted_base_topk_native",
                "weighted_backward_topk_native",
                "shared_scan_native",
                "iter_exact_values_native",
            }
        ),
    ),
    "src/repro/parallel/worker.py": HotModule(
        functions=frozenset(
            {
                "_scan_task",
                "_batch_task",
                "_distribute_task",
                "_verify_task",
                "_weighted_task",
            }
        ),
        helpers=frozenset({"_expand_block", "_eval_block", "_native_eval"}),
    ),
    "src/repro/parallel/engine.py": HotModule(
        functions=frozenset(
            {
                "ParallelEngine.execute_scan",
                "ParallelEngine.execute_backward",
                "ParallelEngine.execute_weighted",
                "ParallelEngine.run_batch",
                "ParallelEngine._verify_frontier",
            }
        ),
        delegates=frozenset({"_run_round", "_verify_frontier"}),
    ),
    "src/repro/cluster/engine.py": HotModule(
        functions=frozenset(
            {
                "ClusterEngine._collect_topk",
                "ClusterEngine.execute_scan",
                "ClusterEngine.execute_backward",
                "ClusterEngine.execute_weighted",
                "ClusterEngine.run_batch",
                "ClusterEngine._verify_frontier",
            }
        ),
        delegates=frozenset({"_run_round", "_verify_frontier"}),
    ),
    # The cluster worker runs the *parallel* worker's task handlers under
    # a per-task deadline scope; it owns no expansion loop itself.  Listed
    # with no functions so new loops added here surface as findings.
    "src/repro/cluster/worker.py": HotModule(),
}

_LOCK_CONTRACTS = {
    "src/repro/session.py": LockContract(
        mutators={
            "Network": (
                "add_scores",
                "add_edge",
                "remove_edge",
                "update_score",
            )
        },
        locks=frozenset({"_write_guard"}),
    ),
    "src/repro/core/context.py": LockContract(
        mutators={
            "GraphContext": (
                "invalidate",
                "check_fresh",
                "build_indexes",
                "load_index",
                "close",
            )
        },
        locks=frozenset({"_lock"}),
    ),
    "src/repro/service/cache.py": LockContract(
        mutators={
            "ResultCache": ("put", "clear", "invalidate_score")
        },
        locks=frozenset({"_lock"}),
    ),
}

#: The live tree's RC007 fault-point catalog.  One module per name: the
#: seam a fault simulates lives in exactly one place, and a second
#: declaration of the same name would make chaos-plan hit counters lie.
_FAULT_POINTS = {
    "cluster.connect": "src/repro/cluster/transport.py",
    "cluster.frame.send": "src/repro/cluster/frames.py",
    "cluster.frame.recv": "src/repro/cluster/frames.py",
    "cluster.worker.frame.recv": "src/repro/cluster/frames.py",
    "cluster.worker.task": "src/repro/cluster/worker.py",
    "parallel.worker.task": "src/repro/parallel/worker.py",
    "parallel.pipe.send": "src/repro/parallel/pool.py",
    "parallel.reply.recv": "src/repro/parallel/pool.py",
    "serving.connection": "src/repro/serving/server.py",
}

DEFAULT_CONFIG = AnalysisConfig(
    hot_paths=_HOT_PATHS,
    expansion_primitives=_EXPANSION_PRIMITIVES,
    lock_contracts=_LOCK_CONTRACTS,
    dispatch_modules=(
        "src/repro/parallel/pool.py",
        "src/repro/parallel/engine.py",
        "src/repro/cluster/engine.py",
        "src/repro/cluster/transport.py",
        "src/repro/cluster/worker.py",
        "src/repro/cluster/frames.py",
    ),
    fault_points=_FAULT_POINTS,
)
