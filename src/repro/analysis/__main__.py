"""Command-line entry point: ``python -m repro.analysis``.

Exit status is 0 when no active (unwaived, unbaselined) findings remain,
1 otherwise — CI runs this as a blocking step.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import BASELINE_NAME, load_baseline, write_baseline
from repro.analysis.framework import all_checkers, run_checkers
from repro.analysis.reporting import render_json, render_text

__all__ = ["main", "run", "build_parser"]


def build_parser(
    prog: str = "repro-check", add_help: bool = True
) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        add_help=add_help,
        description=(
            "Project-invariant static analysis: deadline coverage, lock "
            "discipline, backend-registry parity, wire-code "
            "exhaustiveness, spawn/frame safety, njit purity."
        ),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root to analyse (default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record all active findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--show-waived",
        action="store_true",
        help="include waived and baselined findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _select_checkers(spec: Optional[str]) -> List:
    classes = all_checkers()
    if spec is None:
        return [cls() for cls in classes]
    wanted = {part.strip().upper() for part in spec.split(",") if part.strip()}
    by_rule = {cls.rule: cls for cls in classes}
    unknown = sorted(wanted - set(by_rule))
    if unknown:
        raise SystemExit(
            f"repro-check: unknown rule id(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(by_rule))})"
        )
    return [by_rule[rule]() for rule in sorted(wanted)]


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


def run(args: argparse.Namespace) -> int:
    """Execute one analysis run from a parsed namespace (shared with the
    ``repro.cli check`` subcommand, which builds the same parser)."""
    if args.list_rules:
        for cls in all_checkers():
            print(f"{cls.rule}  {cls.name}: {cls.description}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        raise SystemExit(f"repro-check: root {root} is not a directory")

    baseline_path = (
        Path(args.baseline) if args.baseline else root / BASELINE_NAME
    )
    checkers = _select_checkers(args.rules)

    if args.write_baseline:
        report = run_checkers(root, checkers=checkers, baseline=set())
        count = write_baseline(
            baseline_path, (f.fingerprint() for f in report.active)
        )
        print(f"repro-check: wrote {count} fingerprint(s) to {baseline_path}")
        return 0

    report = run_checkers(
        root, checkers=checkers, baseline=load_baseline(baseline_path)
    )
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_waived=args.show_waived))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
