"""RC004 — wire-code exhaustiveness of the error taxonomy.

The serving tier moves errors between processes and machines as stable
string codes (``ReproError.code``); clients rehydrate them with
:func:`repro.errors.error_from_wire`.  Three static properties keep that
contract airtight, checked against the class hierarchy *as written* (no
imports, so the rule runs on the no-numpy cell):

* **Own code per class** — every exception class in ``repro/errors.py``
  declares its own ``code`` string in its class body.  A subclass that
  inherits its parent's code decodes back to the *parent* class: the
  round-trip property silently breaks.
* **Unique codes** — two classes sharing a code make ``error_from_wire``
  ambiguous (the runtime registry raises at import time, but only for
  modules that actually get imported; this rule catches it tree-wide).
* **Deliberate HTTP status** — every exception class must be covered by
  the protocol's class -> status map through its ancestry, so no library
  error ever falls back to a generic 500.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.framework import Checker, Finding, Project, register
from repro.analysis.project import DEFAULT_CONFIG, AnalysisConfig

__all__ = ["WireCodeExhaustiveness"]


def _class_defs(tree: ast.Module) -> List[ast.ClassDef]:
    return [node for node in tree.body if isinstance(node, ast.ClassDef)]


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _own_code(node: ast.ClassDef):
    """The ``code = "..."`` assignment in the class body, if any."""
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "code":
                    if isinstance(item.value, ast.Constant) and isinstance(
                        item.value.value, str
                    ):
                        return item.value.value, item.lineno
                    return None, item.lineno
    return None, None


def _error_hierarchy(tree: ast.Module, root: str) -> Dict[str, ast.ClassDef]:
    """Name -> def for classes deriving (transitively) from ``root``."""
    classes = {node.name: node for node in _class_defs(tree)}
    family: Set[str] = {root}
    grew = True
    while grew:
        grew = False
        for name, node in classes.items():
            if name in family:
                continue
            if set(_base_names(node)) & family:
                family.add(name)
                grew = True
    return {
        name: node
        for name, node in classes.items()
        if name in family and name != root
    }


def _status_map_names(tree: ast.Module, symbol: str) -> List[str]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if symbol in targets and isinstance(node.value, (ast.Tuple, ast.List)):
                names = []
                for element in node.value.elts:
                    if (
                        isinstance(element, (ast.Tuple, ast.List))
                        and element.elts
                        and isinstance(element.elts[0], ast.Name)
                    ):
                        names.append(element.elts[0].id)
                return names
    return []


@register
class WireCodeExhaustiveness(Checker):
    rule = "RC004"
    name = "wire-code-exhaustiveness"
    description = (
        "every exception needs its own unique wire code and a deliberate "
        "HTTP status mapping"
    )

    def __init__(self, config: AnalysisConfig = DEFAULT_CONFIG) -> None:
        self.config = config

    def check(self, project: Project) -> Iterator[Finding]:
        cfg = self.config
        source = project.source(cfg.errors_module)
        if source is None:
            yield self.missing(cfg.errors_module)
            return
        family = _error_hierarchy(source.tree, cfg.errors_base)
        all_classes = {node.name: node for node in _class_defs(source.tree)}
        root = all_classes.get(cfg.errors_base)
        if root is None:
            yield project.finding(
                self.rule,
                cfg.errors_module,
                1,
                f"base class {cfg.errors_base!r} not found",
            )
            return

        codes: Dict[str, str] = {}
        root_code, _line = _own_code(root)
        if root_code is not None:
            codes[root_code] = cfg.errors_base
        for name, node in sorted(family.items()):
            code, line = _own_code(node)
            if code is None:
                yield project.finding(
                    self.rule,
                    cfg.errors_module,
                    line or node.lineno,
                    f"{name} does not declare its own string `code` — it "
                    f"would decode to its parent class after a wire "
                    f"round-trip",
                )
                continue
            if code in codes:
                yield project.finding(
                    self.rule,
                    cfg.errors_module,
                    node.lineno,
                    f"{name} reuses wire code {code!r} already taken by "
                    f"{codes[code]} — error_from_wire becomes ambiguous",
                )
            else:
                codes[code] = name

        yield from self._check_status_map(project, family, all_classes)

    # ------------------------------------------------------------------
    def _check_status_map(self, project, family, all_classes):
        cfg = self.config
        source = project.source(cfg.protocol_module)
        if source is None:
            yield self.missing(cfg.protocol_module)
            return
        mapped = _status_map_names(source.tree, cfg.status_map_symbol)
        if not mapped:
            yield project.finding(
                self.rule,
                cfg.protocol_module,
                1,
                f"{cfg.status_map_symbol} is missing or not a literal "
                f"sequence of (class, status) pairs",
            )
            return
        for name in mapped:
            if name not in family and name != cfg.errors_base:
                yield project.finding(
                    self.rule,
                    cfg.protocol_module,
                    1,
                    f"{cfg.status_map_symbol} maps {name!r}, which is not "
                    f"an exception class in {cfg.errors_module}",
                )
        mapped_set = set(mapped)

        def covered(name: str) -> bool:
            seen = set()
            frontier = [name]
            while frontier:
                current = frontier.pop()
                if current in mapped_set:
                    return True
                if current in seen:
                    continue
                seen.add(current)
                node = all_classes.get(current)
                if node is not None:
                    frontier.extend(_base_names(node))
            return False

        for name, node in sorted(family.items()):
            if not covered(name):
                yield project.finding(
                    self.rule,
                    cfg.errors_module,
                    node.lineno,
                    f"{name} is not covered by the protocol status map "
                    f"({cfg.status_map_symbol}) — it would serve as a "
                    f"generic HTTP 500",
                )
