"""RC006 — nopython purity of the compiled kernel tier.

``repro/native/kernels.py`` compiles its kernels with numba's ``@njit``
when numba is present, and falls back to running the *same* bodies
interpreted when it is not (the dual-execution hatch).  That only works
if every kernel body stays inside the intersection of "numba nopython
supports it" and "plain CPython runs it identically" — and the fallback
means a violation does not fail locally: the interpreted hatch happily
runs constructs that nopython compilation would reject months later on a
machine that *has* numba.

This rule pins the kernel dialect by allowlist.  A decorated kernel body
may use plain control flow (``for``/``while``/``if``), arithmetic,
subscripting, tuple packing/unpacking, ``break``/``continue``/``return``,
and calls to a small builtin set (``range``, ``len``, ``min``, ``max``,
``abs``, numeric constructors) plus in-place array methods such as
``.sort()``.  Everything else — comprehensions, ``with``/``try``,
f-strings, dict/set/list literals, closures, ``yield``, ``assert``,
imports, object attribute access beyond method calls — is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.analysis.framework import (
    Checker,
    Finding,
    Project,
    register,
    walk_function,
)
from repro.analysis.project import DEFAULT_CONFIG, AnalysisConfig

__all__ = ["NjitPurity"]

#: Statement/expression node types that are outside the kernel dialect,
#: with the human name used in the finding message.
_BANNED: Tuple[Tuple[type, str], ...] = (
    (ast.With, "a `with` block"),
    (ast.AsyncWith, "an `async with` block"),
    (ast.Try, "a `try` block"),
    (ast.Raise, "a `raise` statement"),
    (ast.Import, "an `import`"),
    (ast.ImportFrom, "an `import`"),
    (ast.Global, "a `global` declaration"),
    (ast.Nonlocal, "a `nonlocal` declaration"),
    (ast.ClassDef, "a class definition"),
    (ast.FunctionDef, "a nested function"),
    (ast.AsyncFunctionDef, "a nested function"),
    (ast.Lambda, "a lambda"),
    (ast.Yield, "a `yield`"),
    (ast.YieldFrom, "a `yield from`"),
    (ast.Await, "an `await`"),
    (ast.ListComp, "a list comprehension"),
    (ast.SetComp, "a set comprehension"),
    (ast.DictComp, "a dict comprehension"),
    (ast.GeneratorExp, "a generator expression"),
    (ast.Dict, "a dict literal"),
    (ast.Set, "a set literal"),
    (ast.List, "a list literal"),
    (ast.JoinedStr, "an f-string"),
    (ast.Starred, "a starred expression"),
    (ast.NamedExpr, "a walrus assignment"),
    (ast.Assert, "an `assert`"),
    (ast.Delete, "a `del` statement"),
)


def _decorator_name(node: ast.AST) -> str:
    """``@njit`` -> "njit", ``@njit(cache=True)`` -> "njit"."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _body_nodes(fn: ast.FunctionDef) -> List[ast.stmt]:
    """The kernel body with a leading docstring statement dropped."""
    body = list(fn.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    return body


@register
class NjitPurity(Checker):
    rule = "RC006"
    name = "njit-purity"
    description = (
        "@njit kernel bodies must stay inside the numba-nopython dialect "
        "(allowlisted constructs and calls only)"
    )

    def __init__(self, config: AnalysisConfig = DEFAULT_CONFIG) -> None:
        self.config = config

    def check(self, project: Project) -> Iterator[Finding]:
        cfg = self.config
        source = project.source(cfg.kernels_module)
        if source is None:
            yield self.missing(cfg.kernels_module)
            return
        kernels = [
            node
            for node in ast.walk(source.tree)
            if isinstance(node, ast.FunctionDef)
            and any(
                _decorator_name(d) in cfg.njit_decorators
                for d in node.decorator_list
            )
        ]
        if not kernels:
            yield project.finding(
                self.rule,
                cfg.kernels_module,
                1,
                "no @njit-decorated kernels found — the compiled tier is "
                "gone or the decorator was renamed",
            )
            return
        for fn in kernels:
            yield from self._check_kernel(project, fn)

    # ------------------------------------------------------------------
    def _check_kernel(self, project, fn: ast.FunctionDef):
        cfg = self.config
        rel = cfg.kernels_module
        for stmt in _body_nodes(fn):
            for node in ast.walk(stmt):
                banned = self._banned_name(node)
                if banned is not None:
                    yield project.finding(
                        self.rule,
                        rel,
                        node.lineno,
                        f"kernel {fn.name} contains {banned} — outside the "
                        f"nopython dialect (numba would reject it at "
                        f"compile time)",
                    )
                    continue
                if isinstance(node, ast.Call):
                    yield from self._check_call(project, fn, node)

    @staticmethod
    def _banned_name(node: ast.AST):
        for node_type, label in _BANNED:
            if isinstance(node, node_type):
                return label
        return None

    def _check_call(self, project, fn: ast.FunctionDef, call: ast.Call):
        cfg = self.config
        func = call.func
        if isinstance(func, ast.Name):
            if func.id not in cfg.njit_allowed_calls:
                yield project.finding(
                    self.rule,
                    cfg.kernels_module,
                    call.lineno,
                    f"kernel {fn.name} calls {func.id}(), which is not in "
                    f"the nopython allowlist (see repro/analysis/"
                    f"project.py: njit_allowed_calls)",
                )
        elif isinstance(func, ast.Attribute):
            if func.attr not in cfg.njit_allowed_method_calls:
                yield project.finding(
                    self.rule,
                    cfg.kernels_module,
                    call.lineno,
                    f"kernel {fn.name} calls method .{func.attr}(), which "
                    f"is not in the nopython method allowlist",
                )
        else:
            yield project.finding(
                self.rule,
                cfg.kernels_module,
                call.lineno,
                f"kernel {fn.name} makes an indirect call — nopython "
                f"kernels must call names directly",
            )
