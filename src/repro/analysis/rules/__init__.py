"""Rule modules — importing this package registers every checker."""

from repro.analysis.rules import (  # noqa: F401
    rc001_deadline,
    rc002_locks,
    rc003_backends,
    rc004_wire,
    rc005_spawn,
    rc006_njit,
    rc007_faults,
)
