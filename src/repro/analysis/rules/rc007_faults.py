"""RC007 — fault-point hygiene.

The fault-injection subsystem (:mod:`repro.faults`) is only trustworthy
under three conventions this rule enforces mechanically:

* **Literal, registered, unique names.**  Every ``fault_point(...)`` /
  ``fault_frame(...)`` call names its seam with a *string literal* (a
  computed name cannot be matched by a plan rule or audited here), the
  name is registered in the :data:`~repro.analysis.project.AnalysisConfig`
  ``fault_points`` catalog against the module that declares it, and no
  name is declared twice — duplicate declarations would make a plan's
  per-point hit counters lie about which seam actually fired.
* **Rot guard.**  A registered name whose declaration disappears from its
  module is itself a finding, so refactors keep the catalog honest (the
  same contract every other map-driven rule here follows).
* **No production enabling.**  ``install_plan(...)`` may be called only
  inside the faults package itself (the ``REPRO_FAULT_PLAN`` bootstrap)
  — library code must never switch injection on; tests and benchmarks
  (outside ``src/``) do that explicitly.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from repro.analysis.framework import Checker, Finding, Project, register
from repro.analysis.project import DEFAULT_CONFIG, AnalysisConfig

__all__ = ["FaultPointHygiene"]


def _hook_calls(
    tree: ast.Module, hook_names: frozenset
) -> Iterator[Tuple[str, ast.Call]]:
    """(hook name, call node) for every injection-hook call in ``tree``."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in hook_names:
            yield name, node


@register
class FaultPointHygiene(Checker):
    rule = "RC007"
    name = "fault-point-hygiene"
    description = (
        "fault points use unique literal registered names; nothing in "
        "the library installs a fault plan"
    )

    def __init__(self, config: AnalysisConfig = DEFAULT_CONFIG) -> None:
        self.config = config

    def check(self, project: Project) -> Iterator[Finding]:
        declared: Dict[str, List[Tuple[str, int]]] = {}
        modules = sorted(set(self.config.fault_points.values()))
        for rel in modules:
            source = project.source(rel)
            if source is None:
                yield self.missing(rel)
                continue
            for hook, call in _hook_calls(
                source.tree, self.config.fault_hook_names
            ):
                if not call.args or not (
                    isinstance(call.args[0], ast.Constant)
                    and isinstance(call.args[0].value, str)
                ):
                    yield project.finding(
                        self.rule,
                        rel,
                        call.lineno,
                        f"{hook}() must name its point with a string "
                        "literal (computed names cannot be matched by "
                        "plan rules or audited)",
                    )
                    continue
                point = call.args[0].value
                declared.setdefault(point, []).append((rel, call.lineno))
                registered_in = self.config.fault_points.get(point)
                if registered_in is None:
                    yield project.finding(
                        self.rule,
                        rel,
                        call.lineno,
                        f"fault point {point!r} is not registered in the "
                        "analysis fault_points catalog",
                    )
                elif registered_in != rel:
                    yield project.finding(
                        self.rule,
                        rel,
                        call.lineno,
                        f"fault point {point!r} is registered to "
                        f"{registered_in}, not here",
                    )
        # Uniqueness: one declaration site per name.
        for point, sites in sorted(declared.items()):
            if len(sites) > 1:
                for rel, line in sites[1:]:
                    yield project.finding(
                        self.rule,
                        rel,
                        line,
                        f"fault point {point!r} is declared more than "
                        f"once (first at {sites[0][0]}:{sites[0][1]}); "
                        "duplicate names make plan hit counters lie",
                    )
        # Rot guard: every registered name still exists where it claims.
        for point, rel in sorted(self.config.fault_points.items()):
            if project.source(rel) is None:
                continue  # already reported as missing above
            if point not in declared:
                yield project.finding(
                    self.rule,
                    rel,
                    1,
                    f"registered fault point {point!r} is no longer "
                    "declared in this module (update the catalog)",
                )
        # No production enabling: install_plan stays inside the package.
        yield from self._production_installs(project)

    # ------------------------------------------------------------------
    def _production_installs(self, project: Project) -> Iterator[Finding]:
        root = project.root / self.config.source_root
        if not root.is_dir():
            return
        package_prefix = self.config.faults_package.rstrip("/") + "/"
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(project.root).as_posix()
            if rel.startswith(package_prefix):
                continue
            source = project.source(rel)
            if source is None:  # pragma: no cover - racing deletion
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name == "install_plan":
                    yield project.finding(
                        self.rule,
                        rel,
                        node.lineno,
                        "library code must never install a fault plan; "
                        "only repro.faults' env bootstrap (and tests/"
                        "benchmarks) may enable injection",
                    )
