"""RC003 — backend-registry parity across the five mirrors.

``repro.core.backends.BACKENDS`` is the registry of execution backends,
but four other places must track it by hand: the planner's per-backend
cost tables, the CLI's ``--backend`` argparse choices, the executor's
dispatch strings, and the README's backend table.  PR 7 and PR 8 each
re-discovered this by test failure when a new backend landed; this rule
makes the parity a static property.

Checks (``concrete`` = registry minus the virtual ``"auto"`` policy):

* ``BACKEND_COST_FACTORS`` / ``BACKEND_FIXED_COSTS`` keys == concrete
  (both directions — a stale key is as wrong as a missing one).
* Every ``--backend`` argparse flag's ``choices`` == the full registry.
* Every concrete backend appears as a string constant in the executor
  (its dispatch/route tables must know the name).
* Every concrete backend has a row in the README's backend table.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from repro.analysis.framework import Checker, Finding, Project, register
from repro.analysis.project import DEFAULT_CONFIG, AnalysisConfig

__all__ = ["BackendRegistryParity"]

#: A backend token in a README table row: | `"python"` | ...
_README_ROW = re.compile(r'^\s*\|\s*`"([a-z]+)"`')


def _assigned_literal(tree: ast.Module, symbol: str) -> Optional[ast.AST]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == symbol:
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == symbol
                and node.value is not None
            ):
                return node.value
    return None


def _string_elements(node: ast.AST) -> Optional[List[str]]:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            out.append(element.value)
        return out
    return None


def _dict_string_keys(node: ast.AST) -> Optional[List[str]]:
    if isinstance(node, ast.Dict):
        out = []
        for key in node.keys:
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                return None
            out.append(key.value)
        return out
    return None


def _module_strings(tree: ast.Module) -> Set[str]:
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


@register
class BackendRegistryParity(Checker):
    rule = "RC003"
    name = "backend-registry-parity"
    description = (
        "BACKENDS must agree with the planner cost tables, CLI choices, "
        "executor dispatch, and README backend table"
    )

    def __init__(self, config: AnalysisConfig = DEFAULT_CONFIG) -> None:
        self.config = config

    def check(self, project: Project) -> Iterator[Finding]:
        cfg = self.config
        source = project.source(cfg.backends_module)
        if source is None:
            yield self.missing(cfg.backends_module)
            return
        literal = _assigned_literal(source.tree, cfg.backends_symbol)
        registry = _string_elements(literal) if literal is not None else None
        if registry is None:
            yield project.finding(
                self.rule,
                cfg.backends_module,
                1,
                f"{cfg.backends_symbol} is not a literal tuple of strings "
                f"(the registry must stay statically readable)",
            )
            return
        full = set(registry)
        concrete = full - set(cfg.virtual_backends)
        yield from self._check_planner(project, concrete)
        yield from self._check_cli(project, full)
        yield from self._check_executor(project, concrete)
        yield from self._check_readme(project, concrete)

    # ------------------------------------------------------------------
    def _check_planner(self, project, concrete):
        cfg = self.config
        source = project.source(cfg.planner_module)
        if source is None:
            yield self.missing(cfg.planner_module)
            return
        for symbol in cfg.planner_symbols:
            literal = _assigned_literal(source.tree, symbol)
            keys = _dict_string_keys(literal) if literal is not None else None
            if keys is None:
                yield project.finding(
                    self.rule,
                    cfg.planner_module,
                    1,
                    f"{symbol} is missing or not a literal dict with "
                    f"string keys",
                )
                continue
            line = getattr(literal, "lineno", 1)
            for backend in sorted(concrete - set(keys)):
                yield project.finding(
                    self.rule,
                    cfg.planner_module,
                    line,
                    f"backend {backend!r} is registered in BACKENDS but "
                    f"has no {symbol} entry",
                )
            for backend in sorted(set(keys) - concrete):
                yield project.finding(
                    self.rule,
                    cfg.planner_module,
                    line,
                    f"{symbol} has an entry for {backend!r}, which is not "
                    f"a registered concrete backend",
                )

    def _check_cli(self, project, full):
        cfg = self.config
        source = project.source(cfg.cli_module)
        if source is None:
            yield self.missing(cfg.cli_module)
            return
        flags = 0
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == cfg.cli_flag
            ):
                continue
            flags += 1
            choices = None
            for keyword in node.keywords:
                if keyword.arg == "choices":
                    choices = _string_elements(keyword.value)
            if choices is None:
                yield project.finding(
                    self.rule,
                    cfg.cli_module,
                    node.lineno,
                    f"{cfg.cli_flag} argument has no literal choices tuple",
                )
                continue
            if set(choices) != full:
                missing = sorted(full - set(choices))
                extra = sorted(set(choices) - full)
                detail = []
                if missing:
                    detail.append(f"missing {missing}")
                if extra:
                    detail.append(f"unknown {extra}")
                yield project.finding(
                    self.rule,
                    cfg.cli_module,
                    node.lineno,
                    f"{cfg.cli_flag} choices disagree with BACKENDS: "
                    + "; ".join(detail),
                )
        if flags == 0:
            yield project.finding(
                self.rule,
                cfg.cli_module,
                1,
                f"no {cfg.cli_flag} argument found — the CLI no longer "
                f"exposes the backend registry",
            )

    def _check_executor(self, project, concrete):
        cfg = self.config
        source = project.source(cfg.executor_module)
        if source is None:
            yield self.missing(cfg.executor_module)
            return
        present = _module_strings(source.tree)
        for backend in sorted(concrete - present):
            yield project.finding(
                self.rule,
                cfg.executor_module,
                1,
                f"backend {backend!r} is registered in BACKENDS but never "
                f"named in the executor's dispatch/route tables",
            )

    def _check_readme(self, project, concrete):
        cfg = self.config
        text = project.text(cfg.readme)
        if text is None:
            yield self.missing(cfg.readme)
            return
        rows = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _README_ROW.match(line)
            if match:
                rows.setdefault(match.group(1), lineno)
        if not rows:
            yield Finding(
                rule=self.rule,
                path=cfg.readme,
                line=1,
                message=(
                    "README has no backend table (rows shaped like "
                    '`| `"python"` | ... |`)'
                ),
            )
            return
        for backend in sorted(concrete - set(rows)):
            yield Finding(
                rule=self.rule,
                path=cfg.readme,
                line=min(rows.values()),
                message=(
                    f"backend {backend!r} is registered in BACKENDS but "
                    f"has no row in the README backend table"
                ),
            )
