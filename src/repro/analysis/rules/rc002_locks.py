"""RC002 — writer-lock discipline for declared graph mutators.

Concurrent serving isolates mutations from in-flight queries with a
writer-preferring readers-writer lock (`Network._write_guard`) and
per-object mutex locks on the shared caches.  The discipline is a
convention: nothing stops a new mutator from touching shared state bare.
This rule makes the convention mechanical — the lock-contract map in
:mod:`repro.analysis.project` declares, per module and class, the methods
that mutate shared state and the lock entry they must take.

A declared mutator satisfies the rule when its body (nested defs
excluded) either

* enters a ``with`` block on one of the contract's lock expressions —
  ``with self._lock:`` / ``with self._write_guard():`` / a lock object's
  ``.write()`` section — or
* calls a sibling *declared* mutator of the same class (delegation: the
  callee takes the lock).

Declared methods that no longer exist are findings too, so the map rots
loudly, not silently.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.framework import (
    Checker,
    Finding,
    Project,
    register,
    walk_function,
)
from repro.analysis.project import DEFAULT_CONFIG, AnalysisConfig

__all__ = ["LockDiscipline"]


def _self_attr_token(expr: ast.AST) -> Optional[str]:
    """``self._lock`` -> "_lock", ``self._write_guard()`` -> "_write_guard",
    ``self._rw.write()`` -> "write" — the terminal attribute of a
    self-rooted expression (calls unwrapped)."""
    if isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Attribute):
        base = expr.value
        while isinstance(base, (ast.Attribute, ast.Call)):
            base = base.func if isinstance(base, ast.Call) else base.value
        if isinstance(base, ast.Name) and base.id == "self":
            return expr.attr
    return None


def _with_tokens(fn: ast.AST) -> Set[str]:
    """Terminal self-attribute names of every ``with`` context in ``fn``."""
    tokens: Set[str] = set()
    for node in walk_function(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                token = _self_attr_token(item.context_expr)
                if token is not None:
                    tokens.add(token)
    return tokens


def _self_calls(fn: ast.AST) -> Set[str]:
    """Names of methods invoked as ``self.<name>(...)`` in ``fn``."""
    calls: Set[str] = set()
    for node in walk_function(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if isinstance(base, ast.Name) and base.id == "self":
                calls.add(node.func.attr)
    return calls


@register
class LockDiscipline(Checker):
    rule = "RC002"
    name = "lock-discipline"
    description = (
        "declared graph mutators must take the writer lock or delegate "
        "to a declared mutator that does"
    )

    def __init__(self, config: AnalysisConfig = DEFAULT_CONFIG) -> None:
        self.config = config

    def check(self, project: Project) -> Iterator[Finding]:
        for rel, contract in sorted(self.config.lock_contracts.items()):
            source = project.source(rel)
            if source is None:
                yield self.missing(rel)
                continue
            classes = {
                node.name: node
                for node in source.tree.body
                if isinstance(node, ast.ClassDef)
            }
            for cls_name, methods in sorted(contract.mutators.items()):
                cls = classes.get(cls_name)
                if cls is None:
                    yield project.finding(
                        self.rule,
                        rel,
                        1,
                        f"lock-contract map names class {cls_name!r}, "
                        f"which no longer exists in this module",
                    )
                    continue
                defs = {
                    item.name: item
                    for item in cls.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                declared = set(methods)
                for method in methods:
                    fn = defs.get(method)
                    if fn is None:
                        yield project.finding(
                            self.rule,
                            rel,
                            cls.lineno,
                            f"lock-contract map names {cls_name}.{method}, "
                            f"which no longer exists (update "
                            f"repro/analysis/project.py)",
                        )
                        continue
                    if _with_tokens(fn) & contract.locks:
                        continue
                    delegated = _self_calls(fn) & (declared - {method})
                    if delegated:
                        continue
                    locks = ", ".join(sorted(contract.locks))
                    yield project.finding(
                        self.rule,
                        rel,
                        fn.lineno,
                        f"{cls_name}.{method} is a declared graph mutator "
                        f"but neither enters a lock section ({locks}) nor "
                        f"delegates to a declared mutator",
                    )
