"""RC001 — deadline coverage of hot-path expansion loops.

The serving tier enforces query deadlines *cooperatively*: kernels poll
:func:`repro.core.deadline.check_deadline` at block boundaries (see
DESIGN.md §6).  The contract is per-function and declared — the hot-path
map in :mod:`repro.analysis.project` names every scan/round driver — so
this rule can distinguish a kernel loop that must poll from a bookkeeping
loop that must not pay for it.

For each declared function, every outermost statement loop that does
expansion-scale work — it calls a neighborhood-expansion primitive, or it
contains a nested statement loop — must reach ``check_deadline()`` (or a
declared polling delegate such as a round dispatcher) somewhere in its
body or iterator expression.  Functions *not* in the map may not call
expansion primitives at all: new kernels must be added to the map (or the
module's ``helpers`` set, for per-block helpers only called from polled
loops) deliberately, not discovered by timeout.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.framework import (
    Checker,
    Finding,
    Project,
    call_name,
    calls_in,
    function_table,
    register,
)
from repro.analysis.project import DEFAULT_CONFIG, AnalysisConfig

__all__ = ["DeadlineCoverage"]

_LOOPS = (ast.For, ast.While)
_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _outermost_loops(fn: ast.AST) -> List[ast.AST]:
    """Outermost For/While statements of a def, nested defs excluded."""
    loops: List[ast.AST] = []

    def scan(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _DEFS):
                continue
            if isinstance(child, _LOOPS):
                loops.append(child)
                continue  # nested loops belong to this one's subtree
            scan(child)

    scan(fn)
    return loops


def _subtree_calls(loop: ast.AST) -> Iterator[str]:
    for call in calls_in(loop):
        name = call_name(call)
        if name is not None:
            yield name


def _has_nested_loop(loop: ast.AST) -> bool:
    stack = list(ast.iter_child_nodes(loop))
    while stack:
        child = stack.pop()
        if isinstance(child, _DEFS):
            continue
        if isinstance(child, _LOOPS):
            return True
        stack.extend(ast.iter_child_nodes(child))
    return False


@register
class DeadlineCoverage(Checker):
    rule = "RC001"
    name = "deadline-coverage"
    description = (
        "hot-path kernel loops must poll check_deadline() at block "
        "boundaries (declared hot-path map)"
    )

    def __init__(self, config: AnalysisConfig = DEFAULT_CONFIG) -> None:
        self.config = config

    def check(self, project: Project) -> Iterator[Finding]:
        for rel, module in sorted(self.config.hot_paths.items()):
            source = project.source(rel)
            if source is None:
                yield self.missing(rel)
                continue
            table = function_table(source.tree)
            declared = module.functions | module.helpers
            for qualname in sorted(declared):
                if qualname not in table:
                    yield project.finding(
                        self.rule,
                        rel,
                        1,
                        f"hot-path map names {qualname!r}, which no longer "
                        f"exists in this module (update the map in "
                        f"repro/analysis/project.py)",
                    )
            for qualname in sorted(module.functions):
                fn = table.get(qualname)
                if fn is None:
                    continue
                yield from self._check_function(
                    project, rel, qualname, fn, module
                )
            yield from self._check_unlisted(project, rel, table, module)

    # ------------------------------------------------------------------
    def _check_function(self, project, rel, qualname, fn, module):
        satisfying = {self.config.poll_call} | set(module.delegates)
        for loop in _outermost_loops(fn):
            names = set(_subtree_calls(loop))
            expands = bool(names & self.config.expansion_primitives)
            if not expands and not _has_nested_loop(loop):
                continue  # bookkeeping loop: polling not required
            if names & satisfying:
                continue
            yield project.finding(
                self.rule,
                rel,
                loop.lineno,
                f"expansion loop in {qualname} never calls "
                f"{self.config.poll_call}() — a served query cannot "
                f"observe its deadline here",
            )

    def _check_unlisted(self, project, rel, table, module):
        declared = module.functions | module.helpers
        for qualname, fn in sorted(table.items()):
            if qualname in declared:
                continue
            primitives = sorted(
                set(_subtree_calls(fn)) & self.config.expansion_primitives
            )
            if primitives:
                yield project.finding(
                    self.rule,
                    rel,
                    fn.lineno,
                    f"{qualname} calls expansion primitive "
                    f"{primitives[0]!r} but is not in the deadline "
                    f"hot-path map (add it to functions= or helpers= in "
                    f"repro/analysis/project.py)",
                )
