"""RC005 — spawn/frame safety of dispatched payloads.

Task payloads cross two hard boundaries: pickled over duplex pipes into
*spawn*-started pool processes (``parallel/pool.py``), and JSON+binary
frames over sockets to cluster workers (``cluster/frames.py``).  Neither
boundary can carry a lambda, a closure over local state, or a generator —
pickle refuses or (worse) rebinds, and the frame codec only speaks JSON
scalars plus numpy blobs.  The existing convention (e.g. the weighted
route pre-evaluating its decay profile into a per-hop weight list because
"callables do not cross process boundaries") is enforced here.

The rule scans the declared dispatch modules for *sink calls* — functions
named ``encode_frame``/``write_frame``, and ``.send(...)`` /
``.request(...)`` / ``.dumps(...)`` method calls — and inspects every
argument expression (following one level of local assignment, so
``header = {...}; peer.send(header)`` is seen through).  Forbidden inside
a payload expression:

* ``lambda`` expressions and generator expressions,
* references to *locally defined* functions (closures — they capture
  frame state that cannot cross a spawn or socket boundary),
* ``yield`` (a payload must be a value, not a suspended frame).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.framework import (
    Checker,
    Finding,
    Project,
    register,
    walk_function,
)
from repro.analysis.project import DEFAULT_CONFIG, AnalysisConfig

__all__ = ["SpawnFrameSafety"]

_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _nested_def_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined *inside* another function anywhere in
    the module — referencing one in a payload is a closure crossing."""
    nested: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, _DEFS):
            for child in walk_function(node):
                if isinstance(child, _DEFS):
                    nested.add(child.name)
    return nested


def _local_assignments(fn: ast.AST) -> Dict[str, ast.AST]:
    """Single-target local assignments of ``fn`` (nested defs excluded)."""
    table: Dict[str, ast.AST] = {}
    for node in walk_function(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                table[target.id] = node.value
    return table


def _violations(expr: ast.AST, nested: Set[str]) -> List[Tuple[int, str]]:
    """(line, description) for every frame-unsafe construct in ``expr``."""
    found = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Lambda):
            found.append((node.lineno, "a lambda"))
        elif isinstance(node, ast.GeneratorExp):
            found.append((node.lineno, "a generator expression"))
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            found.append((node.lineno, "a yield expression"))
        elif (
            isinstance(node, ast.Name)
            and node.id in nested
            and isinstance(node.ctx, ast.Load)
        ):
            found.append(
                (node.lineno, f"locally-defined function {node.id!r}")
            )
    return found


@register
class SpawnFrameSafety(Checker):
    rule = "RC005"
    name = "spawn-frame-safety"
    description = (
        "no lambdas/closures/generators in payloads crossing the pool "
        "pipe or the cluster frame codec"
    )

    def __init__(self, config: AnalysisConfig = DEFAULT_CONFIG) -> None:
        self.config = config

    def check(self, project: Project) -> Iterator[Finding]:
        for rel in self.config.dispatch_modules:
            source = project.source(rel)
            if source is None:
                yield self.missing(rel)
                continue
            nested = _nested_def_names(source.tree)
            for fn in self._all_functions(source.tree):
                assigns = _local_assignments(fn)
                # Sink calls attributed to their *immediate* enclosing
                # def (walk_function stops at nested defs), so each call
                # site is inspected exactly once.
                for call in self._sink_calls(fn):
                    sink = (
                        call.func.id
                        if isinstance(call.func, ast.Name)
                        else call.func.attr
                    )
                    arguments = list(call.args) + [
                        kw.value for kw in call.keywords
                    ]
                    for arg in arguments:
                        expr = arg
                        # See through `payload = {...}; sink(payload)`.
                        if isinstance(expr, ast.Name) and expr.id in assigns:
                            expr = assigns[expr.id]
                        for line, what in _violations(expr, nested):
                            yield project.finding(
                                self.rule,
                                rel,
                                line,
                                f"{what} reaches dispatch sink {sink}() — "
                                f"it cannot cross the spawn/frame boundary",
                            )

    # ------------------------------------------------------------------
    @staticmethod
    def _all_functions(tree: ast.Module) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, _DEFS):
                yield node

    def _sink_calls(self, fn: ast.AST) -> Iterator[ast.Call]:
        for node in walk_function(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in self.config.sink_names:
                yield node
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in self.config.sink_attrs
            ):
                yield node
