"""Committed-baseline mechanism for grandfathered findings.

A baseline is a JSON file of finding fingerprints (rule + path + message,
deliberately line-independent).  ``repro-check --write-baseline`` records
every currently-active finding; later runs silently ignore exactly those
— new violations still fail.  The repo aims for an *empty* baseline (the
acceptance bar of the suite is zero unsuppressed findings), but the
mechanism is what lets a new rule land in CI before its last fix does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Set

__all__ = ["BASELINE_NAME", "load_baseline", "write_baseline"]

#: Default baseline path, relative to the analysis root.
BASELINE_NAME = "repro-check-baseline.json"


def load_baseline(path: Path) -> Set[str]:
    """Fingerprints grandfathered by ``path`` (empty set when absent)."""
    if not path.is_file():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    entries = payload.get("findings", []) if isinstance(payload, dict) else payload
    return {str(entry) for entry in entries}


def write_baseline(path: Path, fingerprints: Iterable[str]) -> int:
    """Write ``fingerprints`` (sorted, deduplicated); returns the count."""
    entries = sorted(set(fingerprints))
    payload = {
        "comment": (
            "Grandfathered repro-check findings. Remove entries as the "
            "debt is paid; never add to this file to dodge a new finding."
        ),
        "findings": entries,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
