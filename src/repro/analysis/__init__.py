"""repro-check: project-invariant static analysis for this codebase.

Run with ``python -m repro.analysis`` or ``repro check``.  The suite is
dependency-free (ast/tokenize/json only) so it runs on the no-numpy CI
cell.  See DESIGN.md §9 for the invariants each rule enforces.
"""

from repro.analysis.baseline import BASELINE_NAME, load_baseline, write_baseline
from repro.analysis.framework import (
    Checker,
    Finding,
    Project,
    Report,
    all_checkers,
    register,
    run_checkers,
)
from repro.analysis.reporting import render_json, render_text

__all__ = [
    "BASELINE_NAME",
    "Checker",
    "Finding",
    "Project",
    "Report",
    "all_checkers",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
    "run_checkers",
    "write_baseline",
]
