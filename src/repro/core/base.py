"""Base: naive forward processing (the paper's baseline).

"A naive approach to answer top-k neighborhood aggregation queries is to
check each node in the network, find its h-hop neighbors, aggregate their
values together and then choose the k nodes with the highest aggregate
values." (Sec. III)

Exactly that — one truncated BFS per node, no pruning.  Base is the
correctness oracle for everything else and the baseline line in every figure.
It supports all aggregate kinds, including the non-sum-convertible MAX/MIN.

This module is the pure-Python execution backend; ``spec.backend`` routes
the same query to the vectorized CSR implementation in
:mod:`repro.core.vectorized` (which covers every aggregate kind, MAX/MIN
included, via segmented reductions) when numpy is available.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.aggregates.functions import AggregateKind, evaluate_scores, finalize_sum
from repro.core.backends import resolve_backend
from repro.core.deadline import check_deadline
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult
from repro.core.topk import TopKAccumulator
from repro.graph.graph import Graph
from repro.graph.traversal import TraversalCounter, hop_ball

__all__ = ["base_topk"]


def base_topk(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    node_order: Optional[Sequence[int]] = None,
    csr: Optional[object] = None,
) -> TopKResult:
    """Answer ``spec`` by exhaustive forward processing.

    Dispatches on ``spec.backend`` (``"auto"`` prefers the vectorized numpy
    implementation, falling back to this module's pure-Python loop when
    numpy is absent).  ``node_order`` optionally fixes the evaluation order
    (used by tests to exercise tie behavior); the answer's value multiset is
    order-independent.  ``csr`` optionally supplies a prebuilt numpy
    :class:`~repro.graph.csr.CSRGraph` view (sessions cache one across
    queries); ignored by the Python backend.
    """
    concrete = resolve_backend(spec.backend)
    if concrete == "native":
        from repro.native.engine import base_topk_native

        return base_topk_native(
            graph, scores, spec, node_order=node_order, csr=csr  # type: ignore[arg-type]
        )
    if concrete != "python":
        from repro.core.vectorized import base_topk_numpy

        return base_topk_numpy(
            graph, scores, spec, node_order=node_order, csr=csr  # type: ignore[arg-type]
        )
    start = time.perf_counter()
    counter = TraversalCounter()
    acc = TopKAccumulator(spec.k)
    kind = spec.aggregate
    order = node_order if node_order is not None else graph.nodes()
    evaluated = 0
    for u in order:
        check_deadline()
        ball = hop_ball(
            graph, u, spec.hops, include_self=spec.include_self, counter=counter
        )
        evaluated += 1
        if kind.sum_convertible:
            if kind is AggregateKind.COUNT:
                value = float(sum(1 for v in ball if scores[v] > 0.0))
            else:
                total = 0.0
                for v in ball:
                    total += scores[v]
                value = finalize_sum(kind, total, len(ball))
        else:
            value = evaluate_scores(kind, (scores[v] for v in ball))
        acc.offer(u, value)
    stats = QueryStats(
        algorithm="base",
        aggregate=kind.value,
        hops=spec.hops,
        k=spec.k,
        elapsed_sec=time.perf_counter() - start,
        nodes_evaluated=evaluated,
        edges_scanned=counter.edges_scanned,
        nodes_visited=counter.nodes_visited,
        balls_expanded=counter.balls_expanded,
    )
    return TopKResult(entries=acc.entries(), stats=stats)
