"""Distance-weighted top-k aggregation (the paper's footnote 1, end to end).

Footnote 1 generalizes the SUM aggregate to
``F(u) = sum w(u, v) f(v)`` with ``w(u, v)`` e.g. the inverse of the
shortest distance between ``u`` and ``v``.  This module lifts that from a
per-node evaluation helper (:mod:`repro.aggregates.weighted`) to full
query algorithms:

* :func:`weighted_base_topk` — the naive scan, one distance-labeled BFS per
  node.
* :func:`weighted_backward_topk` — LONA-Backward adapted to weights.  The
  distribution phase pushes ``w(d) * f(u)`` to each node at distance ``d``
  (hop distance is symmetric on undirected graphs; directed graphs
  distribute over the reversed arcs).  Eq. 3 adapts because every weight is
  in [0, 1]: an undistributed ball member contributes at most
  ``rest_bound * w_max`` where ``w_max = max(w(1), ..., w(h))`` — for the
  monotone profiles of interest, ``w(1)``.

Weighted aggregation is defined for SUM (the footnote's form).  AVG under
weights has no canonical denominator and is deliberately not offered.

Both algorithms are pure-Python execution backends; ``spec.backend`` routes
the same query to the vectorized CSR implementations in
:mod:`repro.core.vectorized` (distance-labeled batched expansions) when
numpy is available.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple, Union

from repro.aggregates.functions import AggregateKind
from repro.aggregates.weighted import (
    DecayProfile,
    inverse_distance,
    precompute_weights,
)
from repro.core.backends import resolve_backend
from repro.core.backward import resolve_gamma
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult
from repro.core.topk import TopKAccumulator
from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex
from repro.graph.traversal import TraversalCounter, hop_ball_with_distances

__all__ = ["weighted_base_topk", "weighted_backward_topk"]


def _check_spec(spec: QuerySpec) -> None:
    if spec.aggregate is not AggregateKind.SUM:
        raise InvalidParameterError(
            "weighted aggregation is defined for SUM (footnote 1), not "
            f"{spec.aggregate.value}"
        )


def weighted_base_topk(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    profile: DecayProfile = inverse_distance,
    *,
    csr: Optional[object] = None,
) -> TopKResult:
    """Naive weighted scan: one distance-labeled BFS per node.

    Dispatches on ``spec.backend``; ``csr`` optionally supplies a prebuilt
    numpy CSR view (ignored by the Python backend).
    """
    _check_spec(spec)
    concrete = resolve_backend(spec.backend)
    if concrete == "native":
        from repro.native.engine import weighted_base_topk_native

        return weighted_base_topk_native(
            graph, scores, spec, profile, csr=csr  # type: ignore[arg-type]
        )
    if concrete != "python":
        from repro.core.vectorized import weighted_base_topk_numpy

        return weighted_base_topk_numpy(
            graph, scores, spec, profile, csr=csr  # type: ignore[arg-type]
        )
    weights = precompute_weights(profile, spec.hops)
    start = time.perf_counter()
    counter = TraversalCounter()
    acc = TopKAccumulator(spec.k)
    evaluated = 0
    for u in graph.nodes():
        distances = hop_ball_with_distances(
            graph, u, spec.hops, include_self=spec.include_self, counter=counter
        )
        value = 0.0
        for v, d in distances.items():
            value += weights[d] * scores[v]
        evaluated += 1
        acc.offer(u, value)
    stats = QueryStats(
        algorithm="weighted-base",
        aggregate="sum",
        hops=spec.hops,
        k=spec.k,
        elapsed_sec=time.perf_counter() - start,
        nodes_evaluated=evaluated,
        edges_scanned=counter.edges_scanned,
        nodes_visited=counter.nodes_visited,
        balls_expanded=counter.balls_expanded,
    )
    return TopKResult(entries=acc.entries(), stats=stats)


def weighted_backward_topk(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    profile: DecayProfile = inverse_distance,
    *,
    gamma: Union[float, str] = "auto",
    distribution_fraction: float = 0.1,
    sizes: Optional[NeighborhoodSizeIndex] = None,
    csr: Optional[object] = None,
    rev_csr: Optional[object] = None,
    dist_ball_cache: Optional[object] = None,
) -> TopKResult:
    """LONA-Backward with distance weights.

    Soundness of the adapted Eq. 3: an undistributed ball member ``w`` of
    ``v`` contributes ``weight(dist(v, w)) * f(w) <= w_max * rest_bound``,
    so ``PS(v) + w_max * rest_bound * unknown(v) + f(v)·[v undistributed]``
    dominates the true weighted sum (the self term has weight
    ``w(0) <= 1``; using ``f(v)`` unweighted keeps the bound sound).

    Dispatches on ``spec.backend``; ``csr`` / ``rev_csr`` optionally supply
    prebuilt numpy CSR views of the graph and its reversal, and
    ``dist_ball_cache`` a session-scoped
    :class:`~repro.graph.csr.CSRDistanceBallCache` reused across queries.
    All three are ignored by the Python backend.
    """
    _check_spec(spec)
    concrete = resolve_backend(spec.backend)
    if concrete == "native":
        from repro.native.engine import weighted_backward_topk_native

        return weighted_backward_topk_native(
            graph,
            scores,
            spec,
            profile,
            gamma=gamma,
            distribution_fraction=distribution_fraction,
            sizes=sizes,
            csr=csr,  # type: ignore[arg-type]
            rev_csr=rev_csr,  # type: ignore[arg-type]
            dist_ball_cache=dist_ball_cache,
        )
    if concrete != "python":
        from repro.core.vectorized import weighted_backward_topk_numpy

        return weighted_backward_topk_numpy(
            graph,
            scores,
            spec,
            profile,
            gamma=gamma,
            distribution_fraction=distribution_fraction,
            sizes=sizes,
            csr=csr,  # type: ignore[arg-type]
            rev_csr=rev_csr,  # type: ignore[arg-type]
            dist_ball_cache=dist_ball_cache,  # type: ignore[arg-type]
        )
    weights = precompute_weights(profile, spec.hops)
    w_max = max(weights[1:], default=0.0)

    build_sec = 0.0
    if sizes is None:
        build_start = time.perf_counter()
        sizes = NeighborhoodSizeIndex.estimated(
            graph, spec.hops, include_self=spec.include_self
        )
        build_sec = time.perf_counter() - build_start

    start = time.perf_counter()
    counter = TraversalCounter()
    n = graph.num_nodes
    stats = QueryStats(
        algorithm="weighted-backward",
        aggregate="sum",
        hops=spec.hops,
        k=spec.k,
        index_build_sec=build_sec,
    )

    # Phase 1: weighted partial distribution, descending score order.
    nonzero = sorted(
        (u for u in range(n) if scores[u] > 0.0),
        key=lambda u: (-scores[u], u),
    )
    ordered_scores = [scores[u] for u in nonzero]
    effective_gamma = resolve_gamma(
        gamma, ordered_scores, distribution_fraction=distribution_fraction
    )
    cut = 0
    while cut < len(nonzero) and ordered_scores[cut] >= effective_gamma:
        cut += 1
    distributed = nonzero[:cut]
    rest_bound = ordered_scores[cut] if cut < len(nonzero) else 0.0

    dist_graph = graph.reversed() if graph.directed else graph
    partial = [0.0] * n
    covered = [0] * n
    self_distributed = bytearray(n)
    for u in distributed:
        fu = scores[u]
        distances = hop_ball_with_distances(
            dist_graph, u, spec.hops, include_self=spec.include_self, counter=counter
        )
        for v, d in distances.items():
            partial[v] += weights[d] * fu
            covered[v] += 1
        stats.distribution_pushes += len(distances)
        if spec.include_self:
            self_distributed[u] = 1

    # Phase 2: adapted Eq. 3 bounds.
    candidates: List[Tuple[float, int]] = []
    rest_term = w_max * rest_bound
    for v in range(n):
        if self_distributed[v] or not spec.include_self:
            unknown = sizes.upper(v) - covered[v]
            extra = 0.0
        else:
            unknown = sizes.upper(v) - covered[v] - 1
            extra = weights[0] * scores[v]
        bound = partial[v] + rest_term * max(unknown, 0) + extra
        candidates.append((bound, v))
        stats.bound_evaluations += 1
    candidates.sort(key=lambda item: (-item[0], item[1]))

    # Phase 3: TA-style verification.  rest_bound == 0 means every non-zero
    # score was distributed with its exact weight: bounds are exact values.
    exact_shortcut = rest_bound == 0.0
    acc = TopKAccumulator(spec.k)
    offered = 0
    for bound, v in candidates:
        if acc.is_full and bound <= acc.threshold:
            stats.early_terminated = True
            break
        if exact_shortcut:
            value = partial[v]
            if not self_distributed[v] and spec.include_self:
                value += weights[0] * scores[v]
        else:
            distances = hop_ball_with_distances(
                graph, v, spec.hops, include_self=spec.include_self, counter=counter
            )
            value = 0.0
            for w, d in distances.items():
                value += weights[d] * scores[w]
            stats.nodes_evaluated += 1
            stats.candidates_verified += 1
        acc.offer(v, value)
        offered += 1

    stats.pruned_nodes = n - offered
    stats.elapsed_sec = time.perf_counter() - start
    stats.edges_scanned = counter.edges_scanned
    stats.nodes_visited = counter.nodes_visited
    stats.balls_expanded = counter.balls_expanded
    stats.extra["gamma"] = effective_gamma
    stats.extra["distributed_nodes"] = float(len(distributed))
    stats.extra["rest_bound"] = rest_bound
    stats.extra["exact_shortcut"] = float(exact_shortcut)
    return TopKResult(entries=acc.entries(), stats=stats)
