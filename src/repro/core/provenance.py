"""Answer provenance: explain *why* a node ranks where it does.

Top-k answers over 2-hop neighborhoods are hard to eyeball — a node's score
is the sum of up to thousands of contributions.  This module decomposes one
node's aggregate into its provenance: which ball members contribute, how
much, from which hop ring — the "show your work" facility reviewers and
production debuggers both reach for.

Used by the examples and by tests as yet another independent check (the sum
of contributions must equal the algorithm's reported value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.aggregates.functions import AggregateKind, coerce_aggregate
from repro.aggregates.weighted import DecayProfile, precompute_weights, uniform_weight
from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.traversal import hop_ball_with_distances

__all__ = ["Contribution", "NodeExplanation", "explain_node"]


@dataclass(frozen=True)
class Contribution:
    """One ball member's share of the aggregate."""

    node: int
    distance: int
    score: float
    weight: float

    @property
    def amount(self) -> float:
        """The value this member adds to the (weighted) sum."""
        return self.weight * self.score


@dataclass
class NodeExplanation:
    """Full decomposition of one node's neighborhood aggregate."""

    node: int
    aggregate: AggregateKind
    hops: int
    value: float
    ball_size: int
    contributions: List[Contribution]
    by_distance: Dict[int, float]

    def top_contributors(self, limit: int = 10) -> List[Contribution]:
        """The largest contributors, descending by amount (ties by id)."""
        return sorted(
            self.contributions, key=lambda c: (-c.amount, c.node)
        )[:limit]

    def describe(self, limit: int = 5) -> str:
        """Human-readable explanation."""
        lines = [
            f"node {self.node}: {self.aggregate.value.upper()} over "
            f"{self.hops}-hop ball = {self.value:.4f} "
            f"({self.ball_size} members)",
            "by hop distance: "
            + ", ".join(
                f"d={d}: {total:.3f}"
                for d, total in sorted(self.by_distance.items())
            ),
            f"top contributors:",
        ]
        for c in self.top_contributors(limit):
            lines.append(
                f"  node {c.node:6d}  d={c.distance}  score={c.score:.3f}"
                + (f"  weight={c.weight:.3f}" if c.weight != 1.0 else "")
                + f"  -> {c.amount:.3f}"
            )
        return "\n".join(lines)


def explain_node(
    graph: Graph,
    scores: Sequence[float],
    node: int,
    *,
    hops: int = 2,
    aggregate: Union[str, AggregateKind] = "sum",
    include_self: bool = True,
    profile: Optional[DecayProfile] = None,
) -> NodeExplanation:
    """Decompose ``node``'s aggregate into per-member contributions.

    ``profile`` enables the footnote-1 weighted decomposition; omit it for
    the plain SUM/AVG/COUNT semantics (weight 1 everywhere).
    """
    kind = coerce_aggregate(aggregate)
    if not kind.sum_convertible:
        raise InvalidParameterError(
            f"provenance decomposes SUM/AVG/COUNT, not {kind.value}"
        )
    if profile is not None and kind is not AggregateKind.SUM:
        raise InvalidParameterError(
            "weighted decomposition is defined for SUM (footnote 1)"
        )
    weights = precompute_weights(profile or uniform_weight, hops)
    distances = hop_ball_with_distances(
        graph, node, hops, include_self=include_self
    )
    contributions: List[Contribution] = []
    by_distance: Dict[int, float] = {}
    total = 0.0
    for member, d in sorted(distances.items()):
        raw = scores[member]
        score = (
            (1.0 if raw > 0.0 else 0.0)
            if kind is AggregateKind.COUNT
            else raw
        )
        contribution = Contribution(
            node=member, distance=d, score=score, weight=weights[d]
        )
        contributions.append(contribution)
        by_distance[d] = by_distance.get(d, 0.0) + contribution.amount
        total += contribution.amount
    size = len(distances)
    if kind is AggregateKind.AVG:
        value = total / size if size else 0.0
    else:
        value = total
    return NodeExplanation(
        node=node,
        aggregate=kind,
        hops=hops,
        value=value,
        ball_size=size,
        contributions=contributions,
        by_distance=by_distance,
    )
