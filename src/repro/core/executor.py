"""One executor for every query path.

This module is the funnel the whole library drains through: a lowered
:class:`~repro.core.request.QueryRequest` plus a
:class:`~repro.core.context.GraphContext` (the shared caches) go in, a
:class:`~repro.core.results.TopKResult` comes out — whether the algorithm is
Base, LONA-Forward, LONA-Backward, the relational baseline, or a
candidate-filtered scan, and whichever execution backend runs it.

Entry points:

* :func:`execute` — answer the request exactly.
* :func:`stream` — answer it *incrementally*: a generator of
  :class:`~repro.core.results.StreamUpdate` refinements whose snapshots
  monotonically converge to :func:`execute`'s answer (anytime consumption).
* :func:`plan` — the cost-based :class:`~repro.core.planner.ExecutionPlan`
  for the request, without executing.
* :func:`choose_algorithm` — the ``algorithm="auto"`` policy, shared by the
  session facade and the legacy engine so both pick identically.

The ``"view"`` algorithm is session state (a maintained aggregate view
lives on the :class:`~repro.session.Network`), so it is dispatched there;
everything else lands here.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.aggregates.functions import (
    AggregateKind,
    evaluate_scores,
    finalize_sum,
    fold_scores,
)
from repro.core.backends import resolve_backend
from repro.core.backward import backward_topk
from repro.core.base import base_topk
from repro.core.bounds import avg_bound, static_sum_bound
from repro.core.context import GraphContext
from repro.core.deadline import check_deadline
from repro.core.forward import forward_topk
from repro.core.planner import ExecutionPlan, QueryPlanner
from repro.core.query import QuerySpec
from repro.core.request import QueryRequest
from repro.core.results import QueryStats, StreamUpdate, TopKResult
from repro.core.topk import TopKAccumulator
from repro.errors import InvalidParameterError
from repro.graph.traversal import TraversalCounter, hop_ball
from repro.relevance.base import ScoreVector

__all__ = ["execute", "execute_weighted", "stream", "plan", "choose_algorithm"]

#: Default score-density threshold under which ``"auto"`` picks backward.
AUTO_DENSITY_THRESHOLD = 0.2


def choose_algorithm(
    scores: ScoreVector,
    spec: QuerySpec,
    *,
    index_available: bool,
    auto_density_threshold: float = AUTO_DENSITY_THRESHOLD,
) -> str:
    """The ``algorithm="auto"`` policy (identical to the legacy engine's).

    Sparse scores -> backward (its cost tracks the non-zero count and it
    needs no index); dense with a built differential index -> forward (the
    offline cost is sunk); otherwise base.  Non-LONA aggregates (MAX/MIN)
    always take base.
    """
    if not spec.aggregate.lona_supported:
        return "base"
    if scores.density <= auto_density_threshold:
        return "backward"
    if index_available:
        return "forward"
    return "base"


def _kernel_tier(backend: str) -> str:
    """Which kernel tier a concrete backend's hot loops run on.

    ``parallel``/``cluster`` workers run the numpy kernels (unless a result
    already carries a more specific tag); ``native`` results tag themselves
    with compile provenance in the native engine.
    """
    if backend in ("python", "native"):
        return backend
    return "numpy"


def _with_kernel(result: TopKResult) -> TopKResult:
    """Stamp kernel-tier provenance into ``stats.extra`` (idempotent)."""
    result.stats.extra.setdefault("kernel", _kernel_tier(result.stats.backend))
    return result


def _check_context_match(ctx: GraphContext, request: QueryRequest) -> None:
    """The context's caches are built for one (hops, ball convention);
    serving a request with a different one would be silently unsound."""
    if request.hops != ctx.hops or request.include_self != ctx.include_self:
        raise InvalidParameterError(
            f"context built for (hops={ctx.hops}, "
            f"include_self={ctx.include_self}), request uses "
            f"(hops={request.hops}, include_self={request.include_self})"
        )


def _reject_inapplicable_knobs(request: QueryRequest, algorithm: str) -> None:
    """A knob the resolved algorithm cannot use must raise, not no-op.

    Mirrors the legacy engine's resolve-first-then-reject contract:
    ``ordering``/``seed`` only steer LONA-Forward, the gamma family only
    steers LONA-Backward.  ``algorithm`` here is the *resolved* concrete
    algorithm (or the execution mode, e.g. ``"filtered"``/``"stream"``).

    A knob counts as set when its value differs from the default *or* when
    the request's set-fields mask (``request.pinned``, recorded by the
    builder) names it — so an explicit default-valued pin like
    ``.distribution_fraction(0.1)`` on a forward query is rejected exactly
    like a non-default one.  Requests constructed directly carry an empty
    mask and keep the value-based check only.
    """
    inapplicable = []
    if algorithm != "forward":
        if request.ordering != "ubound" or request.is_pinned("ordering"):
            inapplicable.append("ordering")
        if request.seed is not None or request.is_pinned("seed"):
            inapplicable.append("seed")
    if algorithm != "backward":
        if request.gamma != "auto" or request.is_pinned("gamma"):
            inapplicable.append("gamma")
        if request.distribution_fraction != 0.1 or request.is_pinned(
            "distribution_fraction"
        ):
            inapplicable.append("distribution_fraction")
        if request.exact_sizes or request.is_pinned("exact_sizes"):
            inapplicable.append("exact_sizes")
    if inapplicable:
        raise InvalidParameterError(
            f"options {sorted(inapplicable)} have no effect on "
            f"{algorithm!r} execution; remove them or pin the algorithm "
            "they steer"
        )


def plan(
    ctx: GraphContext,
    scores: ScoreVector,
    request: QueryRequest,
    *,
    amortize_index: bool = True,
    planner: Optional[QueryPlanner] = None,
) -> ExecutionPlan:
    """The cost-based plan for ``request`` (see :mod:`repro.core.planner`)."""
    if planner is None:
        planner = QueryPlanner(
            ctx.graph,
            scores.values(),
            hops=request.hops,
            include_self=request.include_self,
            index_available=ctx.diff_index is not None,
            backend=request.backend,
        )
    execution_plan = planner.plan(request.spec(), amortize_index=amortize_index)
    if execution_plan.backend == "cluster":
        from repro.cluster.comm import comm_forecast

        # Shard/worker counts come from the session's configured engine
        # when one exists; otherwise the forecast assumes the default
        # two-worker cluster.  Forecasting must never spawn workers —
        # reading engine attributes does not touch its transport.
        shards = workers = 2
        if ctx.cluster_configured():
            engine = ctx.cluster_engine()
            shards, workers = engine.shards, engine.workers
        execution_plan.comm = comm_forecast(
            shards, request.spec().k, workers=workers
        )
    return execution_plan


def execute(
    ctx: GraphContext,
    scores: ScoreVector,
    request: QueryRequest,
    *,
    planner: Optional[QueryPlanner] = None,
    auto_density_threshold: float = AUTO_DENSITY_THRESHOLD,
) -> TopKResult:
    """Answer ``request`` over ``ctx.graph`` with ``scores``.

    Dispatch rules:

    * ``candidates`` set -> the filtered scan (only those nodes compete;
      the relational algorithm instead pushes the filter into its plan).
    * ``algorithm="auto"`` -> :func:`choose_algorithm`;
      ``"planned"`` -> the cost-based planner's choice.
    * otherwise the named algorithm, fed from the context's shared caches
      (differential index, size index, CSR views).
    """
    ctx.check_fresh()
    _check_context_match(ctx, request)
    spec = request.spec()
    algorithm = request.algorithm
    if algorithm == "view":
        raise InvalidParameterError(
            "algorithm 'view' requires a Network session with a maintained "
            "view; use Network.maintain(...) and query through the session"
        )
    if algorithm == "relational":
        from repro.relational.engine import relational_topk

        _reject_inapplicable_knobs(request, "relational")
        return _with_kernel(
            relational_topk(
                ctx.graph, scores.values(), spec, candidates=request.candidates
            )
        )
    concrete = resolve_backend(spec.backend)
    if request.candidates is not None:
        # The filtered scan evaluates candidates exactly (base semantics);
        # a pruning-algorithm pin cannot be honored there, so reject it
        # rather than silently running something else.
        if algorithm not in ("auto", "base"):
            raise InvalidParameterError(
                f"candidate filters run as an exact scan; algorithm "
                f"{algorithm!r} cannot be combined with .where(...) "
                "(supported: auto, base, relational, view)"
            )
        _reject_inapplicable_knobs(request, "filtered")
        if concrete in ("parallel", "cluster"):
            engine = (
                ctx.parallel_engine()
                if concrete == "parallel"
                else ctx.cluster_engine()
            )
            result = engine.execute_scan(
                scores, spec, "base", candidates=request.candidates
            )
            if result is not None:
                return _with_kernel(result)
        return _with_kernel(_filtered_topk(ctx, scores, request))
    if algorithm == "auto":
        algorithm = choose_algorithm(
            scores,
            spec,
            index_available=ctx.diff_index is not None,
            auto_density_threshold=auto_density_threshold,
        )
    elif algorithm == "planned":
        algorithm = plan(ctx, scores, request, planner=planner).chosen
    _reject_inapplicable_knobs(request, algorithm)

    if concrete in ("parallel", "cluster"):
        # Sharded execution (multi-process repro.parallel, or the socket
        # cluster) behind the same seam; the engine returns None when it
        # declines — graph below its min_nodes floor or too few workers —
        # and the query falls through to the in-process vectorized path.
        result = _sharded_execute(ctx, scores, request, algorithm, concrete)
        if result is not None:
            return _with_kernel(result)
    vectorized = concrete != "python"
    csr = ctx.csr() if vectorized else None
    if algorithm == "base":
        return _with_kernel(base_topk(ctx.graph, scores, spec, csr=csr))
    if algorithm == "forward":
        ctx.build_indexes()
        return _with_kernel(
            forward_topk(
                ctx.graph,
                scores,
                spec,
                diff_index=ctx.diff_index,
                ordering=request.ordering,
                seed=request.seed,
                csr=csr,
            )
        )
    # backward
    sizes = ctx.size_index(exact=request.exact_sizes)
    return _with_kernel(
        backward_topk(
            ctx.graph,
            scores,
            spec,
            gamma=request.gamma,  # type: ignore[arg-type]
            distribution_fraction=request.distribution_fraction,
            sizes=sizes,
            csr=csr,
            rev_csr=ctx.rev_csr() if vectorized else None,
            ball_cache=ctx.ball_cache() if vectorized else None,
        )
    )


def _sharded_execute(
    ctx: GraphContext,
    scores: ScoreVector,
    request: QueryRequest,
    algorithm: str,
    concrete: str,
):
    """Dispatch one resolved algorithm to a sharded engine (parallel/cluster).

    Returns None — caller falls back to in-process numpy — for algorithms
    the engines do not cover (they cover base/forward/backward; relational
    and view never reach here) or when the engine declines the graph.
    """
    engine = (
        ctx.parallel_engine() if concrete == "parallel" else ctx.cluster_engine()
    )
    spec = request.spec()
    if algorithm in ("base", "forward"):
        return engine.execute_scan(scores, spec, algorithm)
    if algorithm == "backward":
        return engine.execute_backward(
            scores,
            spec,
            gamma=request.gamma,
            distribution_fraction=request.distribution_fraction,
            exact_sizes=request.exact_sizes,
        )
    return None


def execute_weighted(
    ctx: GraphContext,
    scores: ScoreVector,
    spec: QuerySpec,
    profile=None,
    algorithm: str = "backward",
    options: Optional[dict] = None,
) -> TopKResult:
    """Distance-weighted top-k SUM (the paper's footnote 1), one dispatch.

    Shared by ``TopKEngine.topk_weighted`` and ``Network.topk_weighted``:
    ``profile`` maps hop distance to a weight in [0, 1] (default: inverse
    distance); ``algorithm`` is ``"base"`` or ``"backward"``; ``options``
    carries the backward knobs (gamma / distribution_fraction /
    exact_sizes), rejected on base.
    """
    from repro.aggregates.weighted import inverse_distance
    from repro.core.weighted import weighted_backward_topk, weighted_base_topk

    ctx.check_fresh()
    options = dict(options or {})
    if profile is None:
        profile = inverse_distance
    concrete = resolve_backend(spec.backend)
    vectorized = concrete != "python"
    if algorithm == "base":
        _reject_unknown_options(options)
        if concrete in ("parallel", "cluster"):
            engine = (
                ctx.parallel_engine()
                if concrete == "parallel"
                else ctx.cluster_engine()
            )
            result = engine.execute_weighted(scores, spec, profile)
            if result is not None:
                return _with_kernel(result)
        return _with_kernel(
            weighted_base_topk(
                ctx.graph, scores, spec, profile,
                csr=ctx.csr() if vectorized else None,
            )
        )
    if algorithm != "backward":
        raise InvalidParameterError(
            f"weighted queries support algorithm 'base' or 'backward', "
            f"got {algorithm!r}"
        )
    gamma = options.pop("gamma", "auto")
    fraction = float(options.pop("distribution_fraction", 0.1))  # type: ignore[arg-type]
    exact_sizes = bool(options.pop("exact_sizes", False))
    _reject_unknown_options(options)
    if (
        concrete in ("parallel", "cluster")
        and gamma == "auto"
        and fraction == 0.1
        and not exact_sizes
    ):
        # The sharded weighted route is an exact scan of owned centers; it
        # only stands in for backward when the distribution knobs are at
        # their defaults — a tuned gamma must reach the kernel that honors
        # it, so those queries run in-process.
        engine = (
            ctx.parallel_engine()
            if concrete == "parallel"
            else ctx.cluster_engine()
        )
        result = engine.execute_weighted(scores, spec, profile)
        if result is not None:
            return _with_kernel(result)
    return _with_kernel(
        weighted_backward_topk(
            ctx.graph,
            scores,
            spec,
            profile,
            gamma=gamma,  # type: ignore[arg-type]
            distribution_fraction=fraction,
            sizes=ctx.size_index(exact=exact_sizes),
            csr=ctx.csr() if vectorized else None,
            rev_csr=ctx.rev_csr() if vectorized else None,
            dist_ball_cache=ctx.dist_ball_cache() if vectorized else None,
        )
    )


def _reject_unknown_options(options: dict) -> None:
    if options:
        raise InvalidParameterError(
            f"unknown query options: {sorted(options)}"
        )


# ----------------------------------------------------------------------
# Candidate-filtered scan
# ----------------------------------------------------------------------
def _iter_exact_values(
    ctx: GraphContext,
    scores: ScoreVector,
    spec: QuerySpec,
    order: Sequence[int],
    counter: TraversalCounter,
) -> Iterator[Tuple[int, float]]:
    """``(node, exact aggregate)`` pairs for ``order``, backend-dispatched.

    The single exact-evaluation loop behind both the candidate-filtered
    scan and the streaming executor: the numpy backend expands node blocks
    with the multi-source CSR kernel and reduces every aggregate kind with
    one segmented reduction (MAX/MIN included), the python backend runs
    one truncated BFS per node.  Traversal work lands in ``counter``
    either way.
    """
    kind = spec.aggregate
    concrete = resolve_backend(spec.backend)
    if concrete == "native" and len(order) > 0:
        import numpy as np

        from repro.native.engine import iter_exact_values_native

        csr = ctx.csr()
        folded = np.asarray(fold_scores(kind, scores), dtype=np.float64)
        eff_kind = AggregateKind.SUM if kind is AggregateKind.COUNT else kind
        yield from iter_exact_values_native(
            csr, order, folded, eff_kind, spec.hops, spec.include_self,
            counter, ctx.graph.num_nodes,
        )
        return
    if concrete != "python" and len(order) > 0:
        import numpy as np

        from repro.core.vectorized import aggregate_ball_segments, resolve_block_size
        from repro.graph.csr import batched_hop_balls

        csr = ctx.csr()
        folded = np.asarray(fold_scores(kind, scores), dtype=np.float64)
        eff_kind = AggregateKind.SUM if kind is AggregateKind.COUNT else kind
        nodes = np.asarray(order, dtype=np.int64)
        block = resolve_block_size(
            None, ctx.graph.num_nodes, int(csr.num_arcs)
        )
        for lo in range(0, nodes.size, block):
            check_deadline()
            centers = nodes[lo : lo + block]
            owners, members, edges = batched_hop_balls(
                csr, centers, spec.hops, include_self=spec.include_self
            )
            count = int(centers.size)
            counter.edges_scanned += edges
            counter.nodes_visited += int(members.size) + (
                0 if spec.include_self else count
            )
            counter.balls_expanded += count
            values = aggregate_ball_segments(
                np, eff_kind, owners, folded[members], count
            )
            for j in range(count):
                yield int(centers[j]), float(values[j])
        return
    folded_list = fold_scores(kind, scores)
    for u in order:
        check_deadline()
        ball = hop_ball(
            ctx.graph, u, spec.hops, include_self=spec.include_self, counter=counter
        )
        if kind.sum_convertible:
            total = 0.0
            for v in ball:
                total += folded_list[v]
            value = finalize_sum(
                AggregateKind.SUM if kind is AggregateKind.COUNT else kind,
                total,
                len(ball),
            )
        else:
            value = evaluate_scores(kind, (scores[v] for v in ball))
        yield u, value


def _filtered_topk(
    ctx: GraphContext, scores: ScoreVector, request: QueryRequest
) -> TopKResult:
    """Exact scan restricted to the request's candidate set.

    Semantically Base over the candidate subset: every candidate's ball is
    evaluated exactly, nothing else competes.
    """
    spec = request.spec()
    candidates = request.candidates or ()
    start = time.perf_counter()
    counter = TraversalCounter()
    acc = TopKAccumulator(spec.k)
    for node, value in _iter_exact_values(
        ctx, scores, spec, candidates, counter
    ):
        acc.offer(node, value)
    stats = QueryStats(
        algorithm="base",
        aggregate=spec.aggregate.value,
        backend=resolve_backend(spec.backend),
        hops=spec.hops,
        k=spec.k,
        elapsed_sec=time.perf_counter() - start,
        nodes_evaluated=len(candidates),
        edges_scanned=counter.edges_scanned,
        nodes_visited=counter.nodes_visited,
        balls_expanded=counter.balls_expanded,
    )
    stats.extra["candidates"] = float(len(candidates))
    return TopKResult(entries=acc.entries(), stats=stats)


# ----------------------------------------------------------------------
# Streaming (anytime) execution
# ----------------------------------------------------------------------
def _static_upper_bounds(
    ctx: GraphContext,
    scores: ScoreVector,
    spec: QuerySpec,
    pool: Sequence[int],
) -> Dict[int, float]:
    """A sound static upper bound on F(v) for every pool node, no traversal.

    SUM/COUNT use the ``(N_ub(v) - 1) + f(v)`` static bound (open ball:
    ``N_ub(v)``); AVG divides by the size *lower* bound and clamps at 1 (all
    scores are in [0, 1]); MAX is bounded by the global maximum score and
    MIN by ``f(v)`` (closed ball) or 1 (open ball).  Precision only affects
    how early the stream converges, never its soundness.  Work is
    proportional to the pool, not the graph (MAX's global maximum aside),
    so a tightly filtered stream starts instantly on a large graph.
    """
    sizes = ctx.size_index()
    kind = spec.aggregate
    if kind is AggregateKind.MAX:
        gmax = max(scores, default=0.0)
        return {v: gmax for v in pool}
    if kind is AggregateKind.MIN:
        if spec.include_self:
            return {v: scores[v] for v in pool}
        return {v: 1.0 for v in pool}
    is_count = kind is AggregateKind.COUNT
    bounds: Dict[int, float] = {}
    for v in pool:
        own = scores[v]
        if is_count:
            own = 1.0 if own > 0.0 else 0.0
        if spec.include_self:
            sum_ub = static_sum_bound(sizes.upper(v), own)
        else:
            sum_ub = float(sizes.upper(v))
        if kind is AggregateKind.AVG:
            bounds[v] = min(1.0, avg_bound(sum_ub, sizes.lower(v)))
        else:
            bounds[v] = sum_ub
    return bounds


def stream(
    ctx: GraphContext, scores: ScoreVector, request: QueryRequest
) -> Iterator[StreamUpdate]:
    """Incremental execution: yield monotonically refining top-k states.

    Nodes are evaluated exactly in descending static-upper-bound order, so
    after each evaluation the bound on every unseen node (the next node's
    static bound) is non-increasing, and the top-k snapshot only improves.
    The stream stops early — with ``done=True`` — as soon as the bound
    proves no unseen node can enter the top-k; the final snapshot equals
    ``execute``'s answer.  Both backends yield the same state sequence; the
    numpy backend merely evaluates candidate blocks with the CSR kernel.

    One update is yielded per evaluated node, so an *empty* competitor
    pool (a ``.where(...)`` filter matching nothing) produces an empty
    iterator — the streamed analogue of ``execute``'s empty result.
    """
    # Validate eagerly — stream() is a plain function returning an inner
    # generator, so misuse raises at the call site, not at first next().
    ctx.check_fresh()
    _check_context_match(ctx, request)
    spec = request.spec()
    if request.algorithm not in ("auto", "base"):
        raise InvalidParameterError(
            "streaming runs its own bound-ordered exact scan; algorithm "
            f"{request.algorithm!r} cannot be pinned on .stream() "
            "(supported: auto, base)"
        )
    _reject_inapplicable_knobs(request, "stream")
    if request.candidates is not None:
        pool: Sequence[int] = request.candidates
    else:
        pool = range(ctx.graph.num_nodes)
    return _stream_updates(ctx, scores, spec, pool)


def _stream_updates(
    ctx: GraphContext,
    scores: ScoreVector,
    spec: QuerySpec,
    pool: Sequence[int],
) -> Iterator[StreamUpdate]:
    bounds = _static_upper_bounds(ctx, scores, spec, pool)
    order = sorted(pool, key=lambda v: (-bounds[v], v))
    total = len(order)
    acc = TopKAccumulator(spec.k)
    counter = TraversalCounter()

    def remaining_bound(next_index: int) -> float:
        if next_index >= total:
            return float("-inf")
        return bounds[order[next_index]]

    evaluated = 0
    for node, value in _iter_exact_values(ctx, scores, spec, order, counter):
        acc.offer(node, value)
        evaluated += 1
        bound = remaining_bound(evaluated)
        done = evaluated >= total or (
            acc.is_full and bound <= acc.threshold
        )
        yield StreamUpdate(
            node=node,
            value=value,
            bound=bound,
            entries=tuple(acc.entries()),
            evaluated=evaluated,
            total=total,
            done=done,
            k=spec.k,
        )
        if done:
            return
