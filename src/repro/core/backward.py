"""LONA-Backward: partial backward distribution + verified top-k (Sec. IV).

Three phases:

1. **Partial distribution.**  Nodes whose score reaches the threshold
   ``gamma`` distribute their score to every node of their h-hop ball, in
   descending score order ("we distribute nodes according to their scores in
   a descending order").  Each reached node ``v`` accumulates the partial
   sum ``PS(v)`` and coverage count ``l(v)``.  On directed graphs the
   distribution walks the *reversed* arcs, because ``u``'s score contributes
   to ``F(v)`` iff ``u`` is reachable from ``v`` — i.e. ``v`` is reachable
   from ``u`` along reversed arcs.

2. **Bounding.**  Every undistributed score is at most ``rest_bound`` — the
   highest score strictly below ``gamma`` (0 when everything non-zero was
   distributed, which is exactly the binary 0/1 case whose zeros Algorithm 2
   skips).  Eq. 3 then upper-bounds every node's aggregate; ball sizes come
   from an exact index when available or from index-free degree estimates
   (LONA-Backward is the paper's no-precomputation algorithm).

3. **Verification.**  Nodes are visited in descending upper-bound order and
   evaluated exactly ("performs a naive forward processing, where the
   unpromising nodes are discarded"); once the k-th best exact value reaches
   the next upper bound the scan stops — the classic threshold-algorithm
   termination.  When ``rest_bound == 0`` the bound *is* the exact value and
   verification needs no BFS at all (Algorithm 2's fast path).

This module is the pure-Python execution backend; ``spec.backend`` routes
the same query to the vectorized CSR implementation in
:mod:`repro.core.vectorized` when numpy is available.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple, Union

from repro.aggregates.functions import AggregateKind
from repro.core.backends import resolve_backend
from repro.core.bounds import avg_bound, backward_sum_bound
from repro.core.deadline import check_deadline
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult
from repro.core.topk import TopKAccumulator
from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex
from repro.graph.traversal import TraversalCounter, hop_ball

__all__ = ["backward_topk", "resolve_gamma"]


def resolve_gamma(
    gamma: Union[float, str],
    ordered_scores: Sequence[float],
    *,
    distribution_fraction: float = 0.1,
) -> float:
    """Turn a gamma policy into a concrete threshold.

    ``gamma`` may be a float (used as-is) or ``"auto"``: distribute at least
    ``distribution_fraction`` of the non-zero nodes — i.e. gamma becomes the
    score at that depth of the descending non-zero score list.  With binary
    scores every non-zero node scores 1.0, so auto-gamma is 1.0 and the
    whole non-zero set is distributed (Algorithm 2's zero-skipping scan).

    ``ordered_scores`` must be the non-zero scores in descending order.
    """
    if isinstance(gamma, str):
        if gamma != "auto":
            raise InvalidParameterError(
                f"gamma must be a float or 'auto', got {gamma!r}"
            )
        if not ordered_scores:
            return 1.0  # nothing to distribute either way
        if not 0.0 < distribution_fraction <= 1.0:
            raise InvalidParameterError(
                "distribution_fraction must be in (0, 1], got "
                f"{distribution_fraction}"
            )
        depth = max(1, round(distribution_fraction * len(ordered_scores)))
        return ordered_scores[min(depth, len(ordered_scores)) - 1]
    value = float(gamma)
    if value < 0.0:
        raise InvalidParameterError(f"gamma must be >= 0, got {value}")
    return value


def backward_topk(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    gamma: Union[float, str] = "auto",
    distribution_fraction: float = 0.1,
    sizes: Optional[NeighborhoodSizeIndex] = None,
    csr: Optional[object] = None,
    rev_csr: Optional[object] = None,
    ball_cache: Optional[object] = None,
) -> TopKResult:
    """Answer ``spec`` with LONA-Backward.

    Dispatches on ``spec.backend`` (``"auto"`` prefers the vectorized numpy
    implementation, falling back to this module's pure-Python loop when
    numpy is absent).

    Parameters
    ----------
    gamma:
        Distribution threshold: every node with ``f(u) >= gamma`` is
        distributed.  ``"auto"`` (default) picks the score at depth
        ``distribution_fraction`` of the descending non-zero score list.
    distribution_fraction:
        Only used by ``gamma="auto"``.
    sizes:
        Optional ``N(v)`` index.  When omitted, index-free degree-based
        estimates are used (upper bound for the SUM term, lower bound for
        the AVG denominator), keeping the algorithm precomputation-free as
        the paper advertises.
    csr:
        Optional prebuilt numpy :class:`~repro.graph.csr.CSRGraph` view of
        ``graph``.  Ignored by the Python backend.
    rev_csr:
        Optional prebuilt numpy CSR view of ``graph.reversed()`` (directed
        graphs only — distribution walks the reversed arcs).  Ignored by
        the Python backend.
    ball_cache:
        Optional session-scoped :class:`~repro.graph.csr.CSRBallCache`
        reused across queries for verification-phase expansions.  Ignored
        by the Python backend.
    """
    concrete = resolve_backend(spec.backend)
    if concrete == "native":
        from repro.native.engine import backward_topk_native

        return backward_topk_native(
            graph,
            scores,
            spec,
            gamma=gamma,
            distribution_fraction=distribution_fraction,
            sizes=sizes,
            csr=csr,  # type: ignore[arg-type]
            rev_csr=rev_csr,  # type: ignore[arg-type]
            ball_cache=ball_cache,
        )
    if concrete != "python":
        from repro.core.vectorized import backward_topk_numpy

        return backward_topk_numpy(
            graph,
            scores,
            spec,
            gamma=gamma,
            distribution_fraction=distribution_fraction,
            sizes=sizes,
            csr=csr,  # type: ignore[arg-type]
            rev_csr=rev_csr,  # type: ignore[arg-type]
            ball_cache=ball_cache,  # type: ignore[arg-type]
        )
    kind = spec.aggregate
    if not kind.lona_supported:
        raise InvalidParameterError(
            f"LONA-Backward supports SUM/AVG/COUNT, not {kind.value}; "
            "use algorithm='base' for MAX/MIN"
        )
    if kind is AggregateKind.COUNT:
        scores = [1.0 if s > 0.0 else 0.0 for s in scores]
        kind = AggregateKind.SUM
    is_avg = kind is AggregateKind.AVG

    build_sec = 0.0
    if sizes is None:
        build_start = time.perf_counter()
        sizes = NeighborhoodSizeIndex.estimated(
            graph, spec.hops, include_self=spec.include_self
        )
        build_sec = time.perf_counter() - build_start

    start = time.perf_counter()
    counter = TraversalCounter()
    n = graph.num_nodes
    stats = QueryStats(
        algorithm="backward",
        aggregate=spec.aggregate.value,
        hops=spec.hops,
        k=spec.k,
        index_build_sec=build_sec,
    )

    # ------------------------------------------------------------------
    # Phase 1: partial distribution in descending score order.
    # ------------------------------------------------------------------
    nonzero = sorted(
        (u for u in range(n) if scores[u] > 0.0),
        key=lambda u: (-scores[u], u),
    )
    ordered_scores = [scores[u] for u in nonzero]
    effective_gamma = resolve_gamma(
        gamma, ordered_scores, distribution_fraction=distribution_fraction
    )
    cut = 0
    while cut < len(nonzero) and ordered_scores[cut] >= effective_gamma:
        cut += 1
    distributed = nonzero[:cut]
    rest_bound = ordered_scores[cut] if cut < len(nonzero) else 0.0

    dist_graph = graph.reversed() if graph.directed else graph
    partial = [0.0] * n
    covered = [0] * n
    self_distributed = bytearray(n)
    for u in distributed:
        check_deadline()
        fu = scores[u]
        ball = hop_ball(
            dist_graph, u, spec.hops, include_self=spec.include_self, counter=counter
        )
        for v in ball:
            partial[v] += fu
            covered[v] += 1
        stats.distribution_pushes += len(ball)
        if spec.include_self:
            self_distributed[u] = 1

    # ------------------------------------------------------------------
    # Phase 2: Eq. 3 upper bound for every node.
    # ------------------------------------------------------------------
    candidates: List[Tuple[float, int]] = []
    for v in range(n):
        # With the open-ball convention the center never contributes to its
        # own aggregate, which is the same accounting as "self already
        # handled" — no separate f(v) term.
        sum_bound = backward_sum_bound(
            partial[v],
            covered[v],
            sizes.upper(v),
            scores[v],
            rest_bound,
            self_distributed=bool(self_distributed[v]) or not spec.include_self,
        )
        bound = avg_bound(sum_bound, sizes.lower(v)) if is_avg else sum_bound
        candidates.append((bound, v))
        stats.bound_evaluations += 1
    candidates.sort(key=lambda item: (-item[0], item[1]))

    # ------------------------------------------------------------------
    # Phase 3: verification in descending bound order, TA-style stop.
    # ------------------------------------------------------------------
    # When nothing was left undistributed, PS(v) (+ f(v)) *is* F_sum(v):
    # no BFS needed for SUM; AVG still needs the exact ball size.
    exact_shortcut = rest_bound == 0.0 and (not is_avg or sizes.is_exact)
    acc = TopKAccumulator(spec.k)
    offered = 0
    for bound, v in candidates:
        check_deadline()
        if acc.is_full and bound <= acc.threshold:
            stats.early_terminated = True
            break
        if exact_shortcut:
            total = partial[v]
            if not self_distributed[v] and spec.include_self:
                total += scores[v]
            # An isolated node's open ball is empty (N = 0); its average is
            # 0 by the same convention the BFS branch below uses.
            value = (total / sizes.value(v) if sizes.value(v) else 0.0) if is_avg else total
        else:
            ball = hop_ball(
                graph, v, spec.hops, include_self=spec.include_self, counter=counter
            )
            total = 0.0
            for w in ball:
                total += scores[w]
            value = (total / len(ball) if ball else 0.0) if is_avg else total
            stats.nodes_evaluated += 1
            stats.candidates_verified += 1
        acc.offer(v, value)
        offered += 1

    # Every candidate never reached by the verification loop was eliminated
    # purely by its upper bound.
    stats.pruned_nodes = n - offered
    stats.elapsed_sec = time.perf_counter() - start
    stats.edges_scanned = counter.edges_scanned
    stats.nodes_visited = counter.nodes_visited
    stats.balls_expanded = counter.balls_expanded
    stats.extra["gamma"] = effective_gamma
    stats.extra["distributed_nodes"] = float(len(distributed))
    stats.extra["rest_bound"] = rest_bound
    stats.extra["exact_shortcut"] = float(exact_shortcut)
    return TopKResult(entries=acc.entries(), stats=stats)
