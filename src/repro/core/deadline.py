"""Cooperative deadline propagation into backend kernels.

The serving layer has always enforced deadlines *before* execution (a
still-queued handle expires) and streams could observe them between
updates, but a query already running a long scan would run to completion
even though nobody was waiting for the answer.  This module threads the
deadline *into* execution without changing any kernel signature: the
service wraps the run in a :func:`deadline_scope`, and kernels call
:func:`check_deadline` at their natural batch boundaries (node-block
loops, candidate rounds, parallel dispatch rounds), raising
:class:`~repro.errors.DeadlineExceededError` mid-execution.

The scope is **thread-local**: the service executes each query on one
scheduler thread, so a scope installed there is visible to every kernel
frame below it and invisible to unrelated concurrent queries.  Checks are
two attribute loads and a ``time.monotonic()`` call — cheap enough for
per-block granularity (thousands of nodes between checks), deliberately
not per-node.

Coalesced fused-scan groups are *not* deadline-checked: one scan answers
many callers with potentially different deadlines, and aborting the scan
for the most impatient member would take everyone else's answer with it.
The scheduler already expires queued members individually before grouping.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import DeadlineExceededError

__all__ = ["deadline_scope", "active_deadline", "check_deadline"]

_STATE = threading.local()


class deadline_scope:
    """Install an absolute deadline (``time.monotonic()`` timestamp) for the
    duration of a ``with`` block on this thread.

    ``None`` installs "no deadline", which *masks* any outer scope — a
    nested undeadlined run (e.g. a maintenance rebuild triggered inside a
    served query) is not killed by its caller's budget.  Scopes nest and
    restore the previous value on exit.
    """

    __slots__ = ("_deadline_at", "_previous")

    def __init__(self, deadline_at: Optional[float]) -> None:
        self._deadline_at = (
            None if deadline_at is None else float(deadline_at)
        )
        self._previous: Optional[float] = None

    def __enter__(self) -> "deadline_scope":
        self._previous = getattr(_STATE, "deadline_at", None)
        _STATE.deadline_at = self._deadline_at
        return self

    def __exit__(self, *exc_info) -> None:
        _STATE.deadline_at = self._previous


def active_deadline() -> Optional[float]:
    """The current thread's absolute deadline, or None."""
    return getattr(_STATE, "deadline_at", None)


def check_deadline() -> None:
    """Raise :class:`DeadlineExceededError` if this thread's deadline passed.

    Kernels call this at batch boundaries; with no active scope it is a
    single attribute-default load.
    """
    deadline_at = getattr(_STATE, "deadline_at", None)
    if deadline_at is not None and time.monotonic() >= deadline_at:
        raise DeadlineExceededError(
            "query exceeded its deadline during execution"
        )
