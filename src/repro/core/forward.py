"""LONA-Forward: pruning-based forward processing (Algorithm 1 + Sec. III).

The loop is the naive forward scan, plus pruning driven by the precomputed
differential index:

1. **Static pruning.**  Every node starts with the static bound
   ``N(v) - 1 + f(v)`` (all other ball members at the maximum score 1).
   Nodes whose static bound cannot beat the rising ``topklbound`` are
   skipped without evaluation — this is the ``N(v) - 1 + f(v)`` arm of
   Eq. 1, applied lazily when the queue reaches the node.
2. **Differential (neighbor) pruning** — the paper's ``pruneNodes``: after
   evaluating ``u`` exactly, every not-yet-evaluated neighbor ``v`` receives
   the Eq. 1 bound ``F_sum(u) + delta(v-u)``; bounds from multiple evaluated
   neighbors combine by running minimum ("the upper bound of F(v) is the
   minimum value of the bounds derived from v's friends").  Since
   ``delta >= 0``, the differential arm can only prune while
   ``F_sum(u) <= topklbound``, so the whole neighbor pass is skipped for
   high-value nodes — that gate is what keeps pruning overhead below the
   savings.

Pruning uses non-strict comparison (``bound <= threshold``), sound under the
accumulator's strictly-greater acceptance rule: a node whose value cannot
*exceed* the k-th best can never enter the top-k list.

The hot loop deliberately in-lines the bound arithmetic (no per-edge
function calls): at bench scale the Python call overhead would otherwise
exceed the BFS work being saved.  The formulas live in
:mod:`repro.core.bounds` where the property tests attack them; this module
repeats them in flat form and the equivalence is covered by the
algorithm-agreement tests.

This module is the pure-Python execution backend; ``spec.backend`` routes
the same query to the vectorized CSR implementation in
:mod:`repro.core.vectorized` when numpy is available.  The two backends
return entry-for-entry identical results (asserted by the parity suite).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.aggregates.functions import AggregateKind
from repro.core.backends import resolve_backend
from repro.core.deadline import check_deadline
from repro.core.ordering import make_order
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult
from repro.core.topk import TopKAccumulator
from repro.errors import InvalidParameterError
from repro.graph.diffindex import DifferentialIndex, build_differential_index
from repro.graph.graph import Graph
from repro.graph.traversal import TraversalCounter, hop_ball

__all__ = ["forward_topk"]


def forward_topk(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    diff_index: Optional[DifferentialIndex] = None,
    ordering: str = "ubound",
    seed: Optional[int] = None,
    csr: Optional[object] = None,
) -> TopKResult:
    """Answer ``spec`` with LONA-Forward.

    Dispatches on ``spec.backend`` (``"auto"`` prefers the vectorized numpy
    implementation, falling back to this module's pure-Python loop when
    numpy is absent).

    Parameters
    ----------
    diff_index:
        The precomputed differential index for ``(graph, spec.hops,
        spec.include_self)``.  When omitted it is built on the fly and the
        build time is reported in ``stats.index_build_sec`` (the paper
        treats this as an offline cost).
    ordering:
        Queue order strategy (see :mod:`repro.core.ordering`).
    seed:
        Only used by the ``"random"`` ordering.
    csr:
        Optional prebuilt numpy :class:`~repro.graph.csr.CSRGraph` view of
        ``graph`` (the engine caches one across queries).  Ignored by the
        Python backend.
    """
    concrete = resolve_backend(spec.backend)
    if concrete == "native":
        from repro.native.engine import forward_topk_native

        return forward_topk_native(
            graph,
            scores,
            spec,
            diff_index=diff_index,
            ordering=ordering,
            seed=seed,
            csr=csr,  # type: ignore[arg-type]
        )
    if concrete != "python":
        from repro.core.vectorized import forward_topk_numpy

        return forward_topk_numpy(
            graph,
            scores,
            spec,
            diff_index=diff_index,
            ordering=ordering,
            seed=seed,
            csr=csr,  # type: ignore[arg-type]
        )
    kind = spec.aggregate
    if not kind.lona_supported:
        raise InvalidParameterError(
            f"LONA-Forward supports SUM/AVG/COUNT, not {kind.value}; "
            "use algorithm='base' for MAX/MIN"
        )
    if kind is AggregateKind.COUNT:
        # COUNT == SUM over the 0/1 indicator transform.
        scores = [1.0 if s > 0.0 else 0.0 for s in scores]
        kind = AggregateKind.SUM

    build_sec = 0.0
    if diff_index is None:
        build_start = time.perf_counter()
        diff_index = build_differential_index(
            graph, spec.hops, include_self=spec.include_self
        )
        build_sec = time.perf_counter() - build_start
    diff_index.check_compatible(graph, spec.hops, spec.include_self)
    sizes = diff_index.sizes

    start = time.perf_counter()
    counter = TraversalCounter()
    acc = TopKAccumulator(spec.k)
    n = graph.num_nodes
    is_avg = kind is AggregateKind.AVG
    hops = spec.hops
    include_self = spec.include_self
    adj = [graph.neighbors(u) for u in range(n)]

    # Static Eq. 1 arm, one pass: N(v) - 1 + f(v) for the closed ball, or
    # N_open(v) for the open ball (the center does not contribute there).
    if include_self:
        static_ub: List[float] = [
            max(sizes.value(v) - 1, 0) + scores[v] for v in range(n)
        ]
    else:
        static_ub = [float(sizes.value(v)) for v in range(n)]
    ubound_sum = list(static_ub)
    if is_avg:
        inv_size = [1.0 / max(sizes.value(v), 1) for v in range(n)]
    else:
        inv_size = []

    pruned = bytearray(n)
    evaluated = bytearray(n)

    stats = QueryStats(
        algorithm="forward",
        aggregate=spec.aggregate.value,
        hops=spec.hops,
        k=spec.k,
        index_build_sec=build_sec,
    )

    order = make_order(ordering, graph, scores, kind=kind, sizes=sizes, seed=seed)

    bound_evals = 0
    pruned_count = 0
    evaluated_count = 0
    for u in order:
        check_deadline()
        if evaluated[u] or pruned[u]:
            continue
        threshold = acc.threshold  # -inf until k nodes have been seen
        # Lazy check of the running-minimum bound (starts at the static
        # bound, tightened by any differential bounds received so far).
        bound_u = ubound_sum[u] * inv_size[u] if is_avg else ubound_sum[u]
        if bound_u <= threshold:
            pruned[u] = 1
            pruned_count += 1
            continue

        # Exact forward processing of u.
        ball = hop_ball(graph, u, hops, include_self=include_self, counter=counter)
        fsum_u = 0.0
        for w in ball:
            fsum_u += scores[w]
        evaluated[u] = 1
        evaluated_count += 1
        if is_avg:
            value = fsum_u / len(ball) if ball else 0.0
        else:
            value = fsum_u
        acc.offer(u, value)
        threshold = acc.threshold

        # pruneNodes(u, F(u), G, topklbound): the differential arm
        # F_sum(u) + delta(v-u) can only fall under the threshold when
        # F_sum(u) itself does (delta >= 0) — skip the pass otherwise.
        if fsum_u > threshold:
            continue
        row = diff_index.delta_row(u)
        nbrs = adj[u]
        for i in range(len(nbrs)):
            v = nbrs[i]
            if evaluated[v] or pruned[v]:
                continue
            bound = fsum_u + row[i]
            bound_evals += 1
            if bound < ubound_sum[v]:
                ubound_sum[v] = bound
            else:
                bound = ubound_sum[v]
            if (bound * inv_size[v] if is_avg else bound) <= threshold:
                pruned[v] = 1
                pruned_count += 1

    stats.nodes_evaluated = evaluated_count
    stats.pruned_nodes = pruned_count
    stats.bound_evaluations = bound_evals
    stats.elapsed_sec = time.perf_counter() - start
    stats.edges_scanned = counter.edges_scanned
    stats.nodes_visited = counter.nodes_visited
    stats.balls_expanded = counter.balls_expanded
    stats.extra["ordering"] = ordering
    return TopKResult(entries=acc.entries(), stats=stats)
