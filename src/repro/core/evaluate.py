"""Exact evaluation of a single node's neighborhood aggregate.

One function, shared by every algorithm that ever needs an exact value —
Base's full scan, LONA-Forward's non-pruned evaluations, LONA-Backward's
verification phase, and the distributed workers — so "what exactly is F(u)?"
has a single answer in the codebase.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.aggregates.functions import AggregateKind, evaluate_scores, finalize_sum
from repro.graph.graph import Graph
from repro.graph.traversal import TraversalCounter, hop_ball

__all__ = ["evaluate_node", "exact_sum_and_size"]


def exact_sum_and_size(
    graph: Graph,
    scores: Sequence[float],
    node: int,
    hops: int,
    *,
    include_self: bool = True,
    counter: Optional[TraversalCounter] = None,
) -> Tuple[float, int]:
    """``(F_sum(node), N(node))`` by truncated BFS."""
    ball = hop_ball(graph, node, hops, include_self=include_self, counter=counter)
    return sum(scores[v] for v in ball), len(ball)


def evaluate_node(
    graph: Graph,
    scores: Sequence[float],
    node: int,
    hops: int,
    kind: AggregateKind,
    *,
    include_self: bool = True,
    counter: Optional[TraversalCounter] = None,
) -> float:
    """Exact aggregate value ``F(node)`` for any supported aggregate."""
    if kind.sum_convertible:
        total, size = exact_sum_and_size(
            graph, scores, node, hops, include_self=include_self, counter=counter
        )
        if kind is AggregateKind.COUNT:
            # COUNT is SUM over the 0/1 indicator; recompute on the ball to
            # stay correct even when the caller passed raw (non-indicator)
            # scores directly to this oracle-style entry point.
            ball = hop_ball(graph, node, hops, include_self=include_self)
            return float(sum(1 for v in ball if scores[v] > 0.0))
        return finalize_sum(kind, total, size)
    ball = hop_ball(graph, node, hops, include_self=include_self, counter=counter)
    return evaluate_scores(kind, (scores[v] for v in ball))
