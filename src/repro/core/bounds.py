"""The paper's upper-bound formulas, as pure functions.

Both LONA algorithms prune with upper bounds on ``F_sum``; keeping the
formulas here — free of any algorithm state — lets the property-based tests
attack each bound independently ("for every graph, every score vector, every
node: bound >= exact value").

Notation (closed-ball convention, DESIGN.md Sec. 1):

* ``S(v)``: closed h-hop ball of ``v``; ``N(v) = |S(v)|``.
* ``F_sum(v) = sum(f(w) for w in S(v))``; note ``f(v)`` is included.
* All scores satisfy ``0 <= f <= 1`` (enforced by ScoreVector).

Eq. 1 (forward / differential):
    ``F_sum(v) <= F_sum(u) + delta(v-u)``
    Proof: split ``S(v)`` into ``S(v) ∩ S(u)`` and ``S(v) \\ S(u)``.  The
    first part's scores all appear inside ``F_sum(u)`` and the remainder of
    ``F_sum(u)`` is non-negative; the second part has ``delta(v-u)`` members
    each scoring at most 1.

Static bound:
    ``F_sum(v) <= (N(v) - 1) + f(v)``
    (v's own score is known; the other ``N(v) - 1`` ball members score at
    most 1 each.)

Eq. 3 (backward / partial distribution):
    ``F_sum(v) <= PS(v) + rest_bound * unknown(v) + f(v)·[v not distributed]``
    where ``PS(v)`` sums the distributed scores that reached ``v``,
    ``unknown(v)`` counts ball members whose score was not distributed
    (excluding ``v`` itself when its own score is added explicitly), and
    ``rest_bound`` upper-bounds every undistributed score (the descending
    distribution order makes the last distributed score such a bound; the
    distribution threshold gamma is another).

AVG (Eq. 2):
    ``F_avg(v) = F_sum(v) / N(v) <= sum_upper / N_lower``
    — dividing a sum upper bound by a *lower* bound on the ball size keeps
    the quotient an upper bound.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError

__all__ = [
    "static_sum_bound",
    "forward_sum_bound",
    "backward_sum_bound",
    "avg_bound",
]


def static_sum_bound(ball_size_upper: int, own_score: float) -> float:
    """``(N(v) - 1) + f(v)`` with ``N(v)`` replaced by any upper bound.

    Sound because every non-self ball member scores at most 1.  With
    ``include_self=False`` callers pass the open-ball size as
    ``ball_size_upper`` plus ``own_score=0`` (the center does not
    contribute), which degenerates to ``N_open(v)`` — also sound.
    """
    return max(ball_size_upper - 1, 0) + own_score


def forward_sum_bound(
    neighbor_exact_sum: float, delta: int, static_bound: float
) -> float:
    """Eq. 1: ``min(F_sum(u) + delta(v-u), static_sum_bound(v))``.

    ``neighbor_exact_sum`` is the exactly-evaluated ``F_sum(u)`` of a
    processed neighbor ``u``; ``delta`` is the differential-index entry
    ``delta(v - u) = |S(v) \\ S(u)|``.
    """
    if delta < 0:
        raise InvalidParameterError(f"delta must be >= 0, got {delta}")
    return min(neighbor_exact_sum + delta, static_bound)


def backward_sum_bound(
    partial_sum: float,
    covered: int,
    ball_size_upper: int,
    own_score: float,
    rest_bound: float,
    *,
    self_distributed: bool,
) -> float:
    """Eq. 3 with exact self-score accounting.

    Parameters
    ----------
    partial_sum:
        ``PS(v)``: sum of distributed scores whose h-hop ball contained
        ``v`` (each such score was deposited on ``v`` once).
    covered:
        ``l(v)``: how many distributed nodes deposited on ``v``.
    ball_size_upper:
        ``N(v)`` or any upper bound on it.
    own_score:
        ``f(v)``, always known exactly.
    rest_bound:
        An upper bound on every undistributed node's score (``>= 0``).
    self_distributed:
        Whether ``v`` itself was among the distributed nodes; if so its
        score is already inside ``partial_sum`` and must not be re-added.

    The unknown ball members number ``N(v) - covered`` in total; when ``v``
    was *not* distributed, one of those unknowns is ``v`` itself whose score
    we know exactly, so only ``N(v) - covered - 1`` are bounded by
    ``rest_bound`` and ``f(v)`` is added verbatim.
    """
    if rest_bound < 0:
        raise InvalidParameterError(f"rest_bound must be >= 0, got {rest_bound}")
    if covered < 0:
        raise InvalidParameterError(f"covered must be >= 0, got {covered}")
    if self_distributed:
        unknown = ball_size_upper - covered
        extra = 0.0
    else:
        unknown = ball_size_upper - covered - 1
        extra = own_score
    return partial_sum + rest_bound * max(unknown, 0) + extra


def avg_bound(sum_upper: float, ball_size_lower: int) -> float:
    """Eq. 2 generalized: ``sum_upper / max(N_lower, 1)``.

    Uses a *lower* bound of the ball size so the quotient stays an upper
    bound on the true average.  A ball-size lower bound below 1 is clamped
    (every closed ball has at least its center).
    """
    return sum_upper / max(ball_size_lower, 1)
