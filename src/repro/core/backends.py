"""Execution-backend selection: pure Python, vectorized NumPy, or sharded.

The library ships interchangeable execution backends for the LONA
algorithms:

* ``"python"`` — the dependency-free adjacency-list loops.  Always
  available; the reference implementation every other backend is tested
  against.
* ``"numpy"``  — vectorized execution over :class:`~repro.graph.csr.CSRGraph`
  flat arrays (see :mod:`repro.core.vectorized`).  Requires :mod:`numpy`.
* ``"parallel"`` — the numpy kernels fanned out across worker *processes*
  over shared-memory CSR shards (see :mod:`repro.parallel`).  Requires
  numpy; the engine itself declines graphs too small to amortize the
  process/IPC fixed cost and runs them in-process instead.
* ``"cluster"`` — the same sharded kernels run by socket-connected
  ``cluster-worker`` processes, locally spawned or on other machines (see
  :mod:`repro.cluster`).  Requires numpy; declines like parallel does,
  with a higher fixed cost (socket rounds, store shipping).

``"auto"`` (the default everywhere) resolves to ``"numpy"`` when numpy is
importable and falls back to ``"python"`` otherwise, so the library keeps
working — with identical answers — on a bare interpreter.  ``"parallel"``
and ``"cluster"`` are never chosen implicitly: multi-process/multi-machine
execution is an explicit opt-in (builder ``.backend("parallel")``, CLI
``--backend cluster``, ``Network.service(processes=True)``, or
``Network.cluster(...)``).  All backends return *entry-for-entry
identical* top-k results; only the work counters (pruning/traversal
accounting) may differ, because the vectorized backends process candidates
in blocks and the sharded backends additionally split them across shards.

This module is the seam later execution strategies (GPU, remote, ...) plug
into: they add a name here and a dispatch arm in the algorithm front doors.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import BackendUnavailableError, InvalidParameterError

__all__ = [
    "BACKENDS",
    "numpy_available",
    "numpy_or_none",
    "resolve_backend",
]

#: Recognized backend names (``"auto"`` is resolved, never executed).
BACKENDS = ("auto", "python", "numpy", "parallel", "cluster")

_NUMPY_AVAILABLE: Optional[bool] = None


def numpy_or_none():
    """The :mod:`numpy` module, or ``None`` when it is not importable."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
        return None
    return numpy


def numpy_available() -> bool:
    """Whether the vectorized backend can run in this interpreter."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        _NUMPY_AVAILABLE = numpy_or_none() is not None
    return _NUMPY_AVAILABLE


def resolve_backend(backend: str) -> str:
    """Resolve a backend request to a concrete executable backend.

    ``"auto"`` prefers ``"numpy"`` and silently falls back to ``"python"``;
    asking for ``"numpy"`` or ``"parallel"`` explicitly when numpy is absent
    raises :class:`~repro.errors.BackendUnavailableError` instead of
    silently changing performance class.
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        return "numpy" if numpy_available() else "python"
    if backend in ("numpy", "parallel", "cluster") and not numpy_available():
        raise BackendUnavailableError(
            f"backend {backend!r} requested but numpy is not importable; "
            "install numpy or use backend='auto'/'python'"
        )
    return backend
