"""Execution-backend selection: pure Python, vectorized NumPy, or sharded.

The library ships interchangeable execution backends for the LONA
algorithms:

* ``"python"`` — the dependency-free adjacency-list loops.  Always
  available; the reference implementation every other backend is tested
  against.
* ``"numpy"``  — vectorized execution over :class:`~repro.graph.csr.CSRGraph`
  flat arrays (see :mod:`repro.core.vectorized`).  Requires :mod:`numpy`.
* ``"native"`` — the compiled kernel tier: Numba-jitted flat-CSR loops
  behind the same route table (see :mod:`repro.native`).  Requires numpy
  plus an importable :mod:`numba`; without numba the tier declines and
  ``"auto"`` falls back to ``"numpy"`` (the ``REPRO_NATIVE_INTERPRETED``
  environment flag forces the tier on with interpreted kernels, which the
  parity suite uses on numba-free machines).
* ``"parallel"`` — the numpy kernels fanned out across worker *processes*
  over shared-memory CSR shards (see :mod:`repro.parallel`).  Requires
  numpy; the engine itself declines graphs too small to amortize the
  process/IPC fixed cost and runs them in-process instead.
* ``"cluster"`` — the same sharded kernels run by socket-connected
  ``cluster-worker`` processes, locally spawned or on other machines (see
  :mod:`repro.cluster`).  Requires numpy; declines like parallel does,
  with a higher fixed cost (socket rounds, store shipping).

``"auto"`` (the default everywhere) walks the single-machine ladder
``native -> numpy -> python``: it resolves to ``"native"`` when the
compiled tier is available, else ``"numpy"`` when numpy is importable,
else ``"python"``, so the library keeps working — with identical answers —
on a bare interpreter.  ``"parallel"``
and ``"cluster"`` are never chosen implicitly: multi-process/multi-machine
execution is an explicit opt-in (builder ``.backend("parallel")``, CLI
``--backend cluster``, ``Network.service(processes=True)``, or
``Network.cluster(...)``).  All backends return *entry-for-entry
identical* top-k results; only the work counters (pruning/traversal
accounting) may differ, because the vectorized backends process candidates
in blocks and the sharded backends additionally split them across shards.

This module is the seam later execution strategies (GPU, remote, ...) plug
into: they add a name here and a dispatch arm in the algorithm front doors.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import BackendUnavailableError, InvalidParameterError

__all__ = [
    "BACKENDS",
    "native_available",
    "numba_available",
    "numpy_available",
    "numpy_or_none",
    "resolve_backend",
]

#: Recognized backend names (``"auto"`` is resolved, never executed).
BACKENDS = ("auto", "python", "numpy", "native", "parallel", "cluster")

_NUMPY_AVAILABLE: Optional[bool] = None
_NUMBA_AVAILABLE: Optional[bool] = None


def numpy_or_none():
    """The :mod:`numpy` module, or ``None`` when it is not importable."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
        return None
    return numpy


def numpy_available() -> bool:
    """Whether the vectorized backend can run in this interpreter."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        _NUMPY_AVAILABLE = numpy_or_none() is not None
    return _NUMPY_AVAILABLE


def numba_available() -> bool:
    """Whether :mod:`numba` is importable (spec probe; nothing is imported)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        import importlib.util

        _NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None
    return _NUMBA_AVAILABLE


def native_available() -> bool:
    """Whether the compiled kernel tier can run in this interpreter.

    Needs numpy (the adapters orchestrate with it) and numba (the compiled
    kernels).  ``REPRO_NATIVE_INTERPRETED`` — checked dynamically, so tests
    can flip it per-case — substitutes the interpreted kernel fallback for
    numba: same code paths, same answers, no compilation.
    """
    if not numpy_available():
        return False
    if os.environ.get("REPRO_NATIVE_INTERPRETED"):
        return True
    return numba_available()


def resolve_backend(backend: str) -> str:
    """Resolve a backend request to a concrete executable backend.

    ``"auto"`` walks the ladder native -> numpy -> python, silently
    declining tiers whose imports are absent; asking for ``"numpy"``,
    ``"native"``, ``"parallel"`` or ``"cluster"`` explicitly when their
    imports are missing raises
    :class:`~repro.errors.BackendUnavailableError` instead of silently
    changing performance class.
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        if native_available():
            return "native"
        return "numpy" if numpy_available() else "python"
    if backend in ("numpy", "parallel", "cluster") and not numpy_available():
        raise BackendUnavailableError(
            f"backend {backend!r} requested but numpy is not importable; "
            "install numpy or use backend='auto'/'python'"
        )
    if backend == "native" and not native_available():
        raise BackendUnavailableError(
            "backend 'native' requested but the compiled tier is "
            "unavailable (numba and numpy must be importable); install "
            "the 'native' extra or use backend='auto'"
        )
    return backend
