"""Materialized aggregate view: the full-precompute end of the spectrum.

The design space the paper moves in is "how much work is done offline":

* **Base** — nothing precomputed; every query pays the full scan.
* **LONA-Forward** — a *score-agnostic* structural index (differential
  index); queries prune with it for any relevance function.
* **LONA-Backward** — no precomputation; work scales with score sparsity.
* **Materialized view** (this module) — precompute ``F_sum(u)`` and
  ``N(u)`` for one fixed relevance function; queries become top-k selection
  over stored values, O(n log k), but the view is invalidated by any score
  change.

The view is the classical RDBMS answer (the paper cites materialized top-k
view maintenance [18]); benchmark ``abl-views`` positions LONA between the
no-precompute and full-precompute extremes.
"""

from __future__ import annotations

import time
from typing import Sequence, Union

from repro.aggregates.functions import AggregateKind, coerce_aggregate
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult
from repro.core.topk import TopKAccumulator
from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.traversal import TraversalCounter, hop_ball

__all__ = ["MaterializedView"]


class MaterializedView:
    """Precomputed ``(F_sum(u), N(u))`` for every node.

    Storing the sum/size pair rather than a single aggregate value lets one
    view serve SUM, AVG, and COUNT queries alike.  The view records a
    fingerprint of the scores it was built from; querying it after the
    scores changed raises, because a stale view silently returns wrong
    answers (the failure mode that makes view maintenance hard, per the
    paper's related-work discussion).
    """

    __slots__ = ("hops", "include_self", "_sums", "_counts", "_sizes", "_fingerprint", "build_sec")

    def __init__(
        self,
        graph: Graph,
        scores: Sequence[float],
        *,
        hops: int = 2,
        include_self: bool = True,
    ) -> None:
        start = time.perf_counter()
        counter = TraversalCounter()
        self.hops = hops
        self.include_self = include_self
        self._sums = []
        self._counts = []
        self._sizes = []
        for u in graph.nodes():
            ball = hop_ball(graph, u, hops, include_self=include_self, counter=counter)
            total = 0.0
            nonzero = 0
            for w in ball:
                s = scores[w]
                total += s
                if s > 0.0:
                    nonzero += 1
            self._sums.append(total)
            self._counts.append(nonzero)
            self._sizes.append(len(ball))
        self._fingerprint = self._fingerprint_of(scores)
        self.build_sec = time.perf_counter() - start

    @staticmethod
    def _fingerprint_of(scores: Sequence[float]) -> int:
        return hash(tuple(scores))

    def __len__(self) -> int:
        return len(self._sums)

    def check_fresh(self, scores: Sequence[float]) -> None:
        """Raise if ``scores`` differ from the build-time snapshot."""
        if self._fingerprint_of(scores) != self._fingerprint:
            raise InvalidParameterError(
                "materialized view is stale: the relevance scores changed "
                "since the view was built; rebuild the view"
            )

    def value(self, node: int, kind: AggregateKind) -> float:
        """The stored aggregate value of ``node``."""
        if kind is AggregateKind.SUM:
            return self._sums[node]
        if kind is AggregateKind.COUNT:
            return float(self._counts[node])
        if kind is AggregateKind.AVG:
            size = self._sizes[node]
            return self._sums[node] / size if size else 0.0
        raise InvalidParameterError(
            f"materialized view serves SUM/AVG/COUNT, not {kind.value}"
        )

    def topk(
        self,
        k: int,
        aggregate: Union[str, AggregateKind] = "sum",
        *,
        scores: Sequence[float] = None,
    ) -> TopKResult:
        """Answer a query from the view (O(n log k) selection).

        Pass ``scores`` to enable the staleness check; omit it only in
        benchmarks that manage freshness themselves.
        """
        kind = coerce_aggregate(aggregate)
        spec = QuerySpec(
            k=k, aggregate=kind, hops=self.hops, include_self=self.include_self
        )
        if scores is not None:
            self.check_fresh(scores)
        start = time.perf_counter()
        acc = TopKAccumulator(spec.k)
        for node in range(len(self._sums)):
            acc.offer(node, self.value(node, kind))
        stats = QueryStats(
            algorithm="materialized",
            aggregate=kind.value,
            hops=self.hops,
            k=k,
            elapsed_sec=time.perf_counter() - start,
            index_build_sec=self.build_sec,
        )
        return TopKResult(entries=acc.entries(), stats=stats)
