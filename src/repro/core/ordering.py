"""Processing-order strategies for LONA-Forward's queue.

Algorithm 1 initializes "a queue Q" without fixing its order, yet the order
decides how fast ``topklbound`` rises and therefore how much pruning bites.
We make the choice explicit and benchmarkable (ablation ``abl-order``):

* ``"arbitrary"`` — node-id order, the literal reading of Algorithm 1.
* ``"degree"``    — descending degree: high-degree nodes tend to have large
  balls and large SUM aggregates, so good candidates surface early.
* ``"ubound"``    — descending static upper bound ``N(v) - 1 + f(v)``; the
  best-informed order available before any evaluation, but it needs the
  ``N`` index (free when the differential index is present).
* ``"random"``    — seeded shuffle, the pessimistic control.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.aggregates.functions import AggregateKind
from repro.core.bounds import avg_bound, static_sum_bound
from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex

__all__ = ["ORDERINGS", "make_order"]

ORDERINGS = ("arbitrary", "degree", "ubound", "random")


def make_order(
    strategy: str,
    graph: Graph,
    scores: Sequence[float],
    *,
    kind: AggregateKind = AggregateKind.SUM,
    sizes: Optional[NeighborhoodSizeIndex] = None,
    seed: Optional[int] = None,
) -> List[int]:
    """Produce the node processing order for LONA-Forward."""
    nodes = list(graph.nodes())
    if strategy == "arbitrary":
        return nodes
    if strategy == "degree":
        nodes.sort(key=lambda u: (-graph.degree(u), u))
        return nodes
    if strategy == "random":
        random.Random(seed).shuffle(nodes)
        return nodes
    if strategy == "ubound":
        if sizes is None:
            raise InvalidParameterError(
                "'ubound' ordering needs a NeighborhoodSizeIndex "
                "(it comes free with the differential index)"
            )

        if kind is AggregateKind.AVG:
            # For AVG the static bound divides by the ball size, so the
            # order differs from SUM's: small dense balls can rank first.
            def key(u: int) -> tuple:
                ub = avg_bound(
                    static_sum_bound(sizes.upper(u), scores[u]), sizes.lower(u)
                )
                return (-ub, u)

        else:

            def key(u: int) -> tuple:
                return (-static_sum_bound(sizes.upper(u), scores[u]), u)

        nodes.sort(key=key)
        return nodes
    raise InvalidParameterError(
        f"unknown ordering {strategy!r}; expected one of {ORDERINGS}"
    )
