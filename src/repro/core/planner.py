"""Cost-based algorithm selection with explainable plans.

The paper leaves "which algorithm should answer this query?" to the reader:
Base needs nothing, LONA-Forward amortizes an offline index, LONA-Backward
feeds on score sparsity.  This module makes the choice a first-class,
inspectable object — the database way: estimate costs from cheap statistics,
pick the cheapest plan, and be able to say why (``engine.explain(...)``).

Cost model
----------
All costs are in **expected ball expansions** (one truncated BFS = 1 unit),
the deterministic currency the whole library's stats use.  The model is
built from O(n log n) statistics only — no traversal:

* ``n``                — node count.
* ``N_ub(v)``          — degree-based ball-size upper estimates
  (:func:`repro.graph.neighborhood.upper_estimate`), sorted once.
* ``mu``               — mean score over all nodes.
* ``T``                — threshold proxy: the k-th largest ball estimate
  scaled by ``mu`` (what the k-th best SUM plausibly is).
* Base:     ``n``.
* Forward:  ``n - |{v : N_ub(v) <= T}|`` — the statically prunable nodes
  (Eq. 1's ``N(v)-1+f(v)`` arm); differential pruning is a bonus the model
  deliberately ignores (it under-promises).
* Backward: ``D + V`` where ``D`` is the auto-gamma distribution set and
  ``V = |{v : rest * N_ub(v) + f(v) > T}|`` the candidates whose Eq. 3
  bound (with empty partial sums — again under-promising) survives the
  threshold.  ``rest = 0`` (all non-zeros distributed) collapses ``V`` to
  ``~k``: the exact-shortcut fast path.

The model's absolute numbers are rough by construction; its *ordering* is
what the planner uses and what the tests pin (sparse-binary -> backward,
dense-continuous with index -> forward, tiny graphs -> base).

The ordering is **backend-sensitive**: a ball expansion does not cost the
same on every backend, and the vectorized backend does not speed every
algorithm up equally, so each estimate carries a per-expansion
``cost_multiplier`` (:data:`BACKEND_COST_FACTORS`) that the ranking
incorporates.  Under numpy a full vectorized Base scan can undercut a
prune-light LONA-Forward run that wins under python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.aggregates.functions import AggregateKind
from repro.core.backends import resolve_backend
from repro.core.backward import resolve_gamma
from repro.core.query import QuerySpec
from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.neighborhood import upper_estimate

__all__ = [
    "BACKEND_COST_FACTORS",
    "BACKEND_FIXED_COSTS",
    "CostEstimate",
    "ExecutionPlan",
    "QueryPlanner",
]

#: Relative per-ball-expansion execution cost of each algorithm's *online*
#: phase, by concrete backend.  The vectorized backend does not speed every
#: route up equally — Base is the most array-shaped (multi-source BFS blocks
#: + one segmented reduction each), LONA-Forward interleaves bulk expansion
#: with per-block pruning bookkeeping, and LONA-Backward's verification
#: still walks candidates one ball at a time — so plan *choice* can
#: legitimately flip with the backend (a full vectorized scan can undercut a
#: prune-light forward run).  numpy factors are recalibrated against a fresh
#: ``benchmarks/bench_backend_coverage.py`` run (PR 3/4 shifted the kernels:
#: Base gained the adaptive-block fused reductions, backward verification
#: gained the session ball caches), asserted against the canonical fig1/fig2
#: workloads in ``tests/test_planner_calibration.py``.  The parallel factors
#: assume a nominal 4-worker pool over the numpy kernels: scans split
#: near-perfectly (Base/Forward), backward's merge + TA rounds keep a serial
#: component.  The offline index build is python-side construction either
#: way and is never discounted.
BACKEND_COST_FACTORS = {
    "python": {"base": 1.0, "forward": 1.0, "backward": 1.0},
    # 1 / measured route speedup, benchmarks/BENCH_backend_coverage.json
    # (fig1, scale 1.0): base 4.19x, forward 3.67x, backward 6.09x.
    "numpy": {"base": 0.24, "forward": 0.27, "backward": 0.16},
    # Compiled CSR kernels (numba) on top of the numpy skeletons: base is
    # fully in-kernel (biggest win), forward keeps numpy bookkeeping around
    # the jitted ball/prune loops, backward only compiles its verification
    # phase (distribution stays numpy for bit-parity), so it gains the
    # least relative to numpy.  Targets from benchmarks/BENCH_native.json;
    # the ordering (native < numpy per route) is what the calibration
    # tests pin.
    "native": {"base": 0.11, "forward": 0.13, "backward": 0.08},
    # numpy factor / nominal 4-worker scaling (scans split ~perfectly,
    # backward keeps a serial merge + TA-round component).
    "parallel": {"base": 0.06, "forward": 0.07, "backward": 0.08},
    # Same sharded kernels as parallel, but every round crosses a socket:
    # frame serialization and candidate shipping add a per-expansion tax on
    # top of the parallel factors (heaviest on backward, whose TA rounds
    # are the chattiest).
    "cluster": {"base": 0.07, "forward": 0.08, "backward": 0.11},
}

#: Fixed per-query overhead of a backend, in the same ball-expansion
#: currency, charged once on top of the per-expansion cost.  In-process
#: backends have none; the parallel backend pays process dispatch + queue
#: IPC + merge every query, which is why a small graph should route to
#: in-process numpy even when the per-expansion factor favors parallel.
#: The runtime twin of this term is the engine's ``min_nodes`` decline rule
#: (:data:`repro.parallel.engine.DEFAULT_MIN_NODES`).
BACKEND_FIXED_COSTS = {
    "python": 0.0,
    "numpy": 0.0,
    # Warm-up happens once per process (repro.native.compile_cache), not
    # per query, so the native tier carries no per-query fixed cost.
    "native": 0.0,
    # Recalibrated for the leaner round (shared-memory reply buffers
    # replaced pickled pipe replies; benchmarks/bench_native.py): a warm
    # backward query now measures ~50-105 expansion-equivalents of round
    # overhead vs ~1 ms (thousands) before.  Kept conservative at 500 —
    # multi-round plans pay it repeatedly and cold exports cost more.
    "parallel": 500.0,
    # Socket rounds cost strictly more than queue IPC: connection fan-out,
    # frame encode/decode, and store shipping on cold peers.  The runtime
    # twin is the cluster engine's min_nodes decline rule.
    "cluster": 8000.0,
}


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of one algorithm for one query.

    ``online_ball_expansions`` stays in the backend-independent currency
    (one truncated BFS = 1 unit); ``cost_multiplier`` is the backend's
    relative per-expansion cost (:data:`BACKEND_COST_FACTORS`), applied by
    the ``total_*`` methods the planner ranks with.
    """

    algorithm: str
    online_ball_expansions: float
    needs_offline_index: bool
    offline_ball_expansions: float
    note: str
    cost_multiplier: float = 1.0
    #: Per-query fixed overhead of the backend (process dispatch, IPC,
    #: merge — :data:`BACKEND_FIXED_COSTS`), charged once regardless of how
    #: much the algorithm prunes.  Zero for in-process backends; this term
    #: is why ``"parallel"`` plans on small graphs cost more than their
    #: numpy twins even with a lower per-expansion factor.
    fixed_cost: float = 0.0

    def total_first_query(self) -> float:
        """Cost of the first query, offline build included."""
        return (
            self.online_ball_expansions * self.cost_multiplier
            + self.fixed_cost
            + self.offline_ball_expansions
        )

    def total_amortized(self) -> float:
        """Cost per query once the offline index is sunk."""
        return self.online_ball_expansions * self.cost_multiplier + self.fixed_cost


@dataclass
class ExecutionPlan:
    """The ranked estimates and the planner's choice."""

    spec: QuerySpec
    chosen: str
    estimates: List[CostEstimate] = field(default_factory=list)
    amortize_index: bool = True
    #: Concrete execution backend the chosen algorithm will run on.  The
    #: cost model is phrased in ball expansions, but each estimate carries
    #: the backend's per-expansion cost factor
    #: (:data:`BACKEND_COST_FACTORS`), so the ranking — and therefore the
    #: chosen algorithm — is backend-sensitive.
    backend: str = "python"
    #: Communication forecast, set only for ``backend="cluster"`` plans:
    #: shard count and the naive candidate volume (``shards * k`` entries,
    #: 16 bytes each) that θ-shipping and adaptive quotas prune below.
    comm: "Optional[dict]" = None

    def estimate_for(self, algorithm: str) -> CostEstimate:
        """The estimate of one algorithm."""
        for est in self.estimates:
            if est.algorithm == algorithm:
                return est
        raise InvalidParameterError(f"no estimate for {algorithm!r}")

    def as_dict(self) -> dict:
        """Machine-readable plan view (the CLI's ``--json`` output)."""
        return {
            "query": self.spec.describe(),
            "k": self.spec.k,
            "aggregate": self.spec.aggregate.value,
            "hops": self.spec.hops,
            "chosen": self.chosen,
            "amortize_index": self.amortize_index,
            "backend": self.backend,
            **({"comm": dict(self.comm)} if self.comm else {}),
            "estimates": [
                {
                    "algorithm": est.algorithm,
                    "online_ball_expansions": est.online_ball_expansions,
                    "needs_offline_index": est.needs_offline_index,
                    "offline_ball_expansions": est.offline_ball_expansions,
                    "cost_multiplier": est.cost_multiplier,
                    "fixed_cost": est.fixed_cost,
                    "effective_online_cost": est.total_amortized(),
                    "note": est.note,
                }
                for est in self.estimates
            ],
        }

    def explain(self) -> str:
        """Human-readable plan explanation."""
        lines = [
            f"query: {self.spec.describe()}",
            f"chosen algorithm: {self.chosen} "
            f"({'index cost amortized' if self.amortize_index else 'index cost charged to this query'})",
            f"execution backend: {self.backend}"
            + (
                " (vectorized CSR)"
                if self.backend == "numpy"
                else " (compiled CSR kernels)"
                if self.backend == "native"
                else " (sharded multi-process)"
                if self.backend == "parallel"
                else " (socket cluster)"
                if self.backend == "cluster"
                else ""
            ),
        ]
        if self.comm:
            shards = self.comm.get("shards")
            naive = self.comm.get("predicted_candidates")
            naive_bytes = self.comm.get("predicted_candidate_bytes")
            lines.append(
                f"communication: {shards:g} shards, naive candidate volume "
                f"{naive:g} entries ({naive_bytes:g} bytes); θ-shipping and "
                "adaptive quotas prune below this"
            )
        lines += [
            "",
            "estimated cost (ball expansions):",
        ]
        key = (
            CostEstimate.total_amortized
            if self.amortize_index
            else CostEstimate.total_first_query
        )
        for est in sorted(self.estimates, key=key):
            marker = "->" if est.algorithm == self.chosen else "  "
            offline = (
                f" + offline {est.offline_ball_expansions:.0f}"
                if est.needs_offline_index
                else ""
            )
            discount = (
                f" (x{est.cost_multiplier:g} {self.backend}"
                + (f" + fixed {est.fixed_cost:.0f}" if est.fixed_cost else "")
                + f" -> {est.total_amortized():.0f})"
                if est.cost_multiplier != 1.0 or est.fixed_cost
                else ""
            )
            lines.append(
                f" {marker} {est.algorithm:<9} {est.online_ball_expansions:10.0f}"
                f"{offline}{discount}   {est.note}"
            )
        return "\n".join(lines)


class QueryPlanner:
    """Estimate per-algorithm costs from cheap statistics and choose."""

    def __init__(
        self,
        graph: Graph,
        scores: Sequence[float],
        *,
        hops: int = 2,
        include_self: bool = True,
        index_available: bool = False,
        distribution_fraction: float = 0.1,
        backend: str = "auto",
    ) -> None:
        self.graph = graph
        self.scores = list(scores)
        self.hops = hops
        self.include_self = include_self
        self.index_available = index_available
        self.distribution_fraction = distribution_fraction
        self.backend = resolve_backend(backend)
        # One O(n log n) statistics pass, shared by all plan() calls.
        self._size_ub = sorted(
            upper_estimate(graph, hops, include_self=include_self), reverse=True
        )
        self._size_ub_by_node = upper_estimate(
            graph, hops, include_self=include_self
        )
        n = graph.num_nodes
        self._mu = sum(self.scores) / n if n else 0.0
        self._nonzero_desc = sorted(
            (s for s in self.scores if s > 0.0), reverse=True
        )

    # ------------------------------------------------------------------
    def _cost_factor(self, algorithm: str) -> float:
        """The backend's per-expansion cost factor for one algorithm."""
        return BACKEND_COST_FACTORS[self.backend].get(algorithm, 1.0)

    def _fixed_cost(self) -> float:
        """The backend's per-query fixed overhead (expansion units)."""
        return BACKEND_FIXED_COSTS.get(self.backend, 0.0)

    def _threshold_proxy(self, k: int) -> float:
        """Plausible k-th best SUM: mu times the k-th largest ball estimate."""
        if not self._size_ub:
            return 0.0
        kth_ball = self._size_ub[min(k, len(self._size_ub)) - 1]
        return self._mu * kth_ball

    def plan(
        self, spec: QuerySpec, *, amortize_index: bool = True
    ) -> ExecutionPlan:
        """Estimate all algorithms for ``spec`` and choose the cheapest.

        ``amortize_index=True`` (the paper's framing: the differential index
        is precomputed) compares online costs only; ``False`` charges the
        offline build to this query — the right comparison for a one-off
        query on a cold graph.
        """
        if spec.hops != self.hops or spec.include_self != self.include_self:
            raise InvalidParameterError(
                "planner built for "
                f"(hops={self.hops}, include_self={self.include_self}), "
                f"query uses (hops={spec.hops}, include_self={spec.include_self})"
            )
        n = self.graph.num_nodes
        estimates: List[CostEstimate] = [
            CostEstimate(
                algorithm="base",
                online_ball_expansions=float(n),
                needs_offline_index=False,
                offline_ball_expansions=0.0,
                note="full scan, no precomputation",
                cost_multiplier=self._cost_factor("base"),
                fixed_cost=self._fixed_cost(),
            )
        ]

        threshold = self._threshold_proxy(spec.k)

        if spec.aggregate.lona_supported:
            # --- forward: static pruning estimate -----------------------
            prunable = sum(1 for s in self._size_ub if s <= threshold)
            forward_online = float(max(n - prunable, min(spec.k, n)))
            estimates.append(
                CostEstimate(
                    algorithm="forward",
                    online_ball_expansions=forward_online,
                    needs_offline_index=True,
                    # the index build expands every ball once
                    offline_ball_expansions=0.0 if self.index_available else float(n),
                    note=f"static bound prunes ~{prunable} of {n} nodes "
                    f"(threshold proxy {threshold:.1f})",
                    cost_multiplier=self._cost_factor("forward"),
                    fixed_cost=self._fixed_cost(),
                )
            )

            # --- backward: distribution + verification ------------------
            gamma = resolve_gamma(
                "auto",
                self._nonzero_desc,
                distribution_fraction=self.distribution_fraction,
            )
            distributed = sum(1 for s in self._nonzero_desc if s >= gamma)
            rest = next(
                (s for s in self._nonzero_desc if s < gamma), 0.0
            )
            if rest == 0.0 and spec.aggregate is not AggregateKind.AVG:
                verified = float(min(spec.k, n))
                note = (
                    f"distribute {distributed} non-zero nodes; rest bound 0 "
                    "-> exact shortcut, no verification"
                )
            else:
                verified = float(
                    sum(
                        1
                        for v in range(n)
                        if rest * self._size_ub_by_node[v] + self.scores[v]
                        > threshold
                    )
                )
                note = (
                    f"distribute {distributed} nodes (gamma={gamma:.3f}), "
                    f"verify ~{verified:.0f} candidates (rest bound {rest:.3f})"
                )
            estimates.append(
                CostEstimate(
                    algorithm="backward",
                    online_ball_expansions=float(distributed) + verified,
                    needs_offline_index=False,
                    offline_ball_expansions=0.0,
                    note=note,
                    cost_multiplier=self._cost_factor("backward"),
                    fixed_cost=self._fixed_cost(),
                )
            )

        cost_key = (
            CostEstimate.total_amortized
            if amortize_index
            else CostEstimate.total_first_query
        )
        chosen = min(estimates, key=cost_key).algorithm
        return ExecutionPlan(
            spec=spec,
            chosen=chosen,
            estimates=estimates,
            amortize_index=amortize_index,
            backend=self.backend,
        )
