"""The paper's contribution: LONA top-k neighborhood aggregation.

* :class:`~repro.core.context.GraphContext` — the shared per-graph caches
  (differential index, size index, CSR views) every execution path draws
  from.
* :class:`~repro.core.request.QueryRequest` — the lowered query the
  session builder produces and the executor consumes.
* :mod:`repro.core.executor` — the single dispatch point for base /
  forward / backward / relational / filtered / streamed execution.
* :class:`TopKEngine` — legacy per-score facade (deprecated shim over the
  executor; prefer :class:`repro.session.Network`).
* :func:`base_topk` — naive forward baseline ("Base").
* :func:`forward_topk` — LONA-Forward (differential-index pruning).
* :func:`backward_topk` — LONA-Backward (partial distribution).
* :class:`QuerySpec` / :class:`TopKResult` / :class:`QueryStats` — the query
  and result types shared by all execution paths.
* :mod:`repro.core.backends` — execution-backend selection (pure Python vs
  vectorized numpy CSR); every algorithm runs identically on either.
"""

from repro.core.backends import BACKENDS, numpy_available, resolve_backend
from repro.core.backward import backward_topk, resolve_gamma
from repro.core.base import base_topk
from repro.core.batch import BatchQuery, BatchResult, BatchTopKEngine, batch_base_topk
from repro.core.bounds import (
    avg_bound,
    backward_sum_bound,
    forward_sum_bound,
    static_sum_bound,
)
from repro.core.context import GraphContext
from repro.core.engine import TopKEngine, topk_avg, topk_sum
from repro.core.evaluate import evaluate_node, exact_sum_and_size
from repro.core.forward import forward_topk
from repro.core.materialized import MaterializedView
from repro.core.ordering import ORDERINGS, make_order
from repro.core.planner import CostEstimate, ExecutionPlan, QueryPlanner
from repro.core.provenance import Contribution, NodeExplanation, explain_node
from repro.core.query import QuerySpec
from repro.core.request import QueryRequest
from repro.core.results import (
    QueryStats,
    StreamUpdate,
    TopKResult,
    combine_query_stats,
)
from repro.core.topk import TopKAccumulator
from repro.core.weighted import weighted_backward_topk, weighted_base_topk

__all__ = [
    "TopKEngine",
    "topk_sum",
    "topk_avg",
    "BACKENDS",
    "numpy_available",
    "resolve_backend",
    "GraphContext",
    "QuerySpec",
    "QueryRequest",
    "TopKResult",
    "QueryStats",
    "StreamUpdate",
    "combine_query_stats",
    "TopKAccumulator",
    "base_topk",
    "forward_topk",
    "backward_topk",
    "resolve_gamma",
    "MaterializedView",
    "QueryPlanner",
    "ExecutionPlan",
    "CostEstimate",
    "weighted_base_topk",
    "weighted_backward_topk",
    "BatchQuery",
    "BatchResult",
    "BatchTopKEngine",
    "batch_base_topk",
    "explain_node",
    "NodeExplanation",
    "Contribution",
    "evaluate_node",
    "exact_sum_and_size",
    "static_sum_bound",
    "forward_sum_bound",
    "backward_sum_bound",
    "avg_bound",
    "ORDERINGS",
    "make_order",
]
