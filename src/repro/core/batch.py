"""Multi-query processing: shared scans for heavy query workloads.

The paper's cost argument is about workloads, not single queries: "This
computational cost is not affordable in applications involving large-scale
networks and **heavy query workloads**" (Sec. II).  When many queries hit
the same graph — different relevance functions (one per product, per gene
set, per attack signature), different k, different aggregates — per-query
BFS is wasteful: the traversal is identical, only the scores differ.

:func:`batch_base_topk` amortizes it: one truncated BFS per node evaluates
*all* score vectors against the ball before moving on (the database
"shared scan" / multi-query optimization).  For ``q`` queries it does the
traversal work of one Base run plus ``q`` cheap accumulations, instead of
``q`` full runs.

:class:`BatchTopKEngine` wraps the policy choice: queries over *sparse*
vectors are peeled off to LONA-Backward (each runs faster alone than any
shared scan), the dense remainder shares one scan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.aggregates.functions import AggregateKind, coerce_aggregate, fold_scores
from repro.core.backends import resolve_backend
from repro.core.backward import backward_topk
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult, combine_query_stats
from repro.core.topk import TopKAccumulator
from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex
from repro.graph.traversal import TraversalCounter, hop_ball
from repro.relevance.base import ScoreVector

__all__ = [
    "BatchQuery",
    "BatchResult",
    "batch_base_topk",
    "BatchTopKEngine",
    "coalescible_request",
]

#: Algorithm-steering request fields whose *explicit* pin disqualifies a
#: request from scan coalescing (they must flow through the single-query
#: executor so resolve-then-reject validation still fires).
_COALESCE_KNOBS = frozenset(
    {"gamma", "distribution_fraction", "exact_sizes", "ordering", "seed"}
)


def coalescible_request(request, *, hops: int, include_self: bool, backend: str) -> bool:
    """Whether the serving scheduler may fold ``request`` into a shared scan.

    The shared scan answers plain density-routed queries (exactly the shapes
    :meth:`repro.session.Network.batch` accepts): a sum-convertible
    aggregate, no candidate filter, no pinned algorithm/backend/knob — any
    score name and any ``k``.  Everything else runs individually through the
    executor, which also re-raises the knob-validation errors a coalesced
    run would skip.
    """
    from repro.core.request import DEFAULT_SCORE, QueryRequest

    if not request.aggregate.sum_convertible:
        return False
    if request.pinned & _COALESCE_KNOBS:
        return False
    plain = request.replace(score=DEFAULT_SCORE, k=1, aggregate=AggregateKind.SUM)
    return plain == QueryRequest(
        k=1, hops=hops, include_self=include_self, backend=backend
    )


@dataclass(frozen=True)
class BatchQuery:
    """One query of a batch: a score vector plus (k, aggregate)."""

    scores: ScoreVector
    k: int
    aggregate: AggregateKind = AggregateKind.SUM

    def __post_init__(self) -> None:
        # Accept "sum"-style strings, like QuerySpec does.
        object.__setattr__(self, "aggregate", coerce_aggregate(self.aggregate))
        if self.k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")

    def spec(
        self, hops: int, include_self: bool, backend: str = "auto"
    ) -> QuerySpec:
        """The full QuerySpec for this batch entry."""
        return QuerySpec(
            k=self.k,
            aggregate=self.aggregate,
            hops=hops,
            include_self=include_self,
            backend=backend,
        )


def _normalize(
    graph: Graph,
    queries: Sequence[Union[BatchQuery, Tuple[object, int], Tuple[object, int, object]]],
) -> List[BatchQuery]:
    normalized: List[BatchQuery] = []
    for i, query in enumerate(queries):
        if isinstance(query, BatchQuery):
            entry = query
        else:
            try:
                scores, k = query[0], int(query[1])  # type: ignore[index]
                aggregate = coerce_aggregate(query[2]) if len(query) > 2 else AggregateKind.SUM  # type: ignore[arg-type,index]
            except (TypeError, IndexError):
                raise InvalidParameterError(
                    f"batch entry {i} must be a BatchQuery or "
                    "(scores, k[, aggregate]) tuple"
                ) from None
            vector = scores if isinstance(scores, ScoreVector) else ScoreVector(scores)  # type: ignore[arg-type]
            entry = BatchQuery(scores=vector, k=k, aggregate=aggregate)
        entry.scores.check_graph(graph)
        if not entry.aggregate.sum_convertible:
            raise InvalidParameterError(
                f"batch entry {i}: batch processing supports SUM/AVG/COUNT, "
                f"not {entry.aggregate.value}"
            )
        normalized.append(entry)
    return normalized


def batch_base_topk(
    graph: Graph,
    queries: Sequence[Union[BatchQuery, Tuple[object, int]]],
    *,
    hops: int = 2,
    include_self: bool = True,
    backend: str = "auto",
    csr=None,
) -> List[TopKResult]:
    """Answer all ``queries`` with one shared scan.

    One BFS per node; each ball is folded into every query's accumulator
    before the next ball is expanded.  Results are returned in input order
    and match running each query through Base alone.  ``backend`` selects
    the execution backend: the numpy path expands node blocks with one
    multi-source BFS and folds each query with a vectorized gather instead
    of a per-member Python loop.  ``csr`` optionally supplies a prebuilt
    numpy CSR view of ``graph`` (``BatchTopKEngine`` caches one across
    runs); ignored by the Python backend.
    """
    batch = _normalize(graph, queries)
    if not batch:
        return []
    start = time.perf_counter()
    counter = TraversalCounter()
    accumulators = [TopKAccumulator(entry.k) for entry in batch]
    # COUNT queries fold over the indicator transform of their vector.
    folded_scores: List[Sequence[float]] = [
        fold_scores(entry.aggregate, entry.scores) for entry in batch
    ]

    concrete = resolve_backend(backend)
    if concrete in ("parallel", "cluster"):
        # Sharded execution needs a session context (worker pool / socket
        # transport + shard exports live there); the standalone function
        # runs the same fused kernel in-process.  BatchTopKEngine
        # dispatches shards when it holds a context.
        concrete = "numpy"
    if concrete == "native":
        from repro.native.engine import shared_scan_native

        shared_scan_native(
            graph, batch, folded_scores, accumulators, hops, include_self,
            counter, csr=csr,
        )
    elif concrete == "numpy":
        _shared_scan_numpy(
            graph, batch, folded_scores, accumulators, hops, include_self,
            counter, csr=csr,
        )
    else:
        _shared_scan_python(
            graph, batch, folded_scores, accumulators, hops, include_self, counter
        )

    elapsed = time.perf_counter() - start
    results: List[TopKResult] = []
    for i, entry in enumerate(batch):
        stats = QueryStats(
            algorithm="batch-base",
            aggregate=entry.aggregate.value,
            backend=concrete,
            hops=hops,
            k=entry.k,
            # Whole-batch wall clock and traversal work are attributed to
            # every member; `extra` carries the batch size so reports can
            # divide fairly.
            elapsed_sec=elapsed,
            nodes_evaluated=graph.num_nodes,
            edges_scanned=counter.edges_scanned,
            nodes_visited=counter.nodes_visited,
            balls_expanded=counter.balls_expanded,
        )
        stats.extra["batch_size"] = float(len(batch))
        results.append(TopKResult(entries=accumulators[i].entries(), stats=stats))
    return results


def _shared_scan_python(
    graph: Graph,
    batch: List[BatchQuery],
    folded_scores: List[Sequence[float]],
    accumulators: List[TopKAccumulator],
    hops: int,
    include_self: bool,
    counter: TraversalCounter,
) -> None:
    """Reference shared scan: one Python BFS per node, q accumulations."""
    for u in graph.nodes():
        ball = hop_ball(graph, u, hops, include_self=include_self, counter=counter)
        size = len(ball)
        for i, entry in enumerate(batch):
            scores = folded_scores[i]
            total = 0.0
            for v in ball:
                total += scores[v]
            if entry.aggregate is AggregateKind.AVG:
                value = total / size if size else 0.0
            else:
                value = total
            accumulators[i].offer(u, value)


def _shared_scan_numpy(
    graph: Graph,
    batch: List[BatchQuery],
    folded_scores: List[Sequence[float]],
    accumulators: List[TopKAccumulator],
    hops: int,
    include_self: bool,
    counter: TraversalCounter,
    csr=None,
    block_size=None,
) -> None:
    """Fused vectorized shared scan: one expansion, all queries per block.

    Each node block is expanded with one multi-source BFS and *every*
    query's ball sums come out of a single segmented reduction
    (``np.add.reduceat`` over the (queries x members) score matrix) — the
    per-query work is one row of vectorized arithmetic, not a separate
    bincount pass.  Offers are threshold-gated per query (see
    :func:`repro.core.vectorized._offer_block`), so the Python-loop cost is
    proportional to plausible top-k entrants, not to ``q * n``.
    """
    import numpy as np

    from repro.core.vectorized import _offer_block, resolve_block_size, segment_starts
    from repro.graph.csr import batched_hop_balls, to_csr

    if csr is None:
        csr = to_csr(graph, use_numpy=True)
    matrix = np.asarray(folded_scores, dtype=np.float64)
    n = graph.num_nodes
    if block_size is None:
        # The fused reduction materializes a (queries x block members)
        # score slice per block; shrink the block with the batch width so
        # peak transient memory tracks the single-query budget.
        block_size = max(
            4, resolve_block_size(None, n, int(csr.num_arcs)) // max(len(batch), 1)
        )
    else:
        block_size = resolve_block_size(block_size, n, int(csr.num_arcs))
    avg_rows = np.asarray(
        [entry.aggregate is AggregateKind.AVG for entry in batch], dtype=bool
    )
    for lo in range(0, n, block_size):
        centers = np.arange(lo, min(lo + block_size, n), dtype=np.int64)
        owners, members, edges = batched_hop_balls(
            csr, centers, hops, include_self=include_self
        )
        count = int(centers.size)
        counter.edges_scanned += edges
        counter.nodes_visited += int(members.size) + (0 if include_self else count)
        counter.balls_expanded += count
        values = np.zeros((len(batch), count), dtype=np.float64)
        if members.size:
            present, starts = segment_starts(np, owners)
            values[:, present] = np.add.reduceat(
                matrix[:, members], starts, axis=1
            )
        if avg_rows.any():
            # Empty balls keep the 0.0 the zeros-init gave them.
            sizes = np.maximum(np.bincount(owners, minlength=count), 1)
            values[avg_rows] = values[avg_rows] / sizes
        for i, acc in enumerate(accumulators):
            _offer_block(np, acc, centers, values[i])


class BatchResult:
    """An ordered collection of batch answers plus workload-level stats.

    Sequence of :class:`TopKResult` (input order), with a ``stats`` property
    that aggregates the per-query counters correctly: each query contributes
    its own work — shared-scan members contribute their ``1/batch_size``
    share so the shared traversal is counted exactly once, individually
    routed members contribute their full counters (see
    :func:`repro.core.results.combine_query_stats`).  Reporting one member's
    stats as "the batch's stats" (a previous reporting habit) either drops
    the peeled-off queries or multiplies the shared scan by the batch size.
    """

    __slots__ = ("_results", "_stats")

    def __init__(self, results: Sequence[TopKResult]) -> None:
        self._results: List[TopKResult] = list(results)
        self._stats: Optional[QueryStats] = None

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self):
        return iter(self._results)

    def __getitem__(self, index):
        return self._results[index]

    @property
    def results(self) -> List[TopKResult]:
        """The per-query results, input order (list copy)."""
        return list(self._results)

    @property
    def stats(self) -> QueryStats:
        """Workload-level stats: per-query counters summed, shared work once."""
        if self._stats is None:
            self._stats = combine_query_stats(r.stats for r in self._results)
        return self._stats


class BatchTopKEngine:
    """Policy layer: share scans for dense queries, peel off sparse ones.

    A query whose score density is below ``sparse_threshold`` runs faster
    through LONA-Backward alone than through any shared scan (its cost is
    proportional to its non-zero count, not to n); everything else joins
    the shared scan.  Answers are independent of the routing (and of the
    execution ``backend``, which both routes honor).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        hops: int = 2,
        include_self: bool = True,
        sparse_threshold: float = 0.05,
        sizes: Optional[NeighborhoodSizeIndex] = None,
        backend: str = "auto",
        csr=None,
        context=None,
    ) -> None:
        self.graph = graph
        self.hops = hops
        self.include_self = include_self
        self.sparse_threshold = sparse_threshold
        self.sizes = sizes
        self.backend = backend
        resolve_backend(backend)  # fail fast on unknown/unavailable backends
        # Shared-cache sources, consulted lazily — nothing is built until a
        # routed query actually needs it: `csr` is an injected prebuilt
        # numpy view; `context` is a session GraphContext whose (cached)
        # CSR / size-index accessors are preferred over building our own.
        self._csr = csr
        self._ctx = context

    def _shared_csr(self):
        """The CSR view for the shared scan (built/fetched on first need)."""
        if self._csr is not None:
            return self._csr
        if self._ctx is not None:
            return self._ctx.csr()
        from repro.graph.csr import to_csr

        self._csr = to_csr(self.graph, use_numpy=True)
        return self._csr

    def _sparse_sizes(self) -> Optional[NeighborhoodSizeIndex]:
        """The N(v) index handed to peeled-off backward queries."""
        if self.sizes is not None:
            return self.sizes
        if self._ctx is not None:
            return self._ctx.size_index()
        return None

    def run(
        self, queries: Sequence[Union[BatchQuery, Tuple[object, int]]]
    ) -> List[TopKResult]:
        """Answer all queries; results in input order."""
        batch = _normalize(self.graph, queries)
        shared_indices: List[int] = []
        results: List[Optional[TopKResult]] = [None] * len(batch)
        for i, entry in enumerate(batch):
            if entry.scores.density <= self.sparse_threshold:
                results[i] = backward_topk(
                    self.graph,
                    entry.scores.values(),
                    entry.spec(self.hops, self.include_self, self.backend),
                    sizes=self._sparse_sizes(),
                )
            else:
                shared_indices.append(i)
        if shared_indices:
            concrete = resolve_backend(self.backend)
            shared_results = None
            if concrete in ("parallel", "cluster") and self._ctx is not None:
                # One fused scan per shard across the worker pool (or the
                # socket cluster); the engine declines (None) below its
                # size floor and the batch falls through to the in-process
                # fused kernel.
                engine = (
                    self._ctx.parallel_engine()
                    if concrete == "parallel"
                    else self._ctx.cluster_engine()
                )
                shared_results = engine.run_batch(
                    [batch[i] for i in shared_indices],
                    hops=self.hops,
                    include_self=self.include_self,
                )
            if shared_results is None:
                csr = self._shared_csr() if concrete != "python" else None
                shared_results = batch_base_topk(
                    self.graph,
                    [batch[i] for i in shared_indices],
                    hops=self.hops,
                    include_self=self.include_self,
                    backend=self.backend,
                    csr=csr,
                )
            for i, result in zip(shared_indices, shared_results):
                results[i] = result
        assert all(r is not None for r in results)
        return [r for r in results if r is not None]
