"""Shared per-graph execution caches, extracted from the engine.

Every execution path over one graph wants the same offline artifacts: the
differential index (LONA-Forward), the neighborhood-size index
(LONA-Backward), and — for the vectorized backend — the CSR views of the
graph and its reversal plus the session-scoped ball caches (backward
verification balls and their distance-labeled weighted counterparts).
Historically each engine (`TopKEngine`, `BatchTopKEngine`, the relational
and dynamic paths) rebuilt its own copies; :class:`GraphContext` owns them
once so the :class:`~repro.session.Network` session and the legacy engines
can share a single cache.

The context is *version-aware*: when the underlying graph is a
:class:`~repro.dynamic.graph.DynamicGraph`, every accessor revalidates
against ``graph.version`` and drops stale artifacts automatically, so a
session over a mutating graph never serves answers from a dead index.

It is also *thread-safe*: every accessor builds (or revalidates) its
artifact under one re-entrant lock, so the concurrent serving layer
(:mod:`repro.service`) can run parallel queries over one context without
double-building or observing half-built caches.  The ball caches carry
their own internal locks and an LRU byte budget
(:data:`DEFAULT_BALL_CACHE_BYTES` per cache unless overridden), so a
long-lived session over a ~1M-node graph cannot grow without limit;
:meth:`cache_stats` reports their hit/eviction counters.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.graph.diffindex import DifferentialIndex, build_differential_index
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex

__all__ = ["GraphContext", "DEFAULT_BALL_CACHE_BYTES"]

#: Default LRU byte budget for each session ball cache (members resident).
#: 64 MiB holds the full verification working set of every paper workload
#: while bounding a serving session over a ~1M-node graph to a fixed
#: footprint; pass ``ball_cache_bytes=None`` for the old unbounded mode.
DEFAULT_BALL_CACHE_BYTES = 64 * 1024 * 1024


class GraphContext:
    """Lazily built, shared caches for one ``(graph, hops, include_self)``.

    Owns: the differential index, the exact/estimated neighborhood-size
    indexes, the (reversed) CSR views consumed by the numpy backend, and
    the session-scoped ball caches (:meth:`ball_cache` /
    :meth:`dist_ball_cache`).  All artifacts build on first use and are
    reused until :meth:`invalidate` (called automatically when the graph's
    version counter moves).  Accessors are safe to call from concurrent
    query threads.
    """

    __slots__ = (
        "graph",
        "hops",
        "include_self",
        "last_index_build_sec",
        "ball_cache_bytes",
        "_diff_index",
        "_size_index",
        "_estimated_sizes",
        "_csr",
        "_rev_csr",
        "_ball_cache",
        "_dist_ball_cache",
        "_parallel",
        "_parallel_options",
        "_cluster",
        "_cluster_options",
        "_graph_version",
        "_lock",
    )

    def __init__(
        self,
        graph: Graph,
        *,
        hops: int = 2,
        include_self: bool = True,
        ball_cache_bytes: Optional[int] = DEFAULT_BALL_CACHE_BYTES,
    ) -> None:
        self.graph = graph
        self.hops = hops
        self.include_self = include_self
        self.last_index_build_sec = 0.0
        self.ball_cache_bytes = ball_cache_bytes
        self._diff_index: Optional[DifferentialIndex] = None
        self._size_index: Optional[NeighborhoodSizeIndex] = None
        self._estimated_sizes: Optional[NeighborhoodSizeIndex] = None
        self._csr = None
        self._rev_csr = None
        self._ball_cache = None
        self._dist_ball_cache = None
        self._parallel = None
        self._parallel_options: dict = {}
        self._cluster = None
        self._cluster_options: dict = {}
        self._graph_version = getattr(graph, "version", None)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Staleness
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every cached artifact (after a graph mutation).

        The parallel engine is deliberately *not* called here: its
        ``_refresh`` revalidates exports against ``graph.version`` at every
        query (stamping the old export stale and rebuilding), exactly like
        the accessors below rebuild their artifacts — and calling into the
        engine under this lock would invert the engine-lock -> ctx-lock
        order every parallel query takes (ABBA deadlock).
        """
        with self._lock:
            self._diff_index = None
            self._size_index = None
            self._estimated_sizes = None
            self._csr = None
            self._rev_csr = None
            self._ball_cache = None
            self._dist_ball_cache = None
            self._graph_version = getattr(self.graph, "version", None)

    def check_fresh(self) -> None:
        """Invalidate automatically when the graph's version moved."""
        with self._lock:
            if getattr(self.graph, "version", None) != self._graph_version:
                self.invalidate()

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    @property
    def diff_index(self) -> Optional[DifferentialIndex]:
        """The differential index, if built (and still fresh)."""
        with self._lock:
            self.check_fresh()
            return self._diff_index

    def build_indexes(self) -> float:
        """Build (or reuse) the differential + exact size indexes.

        Returns the build time in seconds (0.0 when already built) — the
        offline step of LONA-Forward, reported separately from query time
        exactly as the paper excludes index construction from runtimes.
        """
        with self._lock:
            self.check_fresh()
            if self._diff_index is not None:
                return 0.0
            start = time.perf_counter()
            self._diff_index = build_differential_index(
                self.graph, self.hops, include_self=self.include_self
            )
            self._size_index = self._diff_index.sizes
            self.last_index_build_sec = time.perf_counter() - start
            return self.last_index_build_sec

    def size_index(self, *, exact: bool = False) -> NeighborhoodSizeIndex:
        """An ``N(v)`` index: exact when requested/available, else estimated."""
        with self._lock:
            self.check_fresh()
            if exact:
                self.build_indexes()
            if self._size_index is not None:
                return self._size_index
            if self._estimated_sizes is None:
                self._estimated_sizes = NeighborhoodSizeIndex.estimated(
                    self.graph, self.hops, include_self=self.include_self
                )
            return self._estimated_sizes

    def save_index(self, path: object) -> None:
        """Persist the differential index (building it first if needed)."""
        from repro.graph.index_io import save_differential_index

        with self._lock:
            self.build_indexes()
            assert self._diff_index is not None
            save_differential_index(self._diff_index, self.graph, path)  # type: ignore[arg-type]

    def load_index(self, path: object) -> None:
        """Load a persisted differential index for this context's graph.

        Raises :class:`~repro.errors.IndexNotBuiltError` if the file does
        not match the graph (wrong graph, mutated graph, wrong format).
        """
        from repro.graph.index_io import load_differential_index

        with self._lock:
            self.check_fresh()
            index = load_differential_index(self.graph, path)  # type: ignore[arg-type]
            index.check_compatible(self.graph, self.hops, self.include_self)
            self._diff_index = index
            self._size_index = index.sizes

    # ------------------------------------------------------------------
    # CSR views (numpy backend)
    # ------------------------------------------------------------------
    def csr(self):
        """The (lazily built, cached) numpy CSR view of the graph."""
        with self._lock:
            self.check_fresh()
            if self._csr is None:
                from repro.graph.csr import to_csr

                self._csr = to_csr(self.graph, use_numpy=True)
            return self._csr

    def rev_csr(self):
        """Cached numpy CSR view of the reversed graph (directed only).

        Returns None for undirected graphs, whose reversal is themselves.
        """
        with self._lock:
            self.check_fresh()
            if not self.graph.directed:
                return None
            if self._rev_csr is None:
                from repro.graph.csr import to_csr

                self._rev_csr = to_csr(self.graph.reversed(), use_numpy=True)
            return self._rev_csr

    # ------------------------------------------------------------------
    # Session-scoped ball caches (numpy backend)
    # ------------------------------------------------------------------
    def ball_cache(self):
        """Session-scoped :class:`~repro.graph.csr.CSRBallCache` over :meth:`csr`.

        LONA-Backward's verification phase expands the high-bound balls;
        repeated queries over one session mostly re-verify the same nodes,
        so sharing the cache pays each expansion once per session instead
        of once per query.  Bounded by the context's LRU byte budget, and
        version-invalidated with every other artifact (see
        :meth:`invalidate`), so dynamic graphs never serve stale balls.
        """
        with self._lock:
            self.check_fresh()
            if self._ball_cache is None:
                from repro.graph.csr import CSRBallCache

                self._ball_cache = CSRBallCache(
                    self.csr(),
                    self.hops,
                    include_self=self.include_self,
                    max_bytes=self.ball_cache_bytes,
                )
            return self._ball_cache

    def dist_ball_cache(self):
        """Session-scoped :class:`~repro.graph.csr.CSRDistanceBallCache`.

        The weighted analogue of :meth:`ball_cache`: distance-labeled balls
        depend only on the graph and ``(hops, include_self)``, never on the
        decay profile, so one cache serves every weighted query of the
        session.  Same budget and version-invalidation rules.
        """
        with self._lock:
            self.check_fresh()
            if self._dist_ball_cache is None:
                from repro.graph.csr import CSRDistanceBallCache

                self._dist_ball_cache = CSRDistanceBallCache(
                    self.csr(),
                    self.hops,
                    include_self=self.include_self,
                    max_bytes=self.ball_cache_bytes,
                )
            return self._dist_ball_cache

    # ------------------------------------------------------------------
    # Process-parallel engine (the "parallel" backend)
    # ------------------------------------------------------------------
    def parallel_engine(self, _remember: bool = True, **options):
        """The session-scoped :class:`~repro.parallel.engine.ParallelEngine`.

        Created lazily on first use; passing options reconfigures — the
        previous engine (pool + shared-memory exports) is closed and a new
        one built, so ``workers=...`` changes take effect deterministically.
        With no options, repeated calls return the same engine; if the
        engine was released (:meth:`close`), it is rebuilt with the last
        *remembered* options, so an explicit ``net.parallel(...)``
        configuration survives a close/reopen cycle.  ``_remember=False``
        (the serving layer's sizing) applies options without making them
        the session's remembered configuration.

        The previous engine is closed *outside* this context's lock: a
        parallel query holds the engine lock while reading ctx artifacts
        (engine lock -> ctx lock), so closing under the ctx lock would
        invert the order and deadlock.
        """
        from repro.parallel.engine import ParallelEngine

        while True:
            with self._lock:
                previous = self._parallel if options else None
                if previous is None:
                    if self._parallel is None or self._parallel.closed:
                        create = options or self._parallel_options
                        self._parallel = ParallelEngine(self, **create)
                        if options and _remember:
                            self._parallel_options = dict(options)
                    return self._parallel
                self._parallel = None
            previous.close()

    def parallel_configured(self) -> bool:
        """Whether the session explicitly configured the parallel engine."""
        with self._lock:
            return bool(self._parallel_options)

    def has_parallel_engine(self) -> bool:
        """Whether a parallel engine exists (without creating one)."""
        with self._lock:
            return self._parallel is not None and not self._parallel.closed

    # ------------------------------------------------------------------
    # Socket-cluster engine (the "cluster" backend)
    # ------------------------------------------------------------------
    def cluster_engine(self, _remember: bool = True, **options):
        """The session-scoped :class:`~repro.cluster.engine.ClusterEngine`.

        Same lifecycle contract as :meth:`parallel_engine`: lazy creation,
        options reconfigure (previous engine closed outside the ctx lock),
        remembered options survive a close/reopen cycle.  Creating the
        engine never spawns or connects workers — the transport starts on
        the first query it accepts.
        """
        from repro.cluster.engine import ClusterEngine

        while True:
            with self._lock:
                previous = self._cluster if options else None
                if previous is None:
                    if self._cluster is None or self._cluster.closed:
                        create = options or self._cluster_options
                        self._cluster = ClusterEngine(self, **create)
                        if options and _remember:
                            self._cluster_options = dict(options)
                    return self._cluster
                self._cluster = None
            previous.close()

    def cluster_configured(self) -> bool:
        """Whether the session explicitly configured the cluster engine."""
        with self._lock:
            return bool(self._cluster_options)

    def has_cluster_engine(self) -> bool:
        """Whether a cluster engine exists (without creating one)."""
        with self._lock:
            return self._cluster is not None and not self._cluster.closed

    def close(self) -> None:
        """Release out-of-process resources (worker pool, shared memory,
        cluster peers).

        In-process caches need no teardown; this exists so ``Network.close``
        (and tests) can deterministically free the sharded engines instead
        of waiting for garbage collection.  Engines are closed outside the
        ctx lock for the same lock-ordering reason as
        :meth:`parallel_engine`.
        """
        with self._lock:
            engines = [self._parallel, self._cluster]
            self._parallel = None
            self._cluster = None
        for engine in engines:
            if engine is not None:
                engine.close()

    def cache_stats(self) -> Dict[str, Optional[dict]]:
        """Hit/eviction counters of the session ball caches (None = unbuilt)."""
        with self._lock:
            return {
                "ball_cache": (
                    self._ball_cache.stats() if self._ball_cache is not None else None
                ),
                "dist_ball_cache": (
                    self._dist_ball_cache.stats()
                    if self._dist_ball_cache is not None
                    else None
                ),
            }
