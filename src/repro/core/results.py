"""Result and statistics types returned by every algorithm.

Wall-clock comparisons of pure-Python implementations are noisy and machine
dependent, so alongside ``elapsed_sec`` the :class:`QueryStats` carry the
deterministic work counters the paper's cost model is phrased in (edges
accessed, balls expanded) plus per-algorithm pruning counters.  Benchmarks
report both; tests assert on the deterministic ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["QueryStats", "TopKResult", "StreamUpdate", "combine_query_stats"]


@dataclass
class QueryStats:
    """Work accounting for one query execution.

    Counter semantics (all are totals for the single query):

    * ``nodes_evaluated`` — exact ball evaluations performed (each costs one
      truncated BFS).  Base always evaluates every node; the LONA algorithms
      evaluate fewer — this is *the* number pruning is trying to shrink.
    * ``edges_scanned`` / ``nodes_visited`` / ``balls_expanded`` — raw BFS
      traversal work, the paper's ``m^h |V|`` cost model.
    * ``pruned_nodes`` — nodes eliminated by a bound without evaluation.
    * ``bound_evaluations`` — how many upper bounds were computed.
    * ``distribution_pushes`` — backward only: score deposits made during
      partial distribution.
    * ``candidates_verified`` — backward only: exact evaluations in the
      verification phase (subset of ``nodes_evaluated``).
    * ``early_terminated`` — backward only: whether the verification loop
      stopped before exhausting all candidates.
    * ``index_build_sec`` — offline time spent building indexes *for this
      call* (0 when a prebuilt index was supplied; reported separately from
      ``elapsed_sec`` the way the paper treats the differential index as a
      precomputed artifact).
    * ``backend`` — the execution backend that produced the result
      (``"python"`` or ``"numpy"``).  Results are backend-independent; the
      work counters above may differ because the vectorized backend
      processes candidates in blocks.
    """

    algorithm: str = ""
    aggregate: str = ""
    backend: str = "python"
    hops: int = 0
    k: int = 0
    elapsed_sec: float = 0.0
    index_build_sec: float = 0.0
    nodes_evaluated: int = 0
    edges_scanned: int = 0
    nodes_visited: int = 0
    balls_expanded: int = 0
    pruned_nodes: int = 0
    bound_evaluations: int = 0
    distribution_pushes: int = 0
    candidates_verified: int = 0
    early_terminated: bool = False
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (extras inlined) for CSV/report writers."""
        out: Dict[str, object] = {
            "algorithm": self.algorithm,
            "aggregate": self.aggregate,
            "backend": self.backend,
            "hops": self.hops,
            "k": self.k,
            "elapsed_sec": self.elapsed_sec,
            "index_build_sec": self.index_build_sec,
            "nodes_evaluated": self.nodes_evaluated,
            "edges_scanned": self.edges_scanned,
            "nodes_visited": self.nodes_visited,
            "balls_expanded": self.balls_expanded,
            "pruned_nodes": self.pruned_nodes,
            "bound_evaluations": self.bound_evaluations,
            "distribution_pushes": self.distribution_pushes,
            "candidates_verified": self.candidates_verified,
            "early_terminated": self.early_terminated,
        }
        out.update(self.extra)
        return out


@dataclass
class TopKResult:
    """The answer to a top-k neighborhood aggregation query.

    ``entries`` are ``(node, value)`` pairs sorted by value descending (ties
    by ascending node id).  ``stats`` describes the work done to produce
    them.
    """

    entries: List[Tuple[int, float]]
    stats: QueryStats

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def nodes(self) -> List[int]:
        """The answer nodes, best first."""
        return [node for node, _value in self.entries]

    @property
    def values(self) -> List[float]:
        """The answer values, descending."""
        return [value for _node, value in self.entries]

    def value_of(self, node: int) -> Optional[float]:
        """The value of ``node`` in the answer, or None if absent."""
        for candidate, value in self.entries:
            if candidate == node:
                return value
        return None

    def top(self) -> Tuple[int, float]:
        """The single best (node, value) pair."""
        return self.entries[0]


@dataclass(frozen=True)
class StreamUpdate:
    """One refinement step of a streamed (anytime) top-k query.

    Produced by ``Network.query(...).stream()``.  Each update reports the
    node just evaluated exactly, the current top-k snapshot, and a sound
    upper bound on every *not yet evaluated* node's value.  The sequence is
    monotone: snapshots only improve (the k-th best value never decreases)
    and ``bound`` never increases, so a consumer may stop at any update and
    treat ``entries`` as a certified partial answer — every unseen node's
    value is at most ``bound``.  The final update (``done=True``) equals the
    exact answer ``.run()`` returns.
    """

    #: The node whose aggregate was just evaluated exactly.
    node: int
    #: Its exact aggregate value.
    value: float
    #: Upper bound on any not-yet-evaluated node's value (``-inf`` once
    #: every candidate has been evaluated or pruned).
    bound: float
    #: Current top-k snapshot, best first (same format as ``TopKResult``).
    entries: Tuple[Tuple[int, float], ...]
    #: How many nodes have been evaluated so far.
    evaluated: int
    #: How many nodes compete in total (after any candidate filter).
    total: int
    #: True on the last update: the snapshot is the exact answer.
    done: bool = False

    #: How many entries a full snapshot holds (the query's k).
    k: int = 0

    @property
    def kth_value(self) -> float:
        """The current k-th best value — the pruning threshold.

        ``-inf`` while fewer than k nodes have been seen (before that, any
        value could still enter the top-k), matching
        :attr:`repro.core.topk.TopKAccumulator.threshold`.
        """
        if len(self.entries) < self.k:
            return float("-inf")
        return self.entries[-1][1]

    @property
    def converged(self) -> bool:
        """Whether the snapshot is already provably exact."""
        return self.done or self.bound <= self.kth_value


def combine_query_stats(stats: Iterable[QueryStats]) -> QueryStats:
    """Aggregate per-query stats of a batch into one workload-level record.

    Counters are **summed per query**, with shared work counted once: a
    shared-scan member's stats carry the whole batch scan's counters plus
    ``extra["batch_size"]`` (see :func:`repro.core.batch.batch_base_topk`),
    so each member contributes its ``1/batch_size`` share and the shared
    traversal totals exactly one scan — while individually-routed queries
    (e.g. sparse ones peeled off to LONA-Backward) contribute their full
    counters.  Naively reporting one member's stats (or summing the raw
    shared counters) misstates the workload by up to the batch factor.
    """
    stats = list(stats)
    merged = QueryStats(algorithm="batch", aggregate="", backend="", k=0)
    if not stats:
        return merged
    aggregates = {s.aggregate for s in stats}
    backends = {s.backend for s in stats}
    hops = {s.hops for s in stats}
    merged.aggregate = aggregates.pop() if len(aggregates) == 1 else "mixed"
    merged.backend = backends.pop() if len(backends) == 1 else "mixed"
    merged.hops = hops.pop() if len(hops) == 1 else 0
    merged.k = max(s.k for s in stats)
    counters = (
        "nodes_evaluated",
        "edges_scanned",
        "nodes_visited",
        "balls_expanded",
        "pruned_nodes",
        "bound_evaluations",
        "distribution_pushes",
        "candidates_verified",
    )
    totals = {name: 0.0 for name in counters}
    elapsed = 0.0
    index_build = 0.0
    for s in stats:
        share = 1.0 / max(s.extra.get("batch_size", 1.0), 1.0)
        for name in counters:
            totals[name] += getattr(s, name) * share
        elapsed += s.elapsed_sec * share
        index_build += s.index_build_sec * share
        merged.early_terminated = merged.early_terminated or s.early_terminated
    for name in counters:
        setattr(merged, name, int(round(totals[name])))
    merged.elapsed_sec = elapsed
    merged.index_build_sec = index_build
    merged.extra["num_queries"] = float(len(stats))
    return merged
