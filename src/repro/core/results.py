"""Result and statistics types returned by every algorithm.

Wall-clock comparisons of pure-Python implementations are noisy and machine
dependent, so alongside ``elapsed_sec`` the :class:`QueryStats` carry the
deterministic work counters the paper's cost model is phrased in (edges
accessed, balls expanded) plus per-algorithm pruning counters.  Benchmarks
report both; tests assert on the deterministic ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["QueryStats", "TopKResult"]


@dataclass
class QueryStats:
    """Work accounting for one query execution.

    Counter semantics (all are totals for the single query):

    * ``nodes_evaluated`` — exact ball evaluations performed (each costs one
      truncated BFS).  Base always evaluates every node; the LONA algorithms
      evaluate fewer — this is *the* number pruning is trying to shrink.
    * ``edges_scanned`` / ``nodes_visited`` / ``balls_expanded`` — raw BFS
      traversal work, the paper's ``m^h |V|`` cost model.
    * ``pruned_nodes`` — nodes eliminated by a bound without evaluation.
    * ``bound_evaluations`` — how many upper bounds were computed.
    * ``distribution_pushes`` — backward only: score deposits made during
      partial distribution.
    * ``candidates_verified`` — backward only: exact evaluations in the
      verification phase (subset of ``nodes_evaluated``).
    * ``early_terminated`` — backward only: whether the verification loop
      stopped before exhausting all candidates.
    * ``index_build_sec`` — offline time spent building indexes *for this
      call* (0 when a prebuilt index was supplied; reported separately from
      ``elapsed_sec`` the way the paper treats the differential index as a
      precomputed artifact).
    * ``backend`` — the execution backend that produced the result
      (``"python"`` or ``"numpy"``).  Results are backend-independent; the
      work counters above may differ because the vectorized backend
      processes candidates in blocks.
    """

    algorithm: str = ""
    aggregate: str = ""
    backend: str = "python"
    hops: int = 0
    k: int = 0
    elapsed_sec: float = 0.0
    index_build_sec: float = 0.0
    nodes_evaluated: int = 0
    edges_scanned: int = 0
    nodes_visited: int = 0
    balls_expanded: int = 0
    pruned_nodes: int = 0
    bound_evaluations: int = 0
    distribution_pushes: int = 0
    candidates_verified: int = 0
    early_terminated: bool = False
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (extras inlined) for CSV/report writers."""
        out: Dict[str, object] = {
            "algorithm": self.algorithm,
            "aggregate": self.aggregate,
            "backend": self.backend,
            "hops": self.hops,
            "k": self.k,
            "elapsed_sec": self.elapsed_sec,
            "index_build_sec": self.index_build_sec,
            "nodes_evaluated": self.nodes_evaluated,
            "edges_scanned": self.edges_scanned,
            "nodes_visited": self.nodes_visited,
            "balls_expanded": self.balls_expanded,
            "pruned_nodes": self.pruned_nodes,
            "bound_evaluations": self.bound_evaluations,
            "distribution_pushes": self.distribution_pushes,
            "candidates_verified": self.candidates_verified,
            "early_terminated": self.early_terminated,
        }
        out.update(self.extra)
        return out


@dataclass
class TopKResult:
    """The answer to a top-k neighborhood aggregation query.

    ``entries`` are ``(node, value)`` pairs sorted by value descending (ties
    by ascending node id).  ``stats`` describes the work done to produce
    them.
    """

    entries: List[Tuple[int, float]]
    stats: QueryStats

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def nodes(self) -> List[int]:
        """The answer nodes, best first."""
        return [node for node, _value in self.entries]

    @property
    def values(self) -> List[float]:
        """The answer values, descending."""
        return [value for _node, value in self.entries]

    def value_of(self, node: int) -> Optional[float]:
        """The value of ``node`` in the answer, or None if absent."""
        for candidate, value in self.entries:
            if candidate == node:
                return value
        return None

    def top(self) -> Tuple[int, float]:
        """The single best (node, value) pair."""
        return self.entries[0]
