"""The lowered query: everything one execution needs, validated once.

:class:`QueryRequest` is the superset of :class:`~repro.core.query.QuerySpec`
that the fluent :class:`~repro.session.QueryBuilder` lowers to.  Where
``QuerySpec`` pins down Definition 3's parameters (k, aggregate, hops,
ball convention, backend), the request additionally carries everything the
old loose-kwarg engine surfaces accepted:

* ``algorithm`` — ``"auto"`` / ``"planned"`` / ``"base"`` / ``"forward"`` /
  ``"backward"`` / ``"relational"`` / ``"view"``.
* ``score`` — the *name* of the session score vector to aggregate
  (sessions hold many named vectors; standalone callers use the default).
* ``candidates`` — an optional node-set filter: only these nodes compete
  for the top-k (the builder's ``.where(...)``, resolved to a sorted tuple).
* ``gamma`` / ``distribution_fraction`` / ``exact_sizes`` — the
  LONA-Backward policy knobs.
* ``ordering`` / ``seed`` — the LONA-Forward queue-order knobs.
* ``priority`` / ``deadline`` — serving metadata consumed by the async
  scheduler (:mod:`repro.service`): higher priority is dequeued first, and
  a request still queued ``deadline`` seconds after submission expires
  instead of executing.  Both are execution *metadata*: they are excluded
  from equality and hashing, so two requests asking the same question are
  one cache key regardless of how urgently each was asked.
* ``pinned`` — the set-fields mask: which fields the builder set
  *explicitly* (also compare-excluded).  The executor uses it to reject a
  knob pinned to its default value on an algorithm that cannot honor it,
  exactly like a non-default pin; requests constructed directly (mask
  empty) keep the old value-based rejection only.

Requests are frozen (hashable except for the candidate tuple contents,
which are themselves immutable), so builders can share and replay them, and
the executor can treat them as values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import FrozenSet, Iterable, Optional, Tuple, Union

from repro.aggregates.functions import AggregateKind, coerce_aggregate
from repro.core.backends import BACKENDS
from repro.core.ordering import ORDERINGS
from repro.core.query import QuerySpec
from repro.errors import InvalidParameterError, ProtocolError

__all__ = [
    "QueryRequest",
    "REQUEST_ALGORITHMS",
    "DEFAULT_SCORE",
    "REQUEST_SCHEMA_VERSION",
]

#: Version stamp of the canonical :meth:`QueryRequest.to_dict` schema.  Bump
#: only when a field changes meaning — *adding* fields is compatible (the
#: decoder tolerates unknown keys, so an old client can talk to a new
#: server and vice versa).
REQUEST_SCHEMA_VERSION = 1

#: The request fields carried by the canonical serialization, in canonical
#: order.  ``priority`` / ``deadline`` / ``pinned`` are serving *metadata*:
#: serialized (the wire needs them) but excluded from the identity key,
#: mirroring the dataclass's compare-excluded fields.
_CANONICAL_FIELDS = (
    "k",
    "aggregate",
    "hops",
    "include_self",
    "backend",
    "score",
    "algorithm",
    "candidates",
    "gamma",
    "distribution_fraction",
    "exact_sizes",
    "ordering",
    "seed",
)
_METADATA_FIELDS = ("priority", "deadline", "pinned")

#: Algorithms a request may name.  ``"auto"`` and ``"planned"`` resolve at
#: execution time; ``"relational"`` routes to the RDBMS-style baseline;
#: ``"view"`` answers from a session's maintained aggregate view.
REQUEST_ALGORITHMS = (
    "auto",
    "planned",
    "base",
    "forward",
    "backward",
    "relational",
    "view",
)

#: Score name used when the caller does not manage named vectors.
DEFAULT_SCORE = "default"


@dataclass(frozen=True)
class QueryRequest:
    """A fully lowered top-k neighborhood aggregation request."""

    k: int
    aggregate: AggregateKind = AggregateKind.SUM
    hops: int = 2
    include_self: bool = True
    backend: str = "auto"
    score: str = DEFAULT_SCORE
    algorithm: str = "auto"
    candidates: Optional[Tuple[int, ...]] = None
    gamma: Union[str, float] = "auto"
    distribution_fraction: float = 0.1
    exact_sizes: bool = False
    ordering: str = "ubound"
    seed: Optional[int] = field(default=None)
    priority: int = field(default=0, compare=False)
    deadline: Optional[float] = field(default=None, compare=False)
    pinned: FrozenSet[str] = field(default=frozenset(), compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "aggregate", coerce_aggregate(self.aggregate))
        if self.k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")
        if self.hops < 0:
            raise InvalidParameterError(f"hops must be >= 0, got {self.hops}")
        if self.backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.algorithm not in REQUEST_ALGORITHMS:
            raise InvalidParameterError(
                f"unknown algorithm {self.algorithm!r}; "
                f"expected one of {REQUEST_ALGORITHMS}"
            )
        if self.ordering not in ORDERINGS:
            raise InvalidParameterError(
                f"unknown ordering {self.ordering!r}; "
                f"expected one of {tuple(ORDERINGS)}"
            )
        if not isinstance(self.gamma, str):
            gamma = float(self.gamma)
            if not 0.0 <= gamma <= 1.0:
                raise InvalidParameterError(
                    f"gamma must be in [0, 1] or 'auto', got {gamma}"
                )
            object.__setattr__(self, "gamma", gamma)
        elif self.gamma != "auto":
            raise InvalidParameterError(
                f"gamma must be a float in [0, 1] or 'auto', got {self.gamma!r}"
            )
        if not 0.0 < self.distribution_fraction <= 1.0:
            raise InvalidParameterError(
                "distribution_fraction must be in (0, 1], "
                f"got {self.distribution_fraction}"
            )
        if self.candidates is not None:
            object.__setattr__(
                self, "candidates", normalize_candidates(self.candidates)
            )
        object.__setattr__(self, "priority", int(self.priority))
        if self.deadline is not None:
            deadline = float(self.deadline)
            if deadline <= 0.0:
                raise InvalidParameterError(
                    f"deadline must be a positive number of seconds, got {deadline}"
                )
            object.__setattr__(self, "deadline", deadline)
        pinned = frozenset(str(name) for name in self.pinned)
        known = {f.name for f in fields(self)}
        unknown = pinned - known
        if unknown:
            raise InvalidParameterError(
                f"pinned names {sorted(unknown)} are not request fields"
            )
        object.__setattr__(self, "pinned", pinned)

    # ------------------------------------------------------------------
    def spec(self) -> QuerySpec:
        """The plain :class:`QuerySpec` every algorithm kernel consumes."""
        return QuerySpec(
            k=self.k,
            aggregate=self.aggregate,
            hops=self.hops,
            include_self=self.include_self,
            backend=self.backend,
        )

    def replace(self, **changes: object) -> "QueryRequest":
        """A copy of this request with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def is_pinned(self, name: str) -> bool:
        """Whether the builder set ``name`` explicitly (even to its default)."""
        return name in self.pinned

    # ------------------------------------------------------------------
    # Canonical serialization (one schema for the wire, the result cache,
    # the coalescer, and the replica router)
    # ------------------------------------------------------------------
    def to_dict(self, *, metadata: bool = True) -> dict:
        """The canonical JSON-safe serialization of this request.

        Carries ``schema_version`` (:data:`REQUEST_SCHEMA_VERSION`) so wire
        peers can negotiate; ``metadata=False`` drops the serving metadata
        (priority/deadline/pinned) for identity-only uses.  Round-trips
        exactly through :meth:`from_dict`.
        """
        payload: dict = {"schema_version": REQUEST_SCHEMA_VERSION}
        for name in _CANONICAL_FIELDS:
            value = getattr(self, name)
            if name == "aggregate":
                value = value.value
            elif name == "candidates" and value is not None:
                value = list(value)
            payload[name] = value
        if metadata:
            payload["priority"] = self.priority
            payload["deadline"] = self.deadline
            payload["pinned"] = sorted(self.pinned)
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> "QueryRequest":
        """Decode a :meth:`to_dict` payload (validating as the builder would).

        Tolerant by design: unknown keys are ignored (a newer peer may add
        fields), missing fields take their defaults, and unknown *pinned*
        names are dropped (they can only name fields this version does not
        have).  Only an unrecognized ``schema_version`` is rejected — that
        means the fields themselves may have changed meaning.
        """
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"request payload must be an object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version", REQUEST_SCHEMA_VERSION)
        if not isinstance(version, int) or version < 1:
            raise ProtocolError(f"bad request schema_version: {version!r}")
        if version > REQUEST_SCHEMA_VERSION:
            raise ProtocolError(
                f"request schema_version {version} is newer than this "
                f"library understands ({REQUEST_SCHEMA_VERSION})"
            )
        kwargs: dict = {}
        for name in _CANONICAL_FIELDS + _METADATA_FIELDS:
            if name not in payload or payload[name] is None:
                continue
            value = payload[name]
            if name == "candidates":
                value = tuple(value)
            elif name == "pinned":
                known = {f.name for f in fields(cls)}
                value = frozenset(str(p) for p in value) & known
            kwargs[name] = value
        if "k" not in kwargs:
            raise ProtocolError("request payload is missing 'k'")
        try:
            return cls(**kwargs)
        except InvalidParameterError:
            raise
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed request payload: {exc}") from None

    def canonical_key(self) -> tuple:
        """A stable hashable identity key derived from :meth:`to_dict`.

        Two requests asking the same question — regardless of priority or
        deadline — share one key; the set-fields mask *does* participate
        because it changes validation semantics (a pinned-knob variant must
        never be served the unpinned request's answer in place of its
        validation error).  This is the one key the result cache, the
        coalescer, and the replica router all derive from.
        """
        ident = self.to_dict(metadata=False)
        return (
            ident["schema_version"],
            tuple(
                tuple(v) if isinstance(v, list) else v
                for v in (ident[name] for name in _CANONICAL_FIELDS)
            ),
            tuple(sorted(self.pinned)),
        )

    def shape_key(self) -> tuple:
        """The *shape* of this request: its identity minus score and k.

        Requests of one shape are answerable by one fused shared scan and
        hit the same session caches, so the serving tier routes by shape —
        the replica router hashes this key, and the scheduler uses it as
        the coalesce key, concentrating cache and coalescer hits on one
        replica instead of spraying them round-robin.
        """
        plain = self.replace(
            score=DEFAULT_SCORE, k=1, aggregate=AggregateKind.SUM, pinned=frozenset()
        )
        return plain.canonical_key()

    def describe(self) -> str:
        """Human-readable one-liner for logs and reports."""
        out = self.spec().describe()
        parts = [f"score={self.score!r}", f"algorithm={self.algorithm}"]
        if self.candidates is not None:
            parts.append(f"candidates={len(self.candidates)}")
        return f"{out} ({', '.join(parts)})"


def normalize_candidates(candidates: Iterable[int]) -> Tuple[int, ...]:
    """Sorted, deduplicated, type-checked candidate tuple."""
    try:
        nodes = sorted({int(u) for u in candidates})
    except (TypeError, ValueError):
        raise InvalidParameterError(
            "candidates must be an iterable of node ids"
        ) from None
    if any(u < 0 for u in nodes):
        raise InvalidParameterError("candidate node ids must be >= 0")
    return tuple(nodes)
