"""Query specification: what the user asks, validated once.

A :class:`QuerySpec` pins down Definition 3's parameters — ``k``, the
aggregate function, and the hop radius ``h`` — plus the library's
``include_self`` convention switch, so every algorithm receives the same
checked object instead of re-validating loose arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.aggregates.functions import AggregateKind, coerce_aggregate
from repro.core.backends import BACKENDS
from repro.errors import InvalidParameterError

__all__ = ["QuerySpec"]


@dataclass(frozen=True)
class QuerySpec:
    """A validated top-k neighborhood aggregation query.

    Parameters
    ----------
    k:
        How many nodes to return (``>= 1``).
    aggregate:
        SUM / AVG (the paper's two), or COUNT / MAX / MIN extensions.
        Accepts a string or an :class:`AggregateKind`.
    hops:
        The neighborhood radius ``h`` (``>= 0``; the paper benchmarks h=2).
    include_self:
        Whether ``S_h(u)`` contains ``u`` itself.  Default True — the
        convention consistent with the paper's bound formulas (DESIGN.md
        Sec. 1).
    backend:
        Execution backend (see :mod:`repro.core.backends`): ``"python"``,
        ``"numpy"``, or ``"auto"`` (default — vectorized when numpy is
        importable, pure Python otherwise).  Backends return identical
        answers; the choice only moves the work between interpreters.
    """

    k: int
    aggregate: AggregateKind = AggregateKind.SUM
    hops: int = 2
    include_self: bool = True
    backend: str = "auto"

    def __post_init__(self) -> None:
        # Allow "sum"-style strings at the call-site for convenience.
        object.__setattr__(self, "aggregate", coerce_aggregate(self.aggregate))
        if self.k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")
        if self.hops < 0:
            raise InvalidParameterError(f"hops must be >= 0, got {self.hops}")
        if self.backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )

    def with_aggregate(self, aggregate: Union[str, AggregateKind]) -> "QuerySpec":
        """A copy of this spec with a different aggregate."""
        return replace(self, aggregate=coerce_aggregate(aggregate))

    def with_backend(self, backend: str) -> "QuerySpec":
        """A copy of this spec pinned to an execution backend."""
        return replace(self, backend=backend)

    def describe(self) -> str:
        """Human-readable one-liner for logs and reports."""
        ball = "closed" if self.include_self else "open"
        return (
            f"top-{self.k} {self.aggregate.value.upper()} over "
            f"{self.hops}-hop {ball} neighborhoods"
        )
