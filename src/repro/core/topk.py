"""Bounded top-k accumulator (paper P3).

All three algorithms share the same top-k bookkeeping: a capacity-``k``
min-heap of ``(value, node)`` pairs whose minimum — the paper's
``topklbound`` — is the pruning threshold.  Keeping it in one class keeps the
threshold semantics (and their tie-handling subtleties) identical across
Base, LONA-Forward, and LONA-Backward, which is what makes their results
comparable in tests.

Tie semantics: the accumulator keeps the *first-offered* node among equal
values at the boundary (``heapq`` orders by ``(value, -order)`` so later
equal offers do not evict earlier ones).  Consequently different algorithms
may return different node *sets* when values tie at rank k, but always the
same value multiset — the invariant the test-suite checks.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.errors import InvalidParameterError

__all__ = ["TopKAccumulator"]


class TopKAccumulator:
    """Min-heap of the best ``k`` (value, node) pairs seen so far."""

    __slots__ = ("k", "_heap", "_order")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        self.k = k
        # Heap entries are (value, -arrival_order, node): among equal values
        # the *earliest* arrival is the largest entry, so it survives longest.
        self._heap: List[Tuple[float, int, int]] = []
        self._order = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        """Whether ``k`` entries have been accumulated."""
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """The paper's ``topklbound``: the current k-th best value.

        ``-inf`` until the accumulator is full — before that, no node can be
        pruned, because any value would enter the top-k list.
        """
        if len(self._heap) < self.k:
            return float("-inf")
        return self._heap[0][0]

    def offer(self, node: int, value: float) -> bool:
        """Consider ``(node, value)``; return True if it entered the top-k."""
        self._order += 1
        entry = (value, -self._order, node)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        if entry <= self._heap[0]:
            return False
        heapq.heapreplace(self._heap, entry)
        return True

    def would_accept(self, value: float) -> bool:
        """Whether a node with this exact value could enter the top-k now.

        Strictly-greater semantics, matching Algorithm 1's
        ``if F(u) > topklbound`` line: an exact tie with the current k-th
        value does not displace it.
        """
        return len(self._heap) < self.k or value > self._heap[0][0]

    def entries(self) -> List[Tuple[int, float]]:
        """The top-k as ``(node, value)`` pairs, best first.

        Ties are broken by ascending node id for deterministic output.
        """
        ordered = sorted(self._heap, key=lambda e: (-e[0], e[2]))
        return [(node, value) for value, _neg_order, node in ordered]

    def values(self) -> List[float]:
        """The top-k values only, descending."""
        return sorted((e[0] for e in self._heap), reverse=True)
