"""TopKEngine: the library's front door.

Wraps a ``(graph, relevance)`` pair, owns the index lifecycle (differential
index and neighborhood-size index are built once and reused across queries,
matching the paper's offline-precompute framing), and dispatches each query
to Base, LONA-Forward, or LONA-Backward — or picks automatically.

Automatic algorithm choice (``algorithm="auto"``):

* sparse scores (density <= ``auto_density_threshold``) -> **backward**:
  partial distribution touches only the non-zero nodes, so sparsity is its
  whole advantage — and it needs no index.
* otherwise, **forward** when a differential index is already built (its
  offline cost is sunk), else **base** for MAX/MIN and one-off dense queries
  where building the index would dominate.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.aggregates.functions import AggregateKind, coerce_aggregate
from repro.core.backends import resolve_backend
from repro.core.backward import backward_topk
from repro.core.base import base_topk
from repro.core.forward import forward_topk
from repro.core.planner import ExecutionPlan, QueryPlanner
from repro.core.query import QuerySpec
from repro.core.results import TopKResult
from repro.errors import InvalidParameterError
from repro.graph.diffindex import DifferentialIndex, build_differential_index
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex
from repro.relevance.base import ScoreVector

__all__ = ["TopKEngine", "topk_sum", "topk_avg"]

ALGORITHMS = ("auto", "planned", "base", "forward", "backward")


class TopKEngine:
    """Query engine for top-k neighborhood aggregation over one graph.

    Parameters
    ----------
    graph:
        The network.
    relevance:
        Either a materialized :class:`ScoreVector` / sequence of floats, or
        a relevance function object exposing ``scores(graph)``.
    hops:
        Neighborhood radius ``h`` shared by this engine's queries
        (the paper benchmarks h=2, "much harder than 1-hop ... more popular
        than 3+ hop").
    include_self:
        Ball convention (see DESIGN.md Sec. 1).
    auto_density_threshold:
        Score density below which ``algorithm="auto"`` picks backward.
    backend:
        Execution backend for this engine's queries: ``"auto"`` (default,
        vectorized when numpy is importable), ``"python"``, or ``"numpy"``.
        Individual queries may override via ``topk(..., backend=...)``.
        The engine caches the numpy CSR view of the graph across queries,
        so the conversion cost is paid once, like the other indexes.
    """

    def __init__(
        self,
        graph: Graph,
        relevance: object,
        *,
        hops: int = 2,
        include_self: bool = True,
        auto_density_threshold: float = 0.2,
        backend: str = "auto",
    ) -> None:
        self.graph = graph
        self.hops = hops
        self.include_self = include_self
        self.auto_density_threshold = auto_density_threshold
        self.backend = backend
        resolve_backend(backend)  # fail fast on unknown/unavailable backends
        self.scores = self._materialize(graph, relevance)
        self._diff_index: Optional[DifferentialIndex] = None
        self._size_index: Optional[NeighborhoodSizeIndex] = None
        self._estimated_sizes: Optional[NeighborhoodSizeIndex] = None
        self._planner: Optional[QueryPlanner] = None
        # Cached numpy CSR views for the vectorized backend (reversed view
        # only materializes for directed graphs, on first backward query).
        self._csr = None
        self._rev_csr = None
        self.last_index_build_sec = 0.0

    @staticmethod
    def _materialize(graph: Graph, relevance: object) -> ScoreVector:
        if isinstance(relevance, ScoreVector):
            vector = relevance
        elif hasattr(relevance, "scores"):
            vector = relevance.scores(graph)  # type: ignore[attr-defined]
            if not isinstance(vector, ScoreVector):
                vector = ScoreVector(vector)
        else:
            vector = ScoreVector(relevance)  # type: ignore[arg-type]
        vector.check_graph(graph)
        return vector

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------
    def build_indexes(self) -> float:
        """Build (or reuse) the differential + exact size indexes.

        Returns the build time in seconds (0.0 when already built).  This is
        the offline step of LONA-Forward; benchmarks call it outside the
        timed region exactly as the paper excludes index construction from
        query runtimes.
        """
        if self._diff_index is not None:
            return 0.0
        start = time.perf_counter()
        self._diff_index = build_differential_index(
            self.graph, self.hops, include_self=self.include_self
        )
        self._size_index = self._diff_index.sizes
        self.last_index_build_sec = time.perf_counter() - start
        return self.last_index_build_sec

    @property
    def diff_index(self) -> Optional[DifferentialIndex]:
        """The differential index, if built."""
        return self._diff_index

    def save_index(self, path: object) -> None:
        """Persist the differential index (building it first if needed).

        The paper's offline artifact, on disk: pay the build once per graph,
        reload it in every later process (see
        :mod:`repro.graph.index_io` for the format and its staleness
        protection).
        """
        from repro.graph.index_io import save_differential_index

        self.build_indexes()
        assert self._diff_index is not None
        save_differential_index(self._diff_index, self.graph, path)  # type: ignore[arg-type]

    def load_index(self, path: object) -> None:
        """Load a persisted differential index for this engine's graph.

        Raises :class:`~repro.errors.IndexNotBuiltError` if the file does
        not match the graph (wrong graph, mutated graph, wrong format).
        """
        from repro.graph.index_io import load_differential_index

        index = load_differential_index(self.graph, path)  # type: ignore[arg-type]
        index.check_compatible(self.graph, self.hops, self.include_self)
        self._diff_index = index
        self._size_index = index.sizes

    def csr_view(self):
        """The (lazily built, cached) numpy CSR view of the graph.

        Only meaningful for the numpy backend; raises when numpy is absent.
        """
        if self._csr is None:
            from repro.graph.csr import to_csr

            self._csr = to_csr(self.graph, use_numpy=True)
        return self._csr

    def rev_csr_view(self):
        """Cached numpy CSR view of the reversed graph (directed only).

        Returns None for undirected graphs, whose reversal is themselves.
        """
        if not self.graph.directed:
            return None
        if self._rev_csr is None:
            from repro.graph.csr import to_csr

            self._rev_csr = to_csr(self.graph.reversed(), use_numpy=True)
        return self._rev_csr

    def size_index(self, *, exact: bool = False) -> NeighborhoodSizeIndex:
        """An ``N(v)`` index: exact when requested/available, else estimated."""
        if exact:
            self.build_indexes()
        if self._size_index is not None:
            return self._size_index
        if self._estimated_sizes is None:
            self._estimated_sizes = NeighborhoodSizeIndex.estimated(
                self.graph, self.hops, include_self=self.include_self
            )
        return self._estimated_sizes

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def planner(self) -> QueryPlanner:
        """The (lazily built) cost-based planner for this engine's setup."""
        if self._planner is None or (
            self._planner.index_available != (self._diff_index is not None)
        ):
            self._planner = QueryPlanner(
                self.graph,
                self.scores.values(),
                hops=self.hops,
                include_self=self.include_self,
                index_available=self._diff_index is not None,
                backend=self.backend,
            )
        return self._planner

    def explain(
        self,
        k: int,
        aggregate: Union[str, AggregateKind] = "sum",
        *,
        amortize_index: bool = True,
    ) -> ExecutionPlan:
        """Cost estimates and the planner's choice, without executing."""
        return self.planner().plan(
            self.spec(k, aggregate), amortize_index=amortize_index
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spec(
        self,
        k: int,
        aggregate: Union[str, AggregateKind] = "sum",
        *,
        backend: Optional[str] = None,
    ) -> QuerySpec:
        """Build a :class:`QuerySpec` bound to this engine's h, ball, backend."""
        return QuerySpec(
            k=k,
            aggregate=coerce_aggregate(aggregate),
            hops=self.hops,
            include_self=self.include_self,
            backend=backend if backend is not None else self.backend,
        )

    def topk(
        self,
        k: int,
        aggregate: Union[str, AggregateKind] = "sum",
        algorithm: str = "auto",
        **options: object,
    ) -> TopKResult:
        """Answer a top-k query.

        ``options`` are forwarded to the chosen algorithm (e.g. ``gamma`` or
        ``distribution_fraction`` for backward, ``ordering`` for forward,
        ``exact_sizes=True`` to force the exact N index in backward).
        ``backend="python"|"numpy"|"auto"`` overrides the engine's backend
        for this query alone.
        """
        backend = options.pop("backend", None)
        spec = self.spec(k, aggregate, backend=backend)  # type: ignore[arg-type]
        if algorithm not in ALGORITHMS:
            raise InvalidParameterError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        if algorithm == "auto":
            algorithm = self._choose_algorithm(spec)
        elif algorithm == "planned":
            algorithm = self.explain(k, spec.aggregate).chosen
        if algorithm == "base":
            self._reject_unknown(options)
            return base_topk(self.graph, self.scores, spec)
        vectorized = resolve_backend(spec.backend) == "numpy"
        csr = self.csr_view() if vectorized else None
        if algorithm == "forward":
            self.build_indexes()
            ordering = str(options.pop("ordering", "ubound"))
            seed = options.pop("seed", None)
            self._reject_unknown(options)
            return forward_topk(
                self.graph,
                self.scores,
                spec,
                diff_index=self._diff_index,
                ordering=ordering,
                seed=seed,  # type: ignore[arg-type]
                csr=csr,
            )
        # backward
        exact_sizes = bool(options.pop("exact_sizes", False))
        gamma = options.pop("gamma", "auto")
        fraction = float(options.pop("distribution_fraction", 0.1))  # type: ignore[arg-type]
        self._reject_unknown(options)
        sizes = self.size_index(exact=exact_sizes) if exact_sizes else (
            self._size_index or self.size_index()
        )
        return backward_topk(
            self.graph,
            self.scores,
            spec,
            gamma=gamma,  # type: ignore[arg-type]
            distribution_fraction=fraction,
            sizes=sizes,
            csr=csr,
            rev_csr=self.rev_csr_view() if vectorized else None,
        )

    def topk_weighted(
        self,
        k: int,
        profile=None,
        algorithm: str = "backward",
        **options: object,
    ) -> TopKResult:
        """Distance-weighted top-k SUM (the paper's footnote 1).

        ``profile`` maps hop distance to a weight in [0, 1]
        (default: inverse distance).  ``algorithm`` is ``"base"`` or
        ``"backward"``.
        """
        from repro.aggregates.weighted import inverse_distance
        from repro.core.weighted import weighted_backward_topk, weighted_base_topk

        if profile is None:
            profile = inverse_distance
        spec = self.spec(k, AggregateKind.SUM)
        if algorithm == "base":
            self._reject_unknown(options)
            return weighted_base_topk(self.graph, self.scores, spec, profile)
        if algorithm == "backward":
            gamma = options.pop("gamma", "auto")
            fraction = float(options.pop("distribution_fraction", 0.1))  # type: ignore[arg-type]
            exact_sizes = bool(options.pop("exact_sizes", False))
            self._reject_unknown(options)
            sizes = self.size_index(exact=exact_sizes) if exact_sizes else (
                self._size_index or self.size_index()
            )
            return weighted_backward_topk(
                self.graph,
                self.scores,
                spec,
                profile,
                gamma=gamma,  # type: ignore[arg-type]
                distribution_fraction=fraction,
                sizes=sizes,
            )
        raise InvalidParameterError(
            f"weighted queries support algorithm 'base' or 'backward', "
            f"got {algorithm!r}"
        )

    @staticmethod
    def _reject_unknown(options: dict) -> None:
        if options:
            raise InvalidParameterError(
                f"unknown query options: {sorted(options)}"
            )

    def _choose_algorithm(self, spec: QuerySpec) -> str:
        if not spec.aggregate.lona_supported:
            return "base"
        if self.scores.density <= self.auto_density_threshold:
            return "backward"
        if self._diff_index is not None:
            return "forward"
        return "base"


def topk_sum(
    graph: Graph,
    relevance: object,
    k: int,
    *,
    hops: int = 2,
    algorithm: str = "auto",
) -> TopKResult:
    """One-shot convenience: top-k SUM query."""
    return TopKEngine(graph, relevance, hops=hops).topk(k, "sum", algorithm)


def topk_avg(
    graph: Graph,
    relevance: object,
    k: int,
    *,
    hops: int = 2,
    algorithm: str = "auto",
) -> TopKResult:
    """One-shot convenience: top-k AVG query."""
    return TopKEngine(graph, relevance, hops=hops).topk(k, "avg", algorithm)
