"""TopKEngine: the legacy per-score engine, now a shim over the executor.

.. deprecated::
    :class:`TopKEngine` remains fully functional but is superseded by the
    :class:`~repro.session.Network` session facade::

        from repro import Network

        net = Network(graph, hops=2)
        net.add_scores("relevance", relevance)
        result = net.query("relevance").limit(10).aggregate("sum").run()

    The session owns one set of shared caches for *all* score vectors and
    exposes batch, streaming, relational, and dynamic execution through the
    same builder.  Constructing a ``TopKEngine`` directly emits a
    :class:`DeprecationWarning`; results are guaranteed identical (the shim
    lowers to the same :mod:`repro.core.executor` the session uses).

Automatic algorithm choice (``algorithm="auto"``):

* sparse scores (density <= ``auto_density_threshold``) -> **backward**:
  partial distribution touches only the non-zero nodes, so sparsity is its
  whole advantage — and it needs no index.
* otherwise, **forward** when a differential index is already built (its
  offline cost is sunk), else **base** for MAX/MIN and one-off dense queries
  where building the index would dominate.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

from repro.aggregates.functions import AggregateKind, coerce_aggregate
from repro.core import executor
from repro.core.backends import resolve_backend
from repro.core.context import GraphContext
from repro.core.planner import ExecutionPlan, QueryPlanner
from repro.core.query import QuerySpec
from repro.core.request import QueryRequest
from repro.core.results import TopKResult
from repro.errors import InvalidParameterError
from repro.graph.diffindex import DifferentialIndex
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex
from repro.relevance.base import ScoreVector

__all__ = ["TopKEngine", "topk_sum", "topk_avg", "materialize_scores"]

ALGORITHMS = ("auto", "planned", "base", "forward", "backward")


def materialize_scores(graph: Graph, relevance: object) -> ScoreVector:
    """Coerce a relevance function / sequence / vector into a ScoreVector."""
    if isinstance(relevance, ScoreVector):
        vector = relevance
    elif hasattr(relevance, "scores"):
        vector = relevance.scores(graph)  # type: ignore[attr-defined]
        if not isinstance(vector, ScoreVector):
            vector = ScoreVector(vector)
    else:
        vector = ScoreVector(relevance)  # type: ignore[arg-type]
    vector.check_graph(graph)
    return vector


class TopKEngine:
    """Query engine for top-k neighborhood aggregation over one graph.

    Deprecated in favor of :class:`repro.session.Network` (see the module
    docstring); kept working, entry-for-entry identical, as a thin shim.

    Parameters
    ----------
    graph:
        The network.
    relevance:
        Either a materialized :class:`ScoreVector` / sequence of floats, or
        a relevance function object exposing ``scores(graph)``.
    hops:
        Neighborhood radius ``h`` shared by this engine's queries
        (the paper benchmarks h=2, "much harder than 1-hop ... more popular
        than 3+ hop").
    include_self:
        Ball convention (see DESIGN.md Sec. 1).
    auto_density_threshold:
        Score density below which ``algorithm="auto"`` picks backward.
    backend:
        Execution backend for this engine's queries: ``"auto"`` (default,
        vectorized when numpy is importable), ``"python"``, or ``"numpy"``.
        Individual queries may override via ``topk(..., backend=...)``.
    """

    def __init__(
        self,
        graph: Graph,
        relevance: object,
        *,
        hops: int = 2,
        include_self: bool = True,
        auto_density_threshold: float = 0.2,
        backend: str = "auto",
    ) -> None:
        warnings.warn(
            "TopKEngine is deprecated; use repro.Network — "
            "net = Network(graph, hops=...); net.add_scores(name, relevance); "
            "net.query(name).limit(k).run()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.graph = graph
        self.hops = hops
        self.include_self = include_self
        self.auto_density_threshold = auto_density_threshold
        self.backend = backend
        resolve_backend(backend)  # fail fast on unknown/unavailable backends
        self.scores = materialize_scores(graph, relevance)
        self._ctx = GraphContext(graph, hops=hops, include_self=include_self)
        self._planner: Optional[QueryPlanner] = None

    # ------------------------------------------------------------------
    # Index lifecycle (delegated to the shared GraphContext)
    # ------------------------------------------------------------------
    def build_indexes(self) -> float:
        """Build (or reuse) the differential + exact size indexes.

        Returns the build time in seconds (0.0 when already built).
        """
        return self._ctx.build_indexes()

    @property
    def last_index_build_sec(self) -> float:
        """Offline build time of the most recent index construction."""
        return self._ctx.last_index_build_sec

    @property
    def diff_index(self) -> Optional[DifferentialIndex]:
        """The differential index, if built."""
        return self._ctx.diff_index

    def save_index(self, path: object) -> None:
        """Persist the differential index (building it first if needed)."""
        self._ctx.save_index(path)

    def load_index(self, path: object) -> None:
        """Load a persisted differential index for this engine's graph."""
        self._ctx.load_index(path)

    def csr_view(self):
        """The (lazily built, cached) numpy CSR view of the graph."""
        return self._ctx.csr()

    def rev_csr_view(self):
        """Cached numpy CSR view of the reversed graph (directed only)."""
        return self._ctx.rev_csr()

    def size_index(self, *, exact: bool = False) -> NeighborhoodSizeIndex:
        """An ``N(v)`` index: exact when requested/available, else estimated."""
        return self._ctx.size_index(exact=exact)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def planner(self) -> QueryPlanner:
        """The (lazily built) cost-based planner for this engine's setup."""
        index_available = self._ctx.diff_index is not None
        if self._planner is None or (
            self._planner.index_available != index_available
        ):
            self._planner = QueryPlanner(
                self.graph,
                self.scores.values(),
                hops=self.hops,
                include_self=self.include_self,
                index_available=index_available,
                backend=self.backend,
            )
        return self._planner

    def explain(
        self,
        k: int,
        aggregate: Union[str, AggregateKind] = "sum",
        *,
        amortize_index: bool = True,
    ) -> ExecutionPlan:
        """Cost estimates and the planner's choice, without executing."""
        return self.planner().plan(
            self.spec(k, aggregate), amortize_index=amortize_index
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spec(
        self,
        k: int,
        aggregate: Union[str, AggregateKind] = "sum",
        *,
        backend: Optional[str] = None,
    ) -> QuerySpec:
        """Build a :class:`QuerySpec` bound to this engine's h, ball, backend."""
        return QuerySpec(
            k=k,
            aggregate=coerce_aggregate(aggregate),
            hops=self.hops,
            include_self=self.include_self,
            backend=backend if backend is not None else self.backend,
        )

    def topk(
        self,
        k: int,
        aggregate: Union[str, AggregateKind] = "sum",
        algorithm: str = "auto",
        **options: object,
    ) -> TopKResult:
        """Answer a top-k query.

        ``options`` are forwarded to the chosen algorithm (e.g. ``gamma`` or
        ``distribution_fraction`` for backward, ``ordering`` for forward,
        ``exact_sizes=True`` to force the exact N index in backward).
        ``backend="python"|"numpy"|"auto"`` overrides the engine's backend
        for this query alone.
        """
        if algorithm not in ALGORITHMS:
            raise InvalidParameterError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        backend = options.pop("backend", None)
        aggregate = coerce_aggregate(aggregate)
        spec_backend = backend if backend is not None else self.backend
        # Resolve auto/planned *first*, then reject options the concrete
        # algorithm cannot use — a typo'd or inapplicable knob must raise,
        # not silently do nothing.
        if algorithm == "auto":
            algorithm = executor.choose_algorithm(
                self.scores,
                self.spec(k, aggregate, backend=spec_backend),  # type: ignore[arg-type]
                index_available=self._ctx.diff_index is not None,
                auto_density_threshold=self.auto_density_threshold,
            )
        elif algorithm == "planned":
            algorithm = self.explain(k, aggregate).chosen
        allowed = {
            "base": (),
            "forward": ("ordering", "seed"),
            "backward": ("gamma", "distribution_fraction", "exact_sizes"),
        }[algorithm]
        self._reject_unknown(
            {k_: v for k_, v in options.items() if k_ not in allowed}
        )
        fraction = options.get("distribution_fraction", 0.1)
        request = QueryRequest(
            k=k,
            aggregate=aggregate,
            hops=self.hops,
            include_self=self.include_self,
            backend=spec_backend,  # type: ignore[arg-type]
            algorithm=algorithm,
            gamma=options.get("gamma", "auto"),  # type: ignore[arg-type]
            distribution_fraction=float(fraction),  # type: ignore[arg-type]
            exact_sizes=bool(options.get("exact_sizes", False)),
            ordering=str(options.get("ordering", "ubound")),
            seed=options.get("seed"),  # type: ignore[arg-type]
        )
        return executor.execute(
            self._ctx,
            self.scores,
            request,
            auto_density_threshold=self.auto_density_threshold,
        )

    def topk_weighted(
        self,
        k: int,
        profile=None,
        algorithm: str = "backward",
        **options: object,
    ) -> TopKResult:
        """Distance-weighted top-k SUM (the paper's footnote 1).

        ``profile`` maps hop distance to a weight in [0, 1]
        (default: inverse distance).  ``algorithm`` is ``"base"`` or
        ``"backward"``.
        """
        return executor.execute_weighted(
            self._ctx,
            self.scores,
            self.spec(k, AggregateKind.SUM),
            profile,
            algorithm,
            options,
        )

    @staticmethod
    def _reject_unknown(options: dict) -> None:
        if options:
            raise InvalidParameterError(
                f"unknown query options: {sorted(options)}"
            )


def topk_sum(
    graph: Graph,
    relevance: object,
    k: int,
    *,
    hops: int = 2,
    algorithm: str = "auto",
) -> TopKResult:
    """One-shot convenience: top-k SUM query (via the session facade)."""
    from repro.session import Network

    net = Network(graph, hops=hops)
    net.add_scores("default", relevance)
    return net.query("default").limit(k).aggregate("sum").algorithm(algorithm).run()


def topk_avg(
    graph: Graph,
    relevance: object,
    k: int,
    *,
    hops: int = 2,
    algorithm: str = "auto",
) -> TopKResult:
    """One-shot convenience: top-k AVG query (via the session facade)."""
    from repro.session import Network

    net = Network(graph, hops=hops)
    net.add_scores("default", relevance)
    return net.query("default").limit(k).aggregate("avg").algorithm(algorithm).run()
