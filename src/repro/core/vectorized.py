"""Vectorized NumPy execution backend for LONA-Forward and LONA-Backward.

Same algorithms, same answers, different substrate: instead of walking
adjacency lists node-by-node, both algorithms here run over
:class:`~repro.graph.csr.CSRGraph` flat arrays with the bound state
(``static_ub`` / ``ubound_sum`` / ``pruned`` / ``evaluated``) resident in
numpy arrays, so the Eq. 1 / Eq. 3 bound arithmetic — exactly the bulk
bound-maintenance the threshold-algorithm literature identifies as
array-shaped work — executes without per-edge Python calls.

How each phase vectorizes
-------------------------
* **Ball evaluation** (forward): candidates are taken from the processing
  order in *blocks*; one frontier-batched multi-source BFS
  (:func:`~repro.graph.csr.batched_hop_balls`) expands every block member's
  ball simultaneously and ``np.bincount`` reduces the per-ball score sums.
  Evaluating a node the pure-Python loop would have pruned moments later is
  harmless: its exact value is offered to the accumulator, which rejects
  anything that cannot *exceed* the k-th best — so results are identical and
  only the work counters differ.
* **Differential pruning** (forward): after a block is evaluated, every
  evaluated node's neighbor slice is gathered from the CSR arrays in one
  shot and the Eq. 1 running minimum is maintained with ``np.minimum.at``
  over the batched ``F(u) + delta(v-u)`` bounds.
* **Distribution / bounding** (backward): per-ball score deposits are fancy-
  indexed adds; the Eq. 3 bound of *every* node is one array expression.

Float parity: balls are aggregated in sorted-member order, one canonical
order per ball set, so nodes with identical neighborhoods get bit-identical
aggregates in this backend (as they do in the Python backend) and tie
handling agrees between the two.  The parity suite asserts entry-for-entry
equality on every aggregate and both ball conventions.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Union

from repro.aggregates.functions import AggregateKind
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult
from repro.core.topk import TopKAccumulator
from repro.errors import InvalidParameterError
from repro.graph.csr import (
    CSRBallCache,
    CSRGraph,
    batched_hop_balls,
    slab_positions,
    to_csr,
)
from repro.graph.diffindex import DifferentialIndex, build_differential_index
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex
from repro.graph.traversal import TraversalCounter

__all__ = ["forward_topk_numpy", "backward_topk_numpy", "DEFAULT_BLOCK_SIZE"]

#: Candidates evaluated per multi-source BFS round in LONA-Forward.  Larger
#: blocks amortize numpy call overhead; smaller blocks re-check the rising
#: threshold more often (less over-evaluation).  64-256 are all reasonable.
DEFAULT_BLOCK_SIZE = 128

#: Cap on the ``block * num_nodes`` visited buffer of a multi-source BFS
#: round (bools, so this is bytes).  32 MiB keeps blocks of 128 up to
#: ~260k-node graphs and degrades gracefully to smaller blocks beyond.
_MAX_BLOCK_CELLS = 1 << 25


def _effective_block_size(block_size: int, num_nodes: int) -> int:
    """Shrink the requested block so the visited buffer stays bounded."""
    return max(4, min(block_size, _MAX_BLOCK_CELLS // max(num_nodes, 1)))


def _as_scores_array(np, scores: Sequence[float], kind: AggregateKind):
    """Materialize scores as float64, folding COUNT to its 0/1 indicator."""
    arr = np.asarray(scores, dtype=np.float64)
    if kind is AggregateKind.COUNT:
        arr = np.where(arr > 0.0, 1.0, 0.0)
        kind = AggregateKind.SUM
    return arr, kind


def _ubound_order(np, kind, scores_arr, sizes: NeighborhoodSizeIndex):
    """Vectorized "ubound" processing order, identical to make_order's.

    Same formulas, same ``(-bound, node)`` tie-break: ``np.lexsort`` with the
    node id as the secondary key reproduces the stable Python sort exactly.
    """
    upper = np.asarray(sizes.upper_values(), dtype=np.int64)
    key = np.maximum(upper - 1, 0) + scores_arr
    if kind is AggregateKind.AVG:
        lower = np.asarray(sizes.lower_values(), dtype=np.int64)
        key = key / np.maximum(lower, 1)
    return np.lexsort((np.arange(key.size), -key))


def forward_topk_numpy(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    diff_index: Optional[DifferentialIndex] = None,
    ordering: str = "ubound",
    seed: Optional[int] = None,
    csr: Optional[CSRGraph] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> TopKResult:
    """LONA-Forward over CSR flat arrays (see module docstring).

    Mirrors :func:`repro.core.forward.forward_topk` argument-for-argument;
    ``csr`` optionally supplies a prebuilt numpy CSR view (the engine caches
    one across queries), ``block_size`` tunes the evaluation batching.
    """
    import numpy as np

    kind = spec.aggregate
    if not kind.lona_supported:
        raise InvalidParameterError(
            f"LONA-Forward supports SUM/AVG/COUNT, not {kind.value}; "
            "use algorithm='base' for MAX/MIN"
        )
    scores_arr, kind = _as_scores_array(np, scores, kind)
    is_avg = kind is AggregateKind.AVG

    build_sec = 0.0
    if diff_index is None:
        build_start = time.perf_counter()
        diff_index = build_differential_index(
            graph, spec.hops, include_self=spec.include_self
        )
        build_sec = time.perf_counter() - build_start
    diff_index.check_compatible(graph, spec.hops, spec.include_self)

    start = time.perf_counter()
    if csr is None:
        csr = to_csr(graph, use_numpy=True)
    deltas = diff_index.flat_deltas()
    n = graph.num_nodes
    hops = spec.hops
    include_self = spec.include_self
    sizes = np.asarray(diff_index.sizes.upper_values(), dtype=np.int64)

    # Static Eq. 1 arm for every node at once.
    if include_self:
        static_ub = np.maximum(sizes - 1, 0) + scores_arr
    else:
        static_ub = sizes.astype(np.float64)
    ubound_sum = static_ub.copy()
    inv_size = 1.0 / np.maximum(sizes, 1) if is_avg else None

    pruned = np.zeros(n, dtype=bool)
    evaluated = np.zeros(n, dtype=bool)

    stats = QueryStats(
        algorithm="forward",
        aggregate=spec.aggregate.value,
        backend="numpy",
        hops=hops,
        k=spec.k,
        index_build_sec=build_sec,
    )

    if ordering == "ubound":
        order = _ubound_order(np, kind, scores_arr, diff_index.sizes)
    else:
        from repro.core.ordering import make_order

        order = np.asarray(
            make_order(
                ordering, graph, scores_arr.tolist(), kind=kind,
                sizes=diff_index.sizes, seed=seed,
            ),
            dtype=np.int64,
        )

    acc = TopKAccumulator(spec.k)
    bound_evals = 0
    pruned_count = 0
    evaluated_count = 0
    edges_scanned = 0
    nodes_visited = 0
    neg_inf = float("-inf")
    block_size = _effective_block_size(block_size, n)

    position = 0
    while position < order.size:
        block = order[position : position + block_size]
        position += block_size
        live = block[~(evaluated[block] | pruned[block])]
        if live.size == 0:
            continue
        threshold = acc.threshold
        # Lazy running-minimum bound check for the whole block at once.
        effective = ubound_sum[live] * inv_size[live] if is_avg else ubound_sum[live]
        if threshold != neg_inf:
            cut = effective <= threshold
            newly_pruned = live[cut]
            pruned[newly_pruned] = True
            pruned_count += int(newly_pruned.size)
            live = live[~cut]
            if live.size == 0:
                continue

        # Exact forward processing of the whole block: one multi-source BFS.
        owners, members, edges = batched_hop_balls(
            csr, live, hops, include_self=include_self
        )
        edges_scanned += edges
        nodes_visited += int(members.size) + (0 if include_self else int(live.size))
        ball_sizes = np.bincount(owners, minlength=live.size)
        ball_sums = np.bincount(
            owners, weights=scores_arr[members], minlength=live.size
        )
        evaluated[live] = True
        evaluated_count += int(live.size)
        if is_avg:
            values = np.divide(
                ball_sums,
                ball_sizes,
                out=np.zeros(live.size, dtype=np.float64),
                where=ball_sizes > 0,
            )
        else:
            values = ball_sums
        offer = acc.offer
        for node, value in zip(live.tolist(), values.tolist()):
            offer(node, value)
        threshold = acc.threshold

        # pruneNodes for the block: the differential arm can only prune
        # while F_sum(u) <= topklbound (delta >= 0), so gate first, then
        # batch every surviving node's neighbor slice in one gather.
        gate = ball_sums <= threshold
        sources = live[gate]
        if sources.size == 0:
            continue
        positions, counts = slab_positions(csr, sources)
        if positions.size == 0:
            continue
        neighbors = csr.indices[positions]
        bounds = np.repeat(ball_sums[gate], counts) + deltas[positions]
        open_mask = ~(evaluated[neighbors] | pruned[neighbors])
        targets = neighbors[open_mask]
        bound_evals += int(targets.size)
        if targets.size == 0:
            continue
        np.minimum.at(ubound_sum, targets, bounds[open_mask])
        candidates = np.unique(targets)
        effective = (
            ubound_sum[candidates] * inv_size[candidates]
            if is_avg
            else ubound_sum[candidates]
        )
        newly_pruned = candidates[effective <= threshold]
        pruned[newly_pruned] = True
        pruned_count += int(newly_pruned.size)

    stats.nodes_evaluated = evaluated_count
    stats.pruned_nodes = pruned_count
    stats.bound_evaluations = bound_evals
    stats.elapsed_sec = time.perf_counter() - start
    stats.edges_scanned = edges_scanned
    stats.nodes_visited = nodes_visited
    stats.balls_expanded = evaluated_count
    stats.extra["ordering"] = ordering
    stats.extra["block_size"] = float(block_size)
    return TopKResult(entries=acc.entries(), stats=stats)


def backward_topk_numpy(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    gamma: Union[float, str] = "auto",
    distribution_fraction: float = 0.1,
    sizes: Optional[NeighborhoodSizeIndex] = None,
    csr: Optional[CSRGraph] = None,
    rev_csr: Optional[CSRGraph] = None,
) -> TopKResult:
    """LONA-Backward over CSR flat arrays (see module docstring).

    Mirrors :func:`repro.core.backward.backward_topk` argument-for-argument;
    ``csr`` optionally supplies a prebuilt numpy CSR view of ``graph`` and
    ``rev_csr`` one of ``graph.reversed()`` (only consulted on directed
    graphs, where distribution walks the reversed arcs; without it the
    reversal is rebuilt per query).
    """
    import numpy as np

    from repro.core.backward import resolve_gamma

    kind = spec.aggregate
    if not kind.lona_supported:
        raise InvalidParameterError(
            f"LONA-Backward supports SUM/AVG/COUNT, not {kind.value}; "
            "use algorithm='base' for MAX/MIN"
        )
    scores_arr, kind = _as_scores_array(np, scores, kind)
    is_avg = kind is AggregateKind.AVG

    build_sec = 0.0
    if sizes is None:
        build_start = time.perf_counter()
        sizes = NeighborhoodSizeIndex.estimated(
            graph, spec.hops, include_self=spec.include_self
        )
        build_sec = time.perf_counter() - build_start

    start = time.perf_counter()
    counter = TraversalCounter()
    n = graph.num_nodes
    include_self = spec.include_self
    stats = QueryStats(
        algorithm="backward",
        aggregate=spec.aggregate.value,
        backend="numpy",
        hops=spec.hops,
        k=spec.k,
        index_build_sec=build_sec,
    )
    if csr is None:
        csr = to_csr(graph, use_numpy=True)

    # ------------------------------------------------------------------
    # Phase 1: partial distribution in descending score order.
    # ------------------------------------------------------------------
    nonzero_ids = np.nonzero(scores_arr > 0.0)[0]
    nonzero_scores = scores_arr[nonzero_ids]
    desc = np.lexsort((nonzero_ids, -nonzero_scores))
    ordered_ids = nonzero_ids[desc]
    ordered_scores = nonzero_scores[desc]
    effective_gamma = resolve_gamma(
        gamma, ordered_scores.tolist(), distribution_fraction=distribution_fraction
    )
    cut = int(np.searchsorted(-ordered_scores, -effective_gamma, side="right"))
    distributed = ordered_ids[:cut]
    rest_bound = float(ordered_scores[cut]) if cut < ordered_scores.size else 0.0

    if not graph.directed:
        dist_csr = csr
    elif rev_csr is not None:
        dist_csr = rev_csr
    else:
        dist_csr = to_csr(graph.reversed(), use_numpy=True)
    partial = np.zeros(n, dtype=np.float64)
    covered = np.zeros(n, dtype=np.int64)
    self_distributed = np.zeros(n, dtype=bool)
    pushes = 0
    # Deposits stay in descending score order (block order preserves it and
    # bincount accumulates in pair order), so every node's partial sum is
    # built by the same float addition sequence as the Python backend's.
    block_size = _effective_block_size(DEFAULT_BLOCK_SIZE, n)
    for lo in range(0, int(distributed.size), block_size):
        block = distributed[lo : lo + block_size]
        owners, members, edges = batched_hop_balls(
            dist_csr, block, spec.hops, include_self=include_self
        )
        counter.edges_scanned += edges
        counter.nodes_visited += int(members.size) + (
            0 if include_self else int(block.size)
        )
        counter.balls_expanded += int(block.size)
        ball_sizes = np.bincount(owners, minlength=block.size)
        partial += np.bincount(
            members, weights=np.repeat(scores_arr[block], ball_sizes), minlength=n
        )
        covered += np.bincount(members, minlength=n)
        pushes += int(members.size)
    stats.distribution_pushes = pushes
    if include_self:
        self_distributed[distributed] = True

    # ------------------------------------------------------------------
    # Phase 2: Eq. 3 upper bound for every node, one array expression.
    # ------------------------------------------------------------------
    upper = np.asarray(sizes.upper_values(), dtype=np.int64)
    self_known = self_distributed | (not include_self)
    unknown = np.where(self_known, upper - covered, upper - covered - 1)
    extra = np.where(self_known, 0.0, scores_arr)
    sum_bounds = partial + rest_bound * np.maximum(unknown, 0) + extra
    if is_avg:
        lower = np.asarray(sizes.lower_values(), dtype=np.int64)
        bounds = sum_bounds / np.maximum(lower, 1)
    else:
        bounds = sum_bounds
    stats.bound_evaluations = n
    candidate_order = np.lexsort((np.arange(n), -bounds))

    # ------------------------------------------------------------------
    # Phase 3: verification in descending bound order, TA-style stop.
    # ------------------------------------------------------------------
    exact_shortcut = rest_bound == 0.0 and (not is_avg or sizes.is_exact)
    shortcut_values = None
    if exact_shortcut:
        totals = partial + np.where(
            ~self_distributed & include_self, scores_arr, 0.0
        )
        if is_avg:
            size_values = np.asarray(sizes.upper_values(), dtype=np.int64)
            shortcut_values = totals / np.maximum(size_values, 1)
        else:
            shortcut_values = totals
    verify_cache = CSRBallCache(
        csr, spec.hops, include_self=include_self, counter=counter
    )
    acc = TopKAccumulator(spec.k)
    offered = 0
    for v in candidate_order:
        bound = float(bounds[v])
        if acc.is_full and bound <= acc.threshold:
            stats.early_terminated = True
            break
        node = int(v)
        if exact_shortcut:
            value = float(shortcut_values[v])
        else:
            ball = verify_cache.ball(node)
            # cumsum, not sum: sequential left-to-right accumulation over
            # the sorted members, the same float result the Python loop
            # gets (np.sum's pairwise order would differ in the last ulp).
            total = float(scores_arr[ball].cumsum()[-1]) if ball.size else 0.0
            value = (total / ball.size if ball.size else 0.0) if is_avg else total
            stats.nodes_evaluated += 1
            stats.candidates_verified += 1
        acc.offer(node, value)
        offered += 1

    stats.pruned_nodes = n - offered
    stats.elapsed_sec = time.perf_counter() - start
    stats.edges_scanned = counter.edges_scanned
    stats.nodes_visited = counter.nodes_visited
    stats.balls_expanded = counter.balls_expanded
    stats.extra["gamma"] = effective_gamma
    stats.extra["distributed_nodes"] = float(distributed.size)
    stats.extra["rest_bound"] = rest_bound
    stats.extra["exact_shortcut"] = float(exact_shortcut)
    return TopKResult(entries=acc.entries(), stats=stats)
