"""Vectorized NumPy execution backend — full route coverage.

Same algorithms, same answers, different substrate: instead of walking
adjacency lists node-by-node, every executor route — Base (all aggregate
kinds, MAX/MIN included), LONA-Forward, LONA-Backward, and the
distance-weighted base/backward variants — runs over
:class:`~repro.graph.csr.CSRGraph` flat arrays with the bound state
(``static_ub`` / ``ubound_sum`` / ``pruned`` / ``evaluated``) resident in
numpy arrays, so the Eq. 1 / Eq. 3 bound arithmetic — exactly the bulk
bound-maintenance the threshold-algorithm literature identifies as
array-shaped work — executes without per-edge Python calls.  Block sizes
adapt to graph size and average degree (:func:`adaptive_block_size`).

How each phase vectorizes
-------------------------
* **Ball evaluation** (forward): candidates are taken from the processing
  order in *blocks*; one frontier-batched multi-source BFS
  (:func:`~repro.graph.csr.batched_hop_balls`) expands every block member's
  ball simultaneously and ``np.bincount`` reduces the per-ball score sums.
  Evaluating a node the pure-Python loop would have pruned moments later is
  harmless: its exact value is offered to the accumulator, which rejects
  anything that cannot *exceed* the k-th best — so results are identical and
  only the work counters differ.
* **Differential pruning** (forward): after a block is evaluated, every
  evaluated node's neighbor slice is gathered from the CSR arrays in one
  shot and the Eq. 1 running minimum is maintained with ``np.minimum.at``
  over the batched ``F(u) + delta(v-u)`` bounds.
* **Distribution / bounding** (backward): per-ball score deposits are fancy-
  indexed adds; the Eq. 3 bound of *every* node is one array expression.
* **Exhaustive scans** (base / weighted base): candidate blocks expand with
  one multi-source BFS; SUM/AVG/COUNT reduce with ``np.bincount``, MAX/MIN
  with ``ufunc.reduceat`` over the sorted owner segments, and offers into
  the accumulator are threshold-gated so the Python loop touches only
  plausible top-k entrants.
* **Weighted variants**: distance-labeled batched expansion
  (:func:`~repro.graph.csr.batched_hop_balls_with_distances`) carries each
  member's hop distance, so footnote 1's ``w(d) * f(v)`` deposits and sums
  are one gather + one ``bincount``; backward verification is *blocked*
  (a batch of candidates per distance-BFS, cut at the rising threshold).

Float parity: balls are aggregated in sorted-member order, one canonical
order per ball set, so nodes with identical neighborhoods get bit-identical
aggregates in this backend (as they do in the Python backend) and tie
handling agrees between the two.  The parity suite asserts entry-for-entry
equality on every aggregate and both ball conventions.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Union

from repro.aggregates.functions import AggregateKind
from repro.core.deadline import check_deadline
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult
from repro.core.topk import TopKAccumulator
from repro.errors import InvalidParameterError
from repro.graph.csr import (
    CSRBallCache,
    CSRDistanceBallCache,
    CSRGraph,
    batched_hop_balls,
    batched_hop_balls_with_distances,
    slab_positions,
    to_csr,
)
from repro.graph.diffindex import DifferentialIndex, build_differential_index
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex
from repro.graph.traversal import TraversalCounter

__all__ = [
    "adaptive_block_size",
    "resolve_block_size",
    "base_topk_numpy",
    "forward_topk_numpy",
    "backward_topk_numpy",
    "backward_distribution_split",
    "backward_eq3_bounds",
    "backward_shortcut_values",
    "static_upper_bounds_array",
    "weighted_base_topk_numpy",
    "weighted_backward_topk_numpy",
]

#: Bounds on the candidates-per-round of a multi-source BFS.  Below the
#: floor the numpy call overhead dominates; above the ceiling the rising
#: threshold is re-checked too rarely (over-evaluation in the forward
#: kernel) for no extra amortization.
_MIN_BLOCK = 4
_MAX_BLOCK = 1024

#: Cap on the ``block * num_nodes`` visited buffer of a multi-source BFS
#: round (bools, so this is bytes).  32 MiB keeps blocks of 128 up to
#: ~260k-node graphs and degrades gracefully to smaller blocks beyond.
_CELL_BUDGET = 1 << 25

#: Target width of one BFS level's neighbor-slab gather.  Together with the
#: average degree this bounds the per-level working set so a block's
#: expansion stays cache-resident instead of thrashing on dense graphs.
_SLAB_BUDGET = 1 << 20

#: Block ceiling for the native (compiled) kernel tier.  Its per-center
#: stamp-BFS carries no ``block * num_nodes`` visited buffer and no
#: neighbor-slab gathers, so neither budget above applies; bigger blocks
#: just amortize the per-call dispatch further.  4096 keeps the per-block
#: scratch (centers + two result vectors) inside L2.
_NATIVE_MAX_BLOCK = 4096


def adaptive_block_size(
    num_nodes: int,
    num_arcs: int,
    *,
    pruning: bool = False,
    backend: str = "numpy",
) -> int:
    """Candidates per multi-source BFS round, from graph size and degree.

    Two budgets, take the tighter: the flat visited buffer is
    ``block * num_nodes`` bools (capped at 32 MiB), and one BFS level
    gathers roughly ``block * avg_degree`` neighbor-slab entries (capped at
    ~1M so each gather stays cache-friendly on dense graphs).  Small graphs
    hit the ``_MAX_BLOCK`` ceiling — numpy call amortization — and
    million-node graphs degrade gracefully toward the floor instead of
    allocating unbounded buffers.

    ``pruning=True`` (the forward kernel) additionally caps the block at
    ~1/8 of the graph, at most 256: threshold-driven kernels only re-check
    the rising ``topklbound`` *between* blocks, so evaluating a large slice
    of the graph per round would erase the pruning the blocking exists for.

    ``backend="native"`` swaps in the compiled tier's profile: its
    per-center stamp-BFS allocates no block-by-graph buffer and no neighbor
    slabs, so neither memory budget applies — blocks run to
    ``_NATIVE_MAX_BLOCK`` (dispatch amortization only), and the pruning cap
    relaxes to 1024 because a compiled block is cheap enough that re-checking
    the threshold less often costs less than it saves.
    """
    if num_nodes <= 0:
        return _MIN_BLOCK
    if backend == "native":
        block = min(_NATIVE_MAX_BLOCK, max(_MIN_BLOCK, num_nodes))
        if pruning:
            block = min(block, max(_MIN_BLOCK, min(1024, num_nodes // 8)))
        return block
    avg_degree = num_arcs / num_nodes
    slab_cap = int(_SLAB_BUDGET / max(avg_degree, 1.0))
    cell_cap = _CELL_BUDGET // num_nodes
    block = min(_MAX_BLOCK, slab_cap, cell_cap)
    if pruning:
        block = min(block, max(_MIN_BLOCK, min(256, num_nodes // 8)))
    return max(_MIN_BLOCK, block)


def resolve_block_size(
    requested: Optional[int],
    num_nodes: int,
    num_arcs: int,
    *,
    pruning: bool = False,
    backend: str = "numpy",
) -> int:
    """``None`` -> :func:`adaptive_block_size`; explicit requests only get
    clamped to the visited-buffer budget (tests pin tiny blocks on purpose).
    The native tier has no such buffer, so its explicit requests pass
    through unclamped."""
    if requested is None:
        return adaptive_block_size(
            num_nodes, num_arcs, pruning=pruning, backend=backend
        )
    if backend == "native":
        return max(1, int(requested))
    return max(1, min(int(requested), _CELL_BUDGET // max(num_nodes, 1)))


def _as_scores_array(np, scores: Sequence[float], kind: AggregateKind):
    """Materialize scores as float64, folding COUNT to its 0/1 indicator."""
    arr = np.asarray(scores, dtype=np.float64)
    if kind is AggregateKind.COUNT:
        arr = np.where(arr > 0.0, 1.0, 0.0)
        kind = AggregateKind.SUM
    return arr, kind


def _ubound_order(np, kind, scores_arr, sizes: NeighborhoodSizeIndex):
    """Vectorized "ubound" processing order, identical to make_order's.

    Same formulas, same ``(-bound, node)`` tie-break: ``np.lexsort`` with the
    node id as the secondary key reproduces the stable Python sort exactly.
    """
    upper = np.asarray(sizes.upper_values(), dtype=np.int64)
    key = np.maximum(upper - 1, 0) + scores_arr
    if kind is AggregateKind.AVG:
        lower = np.asarray(sizes.lower_values(), dtype=np.int64)
        key = key / np.maximum(lower, 1)
    return np.lexsort((np.arange(key.size), -key))


def forward_topk_numpy(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    diff_index: Optional[DifferentialIndex] = None,
    ordering: str = "ubound",
    seed: Optional[int] = None,
    csr: Optional[CSRGraph] = None,
    block_size: Optional[int] = None,
) -> TopKResult:
    """LONA-Forward over CSR flat arrays (see module docstring).

    Mirrors :func:`repro.core.forward.forward_topk` argument-for-argument;
    ``csr`` optionally supplies a prebuilt numpy CSR view (the engine caches
    one across queries), ``block_size`` overrides the adaptive evaluation
    batching (``None`` -> :func:`adaptive_block_size`).
    """
    import numpy as np

    kind = spec.aggregate
    if not kind.lona_supported:
        raise InvalidParameterError(
            f"LONA-Forward supports SUM/AVG/COUNT, not {kind.value}; "
            "use algorithm='base' for MAX/MIN"
        )
    scores_arr, kind = _as_scores_array(np, scores, kind)
    is_avg = kind is AggregateKind.AVG

    build_sec = 0.0
    if diff_index is None:
        build_start = time.perf_counter()
        diff_index = build_differential_index(
            graph, spec.hops, include_self=spec.include_self
        )
        build_sec = time.perf_counter() - build_start
    diff_index.check_compatible(graph, spec.hops, spec.include_self)

    start = time.perf_counter()
    if csr is None:
        csr = to_csr(graph, use_numpy=True)
    deltas = diff_index.flat_deltas()
    n = graph.num_nodes
    hops = spec.hops
    include_self = spec.include_self
    sizes = np.asarray(diff_index.sizes.upper_values(), dtype=np.int64)

    # Static Eq. 1 arm for every node at once.
    if include_self:
        static_ub = np.maximum(sizes - 1, 0) + scores_arr
    else:
        static_ub = sizes.astype(np.float64)
    ubound_sum = static_ub.copy()
    inv_size = 1.0 / np.maximum(sizes, 1) if is_avg else None

    pruned = np.zeros(n, dtype=bool)
    evaluated = np.zeros(n, dtype=bool)

    stats = QueryStats(
        algorithm="forward",
        aggregate=spec.aggregate.value,
        backend="numpy",
        hops=hops,
        k=spec.k,
        index_build_sec=build_sec,
    )

    if ordering == "ubound":
        order = _ubound_order(np, kind, scores_arr, diff_index.sizes)
    else:
        from repro.core.ordering import make_order

        order = np.asarray(
            make_order(
                ordering, graph, scores_arr.tolist(), kind=kind,
                sizes=diff_index.sizes, seed=seed,
            ),
            dtype=np.int64,
        )

    acc = TopKAccumulator(spec.k)
    bound_evals = 0
    pruned_count = 0
    evaluated_count = 0
    edges_scanned = 0
    nodes_visited = 0
    neg_inf = float("-inf")
    block_size = resolve_block_size(block_size, n, int(csr.num_arcs), pruning=True)

    position = 0
    while position < order.size:
        check_deadline()
        block = order[position : position + block_size]
        position += block_size
        live = block[~(evaluated[block] | pruned[block])]
        if live.size == 0:
            continue
        threshold = acc.threshold
        # Lazy running-minimum bound check for the whole block at once.
        effective = ubound_sum[live] * inv_size[live] if is_avg else ubound_sum[live]
        if threshold != neg_inf:
            cut = effective <= threshold
            newly_pruned = live[cut]
            pruned[newly_pruned] = True
            pruned_count += int(newly_pruned.size)
            live = live[~cut]
            if live.size == 0:
                continue

        # Exact forward processing of the whole block: one multi-source BFS.
        owners, members, edges = batched_hop_balls(
            csr, live, hops, include_self=include_self
        )
        edges_scanned += edges
        nodes_visited += int(members.size) + (0 if include_self else int(live.size))
        ball_sizes = np.bincount(owners, minlength=live.size)
        ball_sums = np.bincount(
            owners, weights=scores_arr[members], minlength=live.size
        )
        evaluated[live] = True
        evaluated_count += int(live.size)
        if is_avg:
            values = np.divide(
                ball_sums,
                ball_sizes,
                out=np.zeros(live.size, dtype=np.float64),
                where=ball_sizes > 0,
            )
        else:
            values = ball_sums
        offer = acc.offer
        for node, value in zip(live.tolist(), values.tolist()):
            offer(node, value)
        threshold = acc.threshold

        # pruneNodes for the block: the differential arm can only prune
        # while F_sum(u) <= topklbound (delta >= 0), so gate first, then
        # batch every surviving node's neighbor slice in one gather.
        gate = ball_sums <= threshold
        sources = live[gate]
        if sources.size == 0:
            continue
        positions, counts = slab_positions(csr, sources)
        if positions.size == 0:
            continue
        neighbors = csr.indices[positions]
        bounds = np.repeat(ball_sums[gate], counts) + deltas[positions]
        open_mask = ~(evaluated[neighbors] | pruned[neighbors])
        targets = neighbors[open_mask]
        bound_evals += int(targets.size)
        if targets.size == 0:
            continue
        np.minimum.at(ubound_sum, targets, bounds[open_mask])
        candidates = np.unique(targets)
        effective = (
            ubound_sum[candidates] * inv_size[candidates]
            if is_avg
            else ubound_sum[candidates]
        )
        newly_pruned = candidates[effective <= threshold]
        pruned[newly_pruned] = True
        pruned_count += int(newly_pruned.size)

    stats.nodes_evaluated = evaluated_count
    stats.pruned_nodes = pruned_count
    stats.bound_evaluations = bound_evals
    stats.elapsed_sec = time.perf_counter() - start
    stats.edges_scanned = edges_scanned
    stats.nodes_visited = nodes_visited
    stats.balls_expanded = evaluated_count
    stats.extra["ordering"] = ordering
    stats.extra["block_size"] = float(block_size)
    return TopKResult(entries=acc.entries(), stats=stats)


def static_upper_bounds_array(
    np, scores_arr, sizes: NeighborhoodSizeIndex, kind: AggregateKind, include_self: bool
):
    """Per-node static upper bounds on F(v), vectorized.

    The array twin of the streaming executor's ``_static_upper_bounds``
    SUM/COUNT/AVG arms — shared with the parallel engine's bound-pruned
    forward scan so the two formulas cannot drift apart.  SUM/COUNT use
    ``(N_ub(v) - 1) + f(v)`` (open ball: ``N_ub(v)``); AVG divides by the
    size *lower* bound and clamps at 1 (scores live in [0, 1]).  MAX/MIN
    have no static-pruning arm here; callers route them to Base.
    """
    if not kind.lona_supported:
        raise InvalidParameterError(
            f"static upper bounds cover SUM/AVG/COUNT, not {kind.value}"
        )
    upper = np.asarray(sizes.upper_values(), dtype=np.float64)
    f = np.asarray(scores_arr, dtype=np.float64)
    if kind is AggregateKind.COUNT:
        f = np.where(f > 0.0, 1.0, 0.0)
    if include_self:
        bounds = np.maximum(upper - 1.0, 0.0) + f
    else:
        bounds = upper.copy()
    if kind is AggregateKind.AVG:
        lower = np.asarray(sizes.lower_values(), dtype=np.float64)
        bounds = np.minimum(1.0, bounds / np.maximum(lower, 1.0))
    return bounds


def backward_distribution_split(np, scores_arr, gamma, distribution_fraction):
    """Phase-1 policy of LONA-Backward, shared by every vectorized caller.

    Returns ``(distributed, effective_gamma, rest_bound)``: the node ids to
    distribute (descending score, ties by id — the paper's distribution
    order), the resolved gamma threshold, and the highest undistributed
    score (Eq. 3's bound on every unknown).  One implementation serves the
    in-process numpy kernel and the sharded parallel engine, so the two
    can never disagree on which nodes distribute.
    """
    from repro.core.backward import resolve_gamma

    nonzero_ids = np.nonzero(scores_arr > 0.0)[0]
    nonzero_scores = scores_arr[nonzero_ids]
    desc = np.lexsort((nonzero_ids, -nonzero_scores))
    ordered_ids = nonzero_ids[desc]
    ordered_scores = nonzero_scores[desc]
    effective_gamma = resolve_gamma(
        gamma, ordered_scores.tolist(), distribution_fraction=distribution_fraction
    )
    cut = int(np.searchsorted(-ordered_scores, -effective_gamma, side="right"))
    distributed = ordered_ids[:cut]
    rest_bound = float(ordered_scores[cut]) if cut < ordered_scores.size else 0.0
    return distributed, effective_gamma, rest_bound


def backward_eq3_bounds(
    np,
    scores_arr,
    partial,
    covered,
    self_distributed,
    sizes: NeighborhoodSizeIndex,
    rest_bound: float,
    *,
    include_self: bool,
    is_avg: bool,
):
    """Eq. 3 upper bound for every node, one array expression.

    The vectorized twin of :func:`repro.core.bounds.backward_sum_bound`
    (plus the AVG division), shared by the numpy kernel and the parallel
    engine's merged-state bounding so their pruning can never diverge.
    """
    upper = np.asarray(sizes.upper_values(), dtype=np.int64)
    self_known = self_distributed | (not include_self)
    unknown = np.where(self_known, upper - covered, upper - covered - 1)
    extra = np.where(self_known, 0.0, scores_arr)
    sum_bounds = partial + rest_bound * np.maximum(unknown, 0) + extra
    if is_avg:
        lower = np.asarray(sizes.lower_values(), dtype=np.int64)
        return sum_bounds / np.maximum(lower, 1)
    return sum_bounds


def backward_shortcut_values(
    np,
    scores_arr,
    partial,
    self_distributed,
    sizes: NeighborhoodSizeIndex,
    *,
    include_self: bool,
    is_avg: bool,
):
    """Exact aggregates from full distribution (``rest_bound == 0``).

    When everything non-zero was distributed, PS(v) (+ the center's own
    score where applicable) *is* the exact SUM; AVG divides by the exact
    ball size (callers guarantee ``sizes.is_exact`` before taking the
    shortcut).  Shared for the same no-divergence reason as
    :func:`backward_eq3_bounds`.
    """
    totals = partial + np.where(
        ~self_distributed & include_self, scores_arr, 0.0
    )
    if is_avg:
        size_values = np.asarray(sizes.upper_values(), dtype=np.int64)
        return totals / np.maximum(size_values, 1)
    return totals


def backward_topk_numpy(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    gamma: Union[float, str] = "auto",
    distribution_fraction: float = 0.1,
    sizes: Optional[NeighborhoodSizeIndex] = None,
    csr: Optional[CSRGraph] = None,
    rev_csr: Optional[CSRGraph] = None,
    ball_cache: Optional[CSRBallCache] = None,
) -> TopKResult:
    """LONA-Backward over CSR flat arrays (see module docstring).

    Mirrors :func:`repro.core.backward.backward_topk` argument-for-argument;
    ``csr`` optionally supplies a prebuilt numpy CSR view of ``graph`` and
    ``rev_csr`` one of ``graph.reversed()`` (only consulted on directed
    graphs, where distribution walks the reversed arcs; without it the
    reversal is rebuilt per query).  ``ball_cache`` optionally supplies a
    session-scoped :class:`~repro.graph.csr.CSRBallCache` over the same
    ``csr`` so repeated queries reuse verification-phase expansions; it is
    consulted only when its ``(csr, hops, include_self)`` triple matches.
    """
    import numpy as np

    kind = spec.aggregate
    if not kind.lona_supported:
        raise InvalidParameterError(
            f"LONA-Backward supports SUM/AVG/COUNT, not {kind.value}; "
            "use algorithm='base' for MAX/MIN"
        )
    scores_arr, kind = _as_scores_array(np, scores, kind)
    is_avg = kind is AggregateKind.AVG

    build_sec = 0.0
    if sizes is None:
        build_start = time.perf_counter()
        sizes = NeighborhoodSizeIndex.estimated(
            graph, spec.hops, include_self=spec.include_self
        )
        build_sec = time.perf_counter() - build_start

    start = time.perf_counter()
    counter = TraversalCounter()
    n = graph.num_nodes
    include_self = spec.include_self
    stats = QueryStats(
        algorithm="backward",
        aggregate=spec.aggregate.value,
        backend="numpy",
        hops=spec.hops,
        k=spec.k,
        index_build_sec=build_sec,
    )
    if csr is None:
        csr = to_csr(graph, use_numpy=True)

    # ------------------------------------------------------------------
    # Phase 1: partial distribution in descending score order.
    # ------------------------------------------------------------------
    distributed, effective_gamma, rest_bound = backward_distribution_split(
        np, scores_arr, gamma, distribution_fraction
    )

    if not graph.directed:
        dist_csr = csr
    elif rev_csr is not None:
        dist_csr = rev_csr
    else:
        dist_csr = to_csr(graph.reversed(), use_numpy=True)
    partial = np.zeros(n, dtype=np.float64)
    covered = np.zeros(n, dtype=np.int64)
    self_distributed = np.zeros(n, dtype=bool)
    pushes = 0
    # Deposits stay in descending score order (block order preserves it and
    # bincount accumulates in pair order), so every node's partial sum is
    # built by the same float addition sequence as the Python backend's.
    block_size = resolve_block_size(None, n, int(dist_csr.num_arcs))
    for lo in range(0, int(distributed.size), block_size):
        check_deadline()
        block = distributed[lo : lo + block_size]
        owners, members, edges = batched_hop_balls(
            dist_csr, block, spec.hops, include_self=include_self
        )
        counter.edges_scanned += edges
        counter.nodes_visited += int(members.size) + (
            0 if include_self else int(block.size)
        )
        counter.balls_expanded += int(block.size)
        ball_sizes = np.bincount(owners, minlength=block.size)
        partial += np.bincount(
            members, weights=np.repeat(scores_arr[block], ball_sizes), minlength=n
        )
        covered += np.bincount(members, minlength=n)
        pushes += int(members.size)
    stats.distribution_pushes = pushes
    if include_self:
        self_distributed[distributed] = True

    # ------------------------------------------------------------------
    # Phase 2: Eq. 3 upper bound for every node, one array expression.
    # ------------------------------------------------------------------
    bounds = backward_eq3_bounds(
        np,
        scores_arr,
        partial,
        covered,
        self_distributed,
        sizes,
        rest_bound,
        include_self=include_self,
        is_avg=is_avg,
    )
    stats.bound_evaluations = n
    candidate_order = np.lexsort((np.arange(n), -bounds))

    # ------------------------------------------------------------------
    # Phase 3: verification in descending bound order, TA-style stop.
    # ------------------------------------------------------------------
    exact_shortcut = rest_bound == 0.0 and (not is_avg or sizes.is_exact)
    shortcut_values = None
    if exact_shortcut:
        shortcut_values = backward_shortcut_values(
            np,
            scores_arr,
            partial,
            self_distributed,
            sizes,
            include_self=include_self,
            is_avg=is_avg,
        )
    if (
        ball_cache is not None
        and ball_cache.csr is csr
        and ball_cache.hops == spec.hops
        and ball_cache.include_self == include_self
    ):
        # Session-shared cache: charge this query's counter per call rather
        # than mutating the cache's own counter, so concurrent queries
        # sharing the cache never charge each other's stats.
        verify_cache = ball_cache
    else:
        verify_cache = CSRBallCache(
            csr, spec.hops, include_self=include_self, counter=counter
        )
    acc = TopKAccumulator(spec.k)
    offered = 0
    for v in candidate_order:
        check_deadline()
        bound = float(bounds[v])
        if acc.is_full and bound <= acc.threshold:
            stats.early_terminated = True
            break
        node = int(v)
        if exact_shortcut:
            value = float(shortcut_values[v])
        else:
            ball = verify_cache.ball(node, counter)
            # cumsum, not sum: sequential left-to-right accumulation over
            # the sorted members, the same float result the Python loop
            # gets (np.sum's pairwise order would differ in the last ulp).
            total = float(scores_arr[ball].cumsum()[-1]) if ball.size else 0.0
            value = (total / ball.size if ball.size else 0.0) if is_avg else total
            stats.nodes_evaluated += 1
            stats.candidates_verified += 1
        acc.offer(node, value)
        offered += 1
    stats.pruned_nodes = n - offered
    stats.elapsed_sec = time.perf_counter() - start
    stats.edges_scanned = counter.edges_scanned
    stats.nodes_visited = counter.nodes_visited
    stats.balls_expanded = counter.balls_expanded
    stats.extra["gamma"] = effective_gamma
    stats.extra["distributed_nodes"] = float(distributed.size)
    stats.extra["rest_bound"] = rest_bound
    stats.extra["exact_shortcut"] = float(exact_shortcut)
    return TopKResult(entries=acc.entries(), stats=stats)


# ---------------------------------------------------------------------------
# Base + weighted kernels
# ---------------------------------------------------------------------------
def segment_starts(np, owners):
    """``(present_owners, start_positions)`` of a *sorted* owner array.

    The batched ball kernels emit owners sorted ascending, so the segment
    boundaries are a single O(m) inequality scan — no ``np.unique``
    (which would re-sort the array it is called on).
    """
    keep = np.empty(owners.size, dtype=bool)
    keep[0] = True
    np.not_equal(owners[1:], owners[:-1], out=keep[1:])
    starts = np.flatnonzero(keep)
    return owners[starts], starts


def aggregate_ball_segments(np, kind: AggregateKind, owners, member_scores, count: int):
    """Per-owner aggregate of sorted ``(owner, score)`` pairs, one array op.

    ``owners`` must be sorted ascending (the order every batched ball
    kernel emits).  SUM/AVG reduce with ``np.bincount``; MAX/MIN reduce
    each owner's contiguous segment with ``ufunc.reduceat``.  Owners with
    no pairs — empty balls, possible only with ``include_self=False`` on
    isolated nodes or ``hops=0`` — get 0.0, the library's empty-ball value
    for every aggregate (see :func:`repro.aggregates.functions.finalize_sum`
    and ``evaluate_scores``).  COUNT callers fold scores to the 0/1
    indicator first and pass SUM.
    """
    if kind is AggregateKind.MAX or kind is AggregateKind.MIN:
        values = np.zeros(count, dtype=np.float64)
        if member_scores.size:
            present, starts = segment_starts(np, owners)
            ufunc = np.maximum if kind is AggregateKind.MAX else np.minimum
            values[present] = ufunc.reduceat(member_scores, starts)
        return values
    sums = np.bincount(owners, weights=member_scores, minlength=count)
    if kind is AggregateKind.AVG:
        sizes = np.bincount(owners, minlength=count)
        return np.divide(
            sums, sizes, out=np.zeros(count, dtype=np.float64), where=sizes > 0
        )
    return sums


def _offer_block(np, acc: TopKAccumulator, centers, values) -> None:
    """Offer a block's exact values in center order, threshold-gated.

    Once the accumulator is full only strictly-greater values can enter
    (Algorithm 1's ``F(u) > topklbound``), so offers at or below the
    block-start threshold are pre-filtered in one vectorized compare — the
    Python-loop offers then touch only plausible entries.  Skipped offers
    would have been rejected anyway (the threshold never decreases), so
    entries and tie behavior are identical to offering everything.
    """
    if acc.is_full:
        live = np.nonzero(values > acc.threshold)[0]
    else:
        live = np.arange(values.size)
    offer = acc.offer
    for j in live.tolist():
        offer(int(centers[j]), float(values[j]))


def base_topk_numpy(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    node_order: Optional[Sequence[int]] = None,
    csr: Optional[CSRGraph] = None,
    block_size: Optional[int] = None,
) -> TopKResult:
    """Base (exhaustive forward processing) over CSR flat arrays.

    Mirrors :func:`repro.core.base.base_topk` argument-for-argument and
    supports *every* aggregate kind: SUM/AVG/COUNT reduce ball blocks with
    ``np.bincount``, MAX/MIN with ``ufunc.reduceat`` over the sorted
    ``(owner, member)`` segments.  Candidate blocks are expanded with one
    multi-source BFS each; the accumulator sees exactly the values the
    Python loop would offer, in the same order.
    """
    import numpy as np

    kind = spec.aggregate
    scores_arr = np.asarray(scores, dtype=np.float64)
    eff_kind = kind
    if kind is AggregateKind.COUNT:
        scores_arr = np.where(scores_arr > 0.0, 1.0, 0.0)
        eff_kind = AggregateKind.SUM

    start = time.perf_counter()
    if csr is None:
        csr = to_csr(graph, use_numpy=True)
    n = graph.num_nodes
    order = np.asarray(
        node_order if node_order is not None else graph.nodes(), dtype=np.int64
    )
    block_size = resolve_block_size(block_size, n, int(csr.num_arcs))
    include_self = spec.include_self
    acc = TopKAccumulator(spec.k)
    edges_scanned = 0
    nodes_visited = 0
    for lo in range(0, int(order.size), block_size):
        check_deadline()
        centers = order[lo : lo + block_size]
        owners, members, edges = batched_hop_balls(
            csr, centers, spec.hops, include_self=include_self
        )
        count = int(centers.size)
        edges_scanned += edges
        nodes_visited += int(members.size) + (0 if include_self else count)
        values = aggregate_ball_segments(
            np, eff_kind, owners, scores_arr[members], count
        )
        _offer_block(np, acc, centers, values)
    stats = QueryStats(
        algorithm="base",
        aggregate=kind.value,
        backend="numpy",
        hops=spec.hops,
        k=spec.k,
        elapsed_sec=time.perf_counter() - start,
        nodes_evaluated=int(order.size),
        edges_scanned=edges_scanned,
        nodes_visited=nodes_visited,
        balls_expanded=int(order.size),
    )
    stats.extra["block_size"] = float(block_size)
    return TopKResult(entries=acc.entries(), stats=stats)


def _check_weighted_spec(spec: QuerySpec) -> None:
    if spec.aggregate is not AggregateKind.SUM:
        raise InvalidParameterError(
            "weighted aggregation is defined for SUM (footnote 1), not "
            f"{spec.aggregate.value}"
        )


def weighted_base_topk_numpy(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    profile=None,
    *,
    csr: Optional[CSRGraph] = None,
    block_size: Optional[int] = None,
) -> TopKResult:
    """Naive weighted scan over CSR flat arrays.

    Mirrors :func:`repro.core.weighted.weighted_base_topk`: each candidate
    block expands with one distance-labeled multi-source BFS
    (:func:`~repro.graph.csr.batched_hop_balls_with_distances`) and the
    weighted sums reduce as ``bincount(owners, w[dist] * f[member])``.
    """
    import numpy as np

    from repro.aggregates.weighted import inverse_distance, precompute_weights

    _check_weighted_spec(spec)
    if profile is None:
        profile = inverse_distance
    weights = np.asarray(
        precompute_weights(profile, spec.hops), dtype=np.float64
    )
    scores_arr = np.asarray(scores, dtype=np.float64)

    start = time.perf_counter()
    if csr is None:
        csr = to_csr(graph, use_numpy=True)
    n = graph.num_nodes
    block_size = resolve_block_size(block_size, n, int(csr.num_arcs))
    include_self = spec.include_self
    acc = TopKAccumulator(spec.k)
    edges_scanned = 0
    nodes_visited = 0
    for lo in range(0, n, block_size):
        check_deadline()
        centers = np.arange(lo, min(lo + block_size, n), dtype=np.int64)
        owners, members, dists, edges = batched_hop_balls_with_distances(
            csr, centers, spec.hops, include_self=include_self
        )
        count = int(centers.size)
        edges_scanned += edges
        nodes_visited += int(members.size) + (0 if include_self else count)
        values = np.bincount(
            owners, weights=weights[dists] * scores_arr[members], minlength=count
        )
        _offer_block(np, acc, centers, values)
    stats = QueryStats(
        algorithm="weighted-base",
        aggregate="sum",
        backend="numpy",
        hops=spec.hops,
        k=spec.k,
        elapsed_sec=time.perf_counter() - start,
        nodes_evaluated=n,
        edges_scanned=edges_scanned,
        nodes_visited=nodes_visited,
        balls_expanded=n,
    )
    stats.extra["block_size"] = float(block_size)
    return TopKResult(entries=acc.entries(), stats=stats)


def _verify_weighted_chunk(
    np,
    csr: CSRGraph,
    chunk,
    hops: int,
    include_self: bool,
    weights,
    scores_arr,
    shared_cache: Optional[CSRDistanceBallCache],
    counter: TraversalCounter,
):
    """Exact weighted sums for one verification block.

    Session-cached candidates are summed from their cached ``(members,
    dists)`` slices; the rest are expanded with one batched distance BFS,
    reduced with ``bincount``, and deposited back into the shared cache so
    the next query's verification gets them for free.  Both paths add
    contributions sequentially over the sorted members, so a warm hit
    returns the bit-identical value of its cold miss.  Only actual
    expansions are charged to ``counter`` (the cache-hits-are-free
    convention of :class:`~repro.graph.csr.CSRBallCache`).
    """
    count = int(chunk.size)
    values = np.zeros(count, dtype=np.float64)
    if shared_cache is not None and len(shared_cache):
        miss_mask = np.ones(count, dtype=bool)
        for j, node in enumerate(chunk.tolist()):
            entry = shared_cache.get(node)
            if entry is None:
                continue
            miss_mask[j] = False
            members, dists = entry
            if members.size:
                contrib = weights[dists] * scores_arr[members]
                values[j] = contrib.cumsum()[-1]
        miss_positions = np.nonzero(miss_mask)[0]
        miss_nodes = chunk[miss_positions]
    else:
        miss_positions = None
        miss_nodes = chunk
    if miss_nodes.size:
        owners, members, dists, edges = batched_hop_balls_with_distances(
            csr, miss_nodes, hops, include_self=include_self
        )
        counter.edges_scanned += edges
        counter.nodes_visited += int(members.size) + (
            0 if include_self else int(miss_nodes.size)
        )
        counter.balls_expanded += int(miss_nodes.size)
        sums = np.bincount(
            owners,
            weights=weights[dists] * scores_arr[members],
            minlength=int(miss_nodes.size),
        )
        if miss_positions is None:
            values = sums
        else:
            values[miss_positions] = sums
        if shared_cache is not None:
            ids = np.arange(int(miss_nodes.size))
            lo = np.searchsorted(owners, ids, side="left")
            hi = np.searchsorted(owners, ids, side="right")
            for j, node in enumerate(miss_nodes.tolist()):
                shared_cache.put(node, members[lo[j] : hi[j]], dists[lo[j] : hi[j]])
    return values


def weighted_backward_topk_numpy(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    profile=None,
    *,
    gamma: Union[float, str] = "auto",
    distribution_fraction: float = 0.1,
    sizes: Optional[NeighborhoodSizeIndex] = None,
    csr: Optional[CSRGraph] = None,
    rev_csr: Optional[CSRGraph] = None,
    dist_ball_cache: Optional[CSRDistanceBallCache] = None,
) -> TopKResult:
    """LONA-Backward with distance weights, over CSR flat arrays.

    Mirrors :func:`repro.core.weighted.weighted_backward_topk` (same
    adapted Eq. 3 soundness argument): the distribution phase deposits
    ``w(d) * f(u)`` with distance-labeled batched expansions, the bound of
    every node is one array expression, and verification expands distance
    balls through ``dist_ball_cache`` when a session supplies one (matched
    on the ``(csr, hops, include_self)`` triple, like the unweighted
    backward's ``ball_cache``).
    """
    import numpy as np

    from repro.aggregates.weighted import inverse_distance, precompute_weights
    from repro.core.backward import resolve_gamma

    _check_weighted_spec(spec)
    if profile is None:
        profile = inverse_distance
    weights = np.asarray(
        precompute_weights(profile, spec.hops), dtype=np.float64
    )
    w_max = float(weights[1:].max()) if weights.size > 1 else 0.0
    scores_arr = np.asarray(scores, dtype=np.float64)

    build_sec = 0.0
    if sizes is None:
        build_start = time.perf_counter()
        sizes = NeighborhoodSizeIndex.estimated(
            graph, spec.hops, include_self=spec.include_self
        )
        build_sec = time.perf_counter() - build_start

    start = time.perf_counter()
    counter = TraversalCounter()
    n = graph.num_nodes
    include_self = spec.include_self
    stats = QueryStats(
        algorithm="weighted-backward",
        aggregate="sum",
        backend="numpy",
        hops=spec.hops,
        k=spec.k,
        index_build_sec=build_sec,
    )
    if csr is None:
        csr = to_csr(graph, use_numpy=True)

    # Phase 1: weighted partial distribution, descending score order.
    nonzero_ids = np.nonzero(scores_arr > 0.0)[0]
    nonzero_scores = scores_arr[nonzero_ids]
    desc = np.lexsort((nonzero_ids, -nonzero_scores))
    ordered_ids = nonzero_ids[desc]
    ordered_scores = nonzero_scores[desc]
    effective_gamma = resolve_gamma(
        gamma, ordered_scores.tolist(), distribution_fraction=distribution_fraction
    )
    cut = int(np.searchsorted(-ordered_scores, -effective_gamma, side="right"))
    distributed = ordered_ids[:cut]
    rest_bound = float(ordered_scores[cut]) if cut < ordered_scores.size else 0.0

    if not graph.directed:
        dist_csr = csr
    elif rev_csr is not None:
        dist_csr = rev_csr
    else:
        dist_csr = to_csr(graph.reversed(), use_numpy=True)
    partial = np.zeros(n, dtype=np.float64)
    covered = np.zeros(n, dtype=np.int64)
    self_distributed = np.zeros(n, dtype=bool)
    pushes = 0
    block_size = resolve_block_size(None, n, int(dist_csr.num_arcs))
    for lo in range(0, int(distributed.size), block_size):
        check_deadline()
        block = distributed[lo : lo + block_size]
        owners, members, dists, edges = batched_hop_balls_with_distances(
            dist_csr, block, spec.hops, include_self=include_self
        )
        counter.edges_scanned += edges
        counter.nodes_visited += int(members.size) + (
            0 if include_self else int(block.size)
        )
        counter.balls_expanded += int(block.size)
        ball_sizes = np.bincount(owners, minlength=block.size)
        partial += np.bincount(
            members,
            weights=np.repeat(scores_arr[block], ball_sizes) * weights[dists],
            minlength=n,
        )
        covered += np.bincount(members, minlength=n)
        pushes += int(members.size)
    stats.distribution_pushes = pushes
    if include_self:
        self_distributed[distributed] = True

    # Phase 2: adapted Eq. 3 bound for every node, one array expression.
    upper = np.asarray(sizes.upper_values(), dtype=np.int64)
    self_known = self_distributed | (not include_self)
    unknown = np.where(self_known, upper - covered, upper - covered - 1)
    extra = np.where(self_known, 0.0, weights[0] * scores_arr)
    bounds = partial + (w_max * rest_bound) * np.maximum(unknown, 0) + extra
    stats.bound_evaluations = n
    candidate_order = np.lexsort((np.arange(n), -bounds))

    # Phase 3: TA-style verification in descending bound order, *blocked*:
    # candidates are expanded a block at a time with the batched distance
    # kernel instead of one numpy-flavored BFS per candidate (whose call
    # overhead would exceed the python loop it replaces).  The block is cut
    # at the block-start threshold; a candidate overtaken by the threshold
    # mid-block is over-verified but its offer is rejected (strictly-greater
    # acceptance), so entries are identical — only work counters differ,
    # exactly like the forward kernel's block over-evaluation.
    exact_shortcut = rest_bound == 0.0
    shared_cache = (
        dist_ball_cache
        if (
            dist_ball_cache is not None
            and dist_ball_cache.csr is csr
            and dist_ball_cache.hops == spec.hops
            and dist_ball_cache.include_self == include_self
        )
        else None
    )
    acc = TopKAccumulator(spec.k)
    offered = 0
    position = 0
    block_size = resolve_block_size(None, n, int(csr.num_arcs))
    while position < n:
        check_deadline()
        chunk = candidate_order[position : position + block_size]
        position += int(chunk.size)
        if acc.is_full:
            live = bounds[chunk] > acc.threshold
            if not live.all():
                # Bounds are non-increasing along candidate_order, so the
                # survivors are a prefix; everything after is pruned.
                chunk = chunk[: int(np.argmin(live))]
                stats.early_terminated = True
        if chunk.size == 0:
            break
        if exact_shortcut:
            values = partial[chunk] + np.where(
                self_distributed[chunk] | (not include_self),
                0.0,
                weights[0] * scores_arr[chunk],
            )
        else:
            values = _verify_weighted_chunk(
                np, csr, chunk, spec.hops, include_self, weights, scores_arr,
                shared_cache, counter,
            )
            stats.nodes_evaluated += int(chunk.size)
            stats.candidates_verified += int(chunk.size)
        offer = acc.offer
        for node, value in zip(chunk.tolist(), values.tolist()):
            offer(node, value)
        offered += int(chunk.size)
        if stats.early_terminated:
            break

    stats.pruned_nodes = n - offered
    stats.elapsed_sec = time.perf_counter() - start
    stats.edges_scanned = counter.edges_scanned
    stats.nodes_visited = counter.nodes_visited
    stats.balls_expanded = counter.balls_expanded
    stats.extra["gamma"] = effective_gamma
    stats.extra["distributed_nodes"] = float(distributed.size)
    stats.extra["rest_bound"] = rest_bound
    stats.extra["exact_shortcut"] = float(exact_shortcut)
    return TopKResult(entries=acc.entries(), stats=stats)
