"""The paper's experimental relevance function: the ``fr`` + ``fw`` mixture.

Sec. V: *"We designed a mixture function to mimic the setting of relevance
functions in real-life applications.  Our relevance function consists of two
components: random assignment function fr whose value has an exponential
distribution, and a random walk procedure fw."*

:class:`MixtureRelevance` combines the two with a mixing weight::

    f(u) = clamp( alpha * fr(u) + (1 - alpha) * fw(u) )

where ``fw`` is the random-walk diffusion of ``fr`` itself — the blacked
nodes act as walk seeds, giving the spatially-correlated score field that
real recommendation workloads exhibit.  Blacked nodes always keep score 1.0
so the blacking ratio stays interpretable after mixing.

For the binary experiments (e.g. LONA-Backward's zero-skipping case) use
``binary=True``: the exponential tail and the walk are dropped and the result
is exactly the paper's 0/1 workload.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RelevanceError
from repro.graph.graph import Graph
from repro.relevance.base import ScoreVector
from repro.relevance.random_assignment import (
    BinaryRelevance,
    RandomAssignmentRelevance,
)
from repro.relevance.random_walk import walk_diffusion

__all__ = ["MixtureRelevance"]


class MixtureRelevance:
    """The experimental mixture ``alpha * fr + (1 - alpha) * fw``.

    Parameters
    ----------
    blacking_ratio:
        The paper's ``r``: fraction of nodes assigned exactly 1.0.
    alpha:
        Weight of the raw assignment vs. its random-walk smoothing.
    binary:
        When True, produce the pure 0/1 vector (``fr`` alone, no tail, no
        walk); this is the variant whose zeros LONA-Backward skips.
    rate:
        Exponential rate for the non-blacked tail of ``fr``.
    zero_fraction:
        Fraction of non-blacked nodes forced to 0 (sparsifies the tail).
    walk_restart / walk_iterations:
        Random-walk smoothing parameters (see
        :func:`repro.relevance.random_walk.walk_diffusion`).
    truncate_below:
        Post-mix floor: final scores strictly below this value are snapped
        to 0.  Real relevance signals are sparse (most users have *no*
        interest in a given game console); the walk, by contrast, leaks tiny
        positive mass everywhere.  Truncation restores the sparsity that
        LONA-Backward's zero-skipping is designed for while leaving the
        meaningful scores untouched.
    seed:
        Master seed; the same seed reproduces the same scores exactly.
    """

    def __init__(
        self,
        blacking_ratio: float,
        *,
        alpha: float = 0.7,
        binary: bool = False,
        rate: float = 8.0,
        zero_fraction: float = 0.6,
        walk_restart: float = 0.5,
        walk_iterations: int = 2,
        truncate_below: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise RelevanceError(f"alpha must be in [0, 1], got {alpha}")
        if not 0.0 <= truncate_below <= 1.0:
            raise RelevanceError(
                f"truncate_below must be in [0, 1], got {truncate_below}"
            )
        self.blacking_ratio = blacking_ratio
        self.alpha = alpha
        self.binary = binary
        self.rate = rate
        self.zero_fraction = zero_fraction
        self.walk_restart = walk_restart
        self.walk_iterations = walk_iterations
        self.truncate_below = truncate_below
        self.seed = seed

    def scores(self, graph: Graph) -> ScoreVector:
        """Materialize the mixture scores for ``graph``."""
        if self.binary:
            return BinaryRelevance(self.blacking_ratio, seed=self.seed).scores(graph)
        assignment = RandomAssignmentRelevance(
            self.blacking_ratio,
            rate=self.rate,
            zero_fraction=self.zero_fraction,
            seed=self.seed,
        ).scores(graph)
        raw = assignment.values()
        walked = walk_diffusion(
            graph,
            raw,
            restart_prob=self.walk_restart,
            iterations=self.walk_iterations,
        )
        mixed = [
            min(1.0, max(0.0, self.alpha * fr + (1.0 - self.alpha) * fw))
            for fr, fw in zip(raw, walked)
        ]
        # Blacked nodes keep their full score so `blacking_ratio` keeps its
        # meaning ("percentage of nodes assigned 1") after mixing.
        for u, fr in enumerate(raw):
            if fr == 1.0:
                mixed[u] = 1.0
        if self.truncate_below > 0.0:
            mixed = [v if v >= self.truncate_below else 0.0 for v in mixed]
        return ScoreVector(mixed)
