"""The paper's random-walk component ``fw`` (Sec. V).

The experimental mixture pairs the random assignment ``fr`` with "a random
walk procedure fw".  The paper gives no further specification, so we
implement the standard choice for score smoothing on networks: truncated
random walk with restart (personalized-PageRank style power iteration),
seeded by an input score vector.  Scores diffuse along edges, so a node next
to several high-score nodes acquires a positive score even if its own
assignment was 0 — precisely the spatial correlation ("the aggregate value
for the neighboring nodes should be similar in most cases", Sec. I) that
makes LONA's differential pruning effective.

The walk is deterministic (power iteration, not sampled trajectories), so
experiments reproduce exactly without a seed.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import RelevanceError
from repro.graph.graph import Graph
from repro.relevance.base import ScoreVector

__all__ = ["RandomWalkRelevance", "walk_diffusion"]


def walk_diffusion(
    graph: Graph,
    seed_values: Sequence[float],
    *,
    restart_prob: float = 0.5,
    iterations: int = 3,
) -> List[float]:
    """Power-iterate ``x <- restart * seed + (1-restart) * P^T x``.

    ``P`` is the row-stochastic transition matrix of ``graph`` (uniform over
    out-edges; dangling nodes keep their mass).  Returns the raw diffusion
    values, normalized to [0, 1] by the maximum (0-vector stays 0).
    """
    if not 0.0 < restart_prob <= 1.0:
        raise RelevanceError(
            f"restart_prob must be in (0, 1], got {restart_prob}"
        )
    if iterations < 0:
        raise RelevanceError(f"iterations must be >= 0, got {iterations}")
    n = graph.num_nodes
    if len(seed_values) != n:
        raise RelevanceError(
            f"seed vector has {len(seed_values)} entries for {n} nodes"
        )
    x = [float(v) for v in seed_values]
    for _ in range(iterations):
        pushed = [0.0] * n
        for u in range(n):
            mass = x[u]
            if mass == 0.0:
                continue
            nbrs = graph.neighbors(u)
            if not nbrs:
                pushed[u] += mass  # dangling: keep the mass in place
                continue
            share = mass / len(nbrs)
            for v in nbrs:
                pushed[v] += share
        x = [
            restart_prob * s + (1.0 - restart_prob) * p
            for s, p in zip(seed_values, pushed)
        ]
    peak = max(x, default=0.0)
    if peak > 0.0:
        x = [v / peak for v in x]
    return x


class RandomWalkRelevance:
    """``fw``: diffuse a base relevance function over the network.

    Parameters
    ----------
    base:
        Any object with a ``scores(graph) -> ScoreVector`` method supplying
        the walk's restart/seed vector.
    restart_prob:
        Probability mass retained at the seed each iteration (0.5 keeps the
        original signal dominant, matching the "smoothing" role).
    iterations:
        Number of power-iteration steps; each step spreads mass one hop.
    """

    def __init__(
        self,
        base: object,
        *,
        restart_prob: float = 0.5,
        iterations: int = 3,
    ) -> None:
        if not hasattr(base, "scores"):
            raise RelevanceError(
                "base must provide scores(graph); got "
                f"{type(base).__name__}"
            )
        self.base = base
        self.restart_prob = restart_prob
        self.iterations = iterations

    def scores(self, graph: Graph) -> ScoreVector:
        """Diffused scores for ``graph``."""
        seed_vector: ScoreVector = self.base.scores(graph)  # type: ignore[attr-defined]
        seed_vector.check_graph(graph)
        diffused = walk_diffusion(
            graph,
            seed_vector.values(),
            restart_prob=self.restart_prob,
            iterations=self.iterations,
        )
        return ScoreVector(diffused)
