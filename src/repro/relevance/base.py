"""Relevance-function core types.

Definition 1 of the paper: a relevance function ``f : V -> [0, 1]`` assigns
each node a query-specific score; 0 means irrelevant, 1 fully relevant.  The
library separates the *function* (how scores are produced — P1 in the paper's
problem decomposition) from the *score vector* (the materialized per-node
values every aggregation algorithm consumes).

:class:`ScoreVector` is the materialized form.  It validates the [0, 1]
range once at construction, after which algorithms can trust it, and it
precomputes the two things LONA-Backward needs: the set of non-zero nodes and
their descending-score order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Protocol, Sequence, Tuple

from repro.errors import RelevanceError
from repro.graph.graph import Graph

__all__ = ["ScoreVector", "RelevanceFunction", "uniform_scores", "indicator_scores"]


class ScoreVector:
    """Immutable per-node relevance scores in ``[0, 1]``.

    Supports ``scores[node]``, ``len``, and iteration.  Construction
    validates every value; all downstream bound math relies on the
    ``0 <= f(v) <= 1`` invariant (the "all unknown scores are at most 1"
    arguments behind Eq. 1, and "at most the last distributed score" behind
    Eq. 3).
    """

    __slots__ = ("_values", "_nonzero", "_is_binary")

    def __init__(self, values: Iterable[float]) -> None:
        vals = [float(v) for v in values]
        for i, v in enumerate(vals):
            if not 0.0 <= v <= 1.0:
                raise RelevanceError(
                    f"relevance score out of range at node {i}: {v}"
                )
        self._values: List[float] = vals
        self._nonzero: Tuple[int, ...] = tuple(
            i for i, v in enumerate(vals) if v > 0.0
        )
        self._is_binary = all(v in (0.0, 1.0) for v in vals)

    def __getitem__(self, node: int) -> float:
        return self._values[node]

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ScoreVector n={len(self._values)} nonzero={len(self._nonzero)}"
            f"{' binary' if self._is_binary else ''}>"
        )

    @property
    def is_binary(self) -> bool:
        """True when every score is exactly 0 or 1."""
        return self._is_binary

    @property
    def nonzero_nodes(self) -> Tuple[int, ...]:
        """Nodes with strictly positive score, ascending id order."""
        return self._nonzero

    @property
    def density(self) -> float:
        """Fraction of nodes with non-zero score."""
        if not self._values:
            return 0.0
        return len(self._nonzero) / len(self._values)

    def total(self) -> float:
        """Sum of all scores."""
        return sum(self._values)

    def descending_nonzero(self) -> List[int]:
        """Non-zero nodes sorted by score descending (ties by id).

        This is exactly the distribution order LONA-Backward requires:
        "we distribute nodes according to their scores in a descending
        order" (Sec. IV).
        """
        return sorted(self._nonzero, key=lambda u: (-self._values[u], u))

    def values(self) -> List[float]:
        """A fresh list copy of the raw values."""
        return list(self._values)

    def check_graph(self, graph: Graph) -> None:
        """Raise unless this vector covers exactly ``graph``'s nodes."""
        if len(self._values) != graph.num_nodes:
            raise RelevanceError(
                f"score vector has {len(self._values)} entries, "
                f"graph has {graph.num_nodes} nodes"
            )


class RelevanceFunction(Protocol):
    """Anything that materializes a :class:`ScoreVector` for a graph.

    Implementations must be deterministic given their constructor arguments
    (all randomness comes from an explicit seed) so experiments are exactly
    reproducible.
    """

    def scores(self, graph: Graph) -> ScoreVector:
        """Produce the per-node scores for ``graph``."""
        ...  # pragma: no cover - protocol


def uniform_scores(graph: Graph, value: float) -> ScoreVector:
    """Every node gets ``value`` (useful for COUNT-style queries and tests)."""
    if not 0.0 <= value <= 1.0:
        raise RelevanceError(f"value must be in [0, 1], got {value}")
    return ScoreVector([value] * graph.num_nodes)


def indicator_scores(graph: Graph, relevant: Sequence[int]) -> ScoreVector:
    """1.0 on ``relevant`` nodes, 0.0 elsewhere (the paper's 1/0 case)."""
    values = [0.0] * graph.num_nodes
    for node in relevant:
        if not (0 <= node < graph.num_nodes):
            raise RelevanceError(f"relevant node {node} not in graph")
        values[node] = 1.0
    return ScoreVector(values)
