"""Relevance functions: the ``f : V -> [0, 1]`` layer (paper P1).

Public surface:

* :class:`ScoreVector` — validated, materialized per-node scores.
* :class:`MixtureRelevance` — the paper's experimental ``fr + fw`` mixture.
* :class:`BinaryRelevance` / :class:`RandomAssignmentRelevance` — the raw
  blacking-ratio assignment (binary and exponential-tail variants).
* :class:`RandomWalkRelevance` — diffusion smoothing of any base function.
* :class:`IterativeClassifierRelevance` — collective-classification scores.
* :func:`uniform_scores` / :func:`indicator_scores` — constant and seed-set
  score vectors for COUNT-style queries.
"""

from repro.relevance.base import (
    RelevanceFunction,
    ScoreVector,
    indicator_scores,
    uniform_scores,
)
from repro.relevance.classifier import IterativeClassifierRelevance
from repro.relevance.mixture import MixtureRelevance
from repro.relevance.random_assignment import (
    BinaryRelevance,
    RandomAssignmentRelevance,
)
from repro.relevance.random_walk import RandomWalkRelevance, walk_diffusion

__all__ = [
    "ScoreVector",
    "RelevanceFunction",
    "uniform_scores",
    "indicator_scores",
    "MixtureRelevance",
    "BinaryRelevance",
    "RandomAssignmentRelevance",
    "RandomWalkRelevance",
    "walk_diffusion",
    "IterativeClassifierRelevance",
]
