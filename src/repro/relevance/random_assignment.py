"""The paper's random-assignment component ``fr`` (Sec. V, Relevance
Functions).

Quoting the experimental setup: *"fr assigns a score whose range is between 0
and 1 [and] has an exponential distribution.  It has a blacking ratio
parameter r, which controls the percentage of nodes to be assigned '1'."*

Concretely, with blacking ratio ``r``:

* a fraction ``r`` of nodes (chosen uniformly at random) are "blacked":
  assigned score exactly 1.0;
* the remainder draw from a truncated exponential on [0, 1) (most mass near
  0), scaled by ``rate``; or exactly 0.0 in the *binary* variant, which is
  the 0/1 case LONA-Backward's zero-skipping exploits.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.errors import RelevanceError
from repro.graph.graph import Graph
from repro.relevance.base import ScoreVector

__all__ = ["RandomAssignmentRelevance", "BinaryRelevance"]


def _check_ratio(blacking_ratio: float) -> None:
    if not 0.0 <= blacking_ratio <= 1.0:
        raise RelevanceError(
            f"blacking_ratio must be in [0, 1], got {blacking_ratio}"
        )


class RandomAssignmentRelevance:
    """``fr``: blacking ratio + truncated-exponential tail.

    Parameters
    ----------
    blacking_ratio:
        Fraction ``r`` of nodes assigned exactly 1.0.
    rate:
        Rate of the exponential for non-blacked nodes; larger means scores
        concentrate nearer 0.  The draw is inverse-CDF of an exponential
        truncated to [0, 1), so values stay in range without clipping bias.
    zero_fraction:
        Fraction of the *non-blacked* nodes forced to exactly 0.0 (sparse
        workloads; the paper's intrusion experiments are effectively sparse).
    seed:
        Seed for the private RNG; identical seeds give identical vectors.
    """

    def __init__(
        self,
        blacking_ratio: float,
        *,
        rate: float = 8.0,
        zero_fraction: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        _check_ratio(blacking_ratio)
        if rate <= 0:
            raise RelevanceError(f"rate must be > 0, got {rate}")
        if not 0.0 <= zero_fraction <= 1.0:
            raise RelevanceError(
                f"zero_fraction must be in [0, 1], got {zero_fraction}"
            )
        self.blacking_ratio = blacking_ratio
        self.rate = rate
        self.zero_fraction = zero_fraction
        self.seed = seed

    def scores(self, graph: Graph) -> ScoreVector:
        """Materialize the score vector for ``graph``."""
        rng = random.Random(self.seed)
        n = graph.num_nodes
        values = [0.0] * n
        num_black = round(self.blacking_ratio * n)
        blacked = set(rng.sample(range(n), num_black)) if num_black else set()
        # Normalizing constant of the exponential truncated to [0, 1).
        z = 1.0 - math.exp(-self.rate)
        for u in range(n):
            if u in blacked:
                values[u] = 1.0
            elif self.zero_fraction and rng.random() < self.zero_fraction:
                values[u] = 0.0
            else:
                # Inverse CDF: F(x) = (1 - e^{-rate x}) / z on [0, 1).
                values[u] = -math.log(1.0 - z * rng.random()) / self.rate
        return ScoreVector(values)


class BinaryRelevance:
    """Pure 0/1 relevance: fraction ``r`` of nodes are 1, the rest 0.

    This is the "relevance function is 0-1 binary" special case in Sec. IV
    under which backward distribution "can skip nodes with 0 score".
    """

    def __init__(self, blacking_ratio: float, *, seed: Optional[int] = None) -> None:
        _check_ratio(blacking_ratio)
        self.blacking_ratio = blacking_ratio
        self.seed = seed

    def scores(self, graph: Graph) -> ScoreVector:
        """Materialize the 0/1 score vector for ``graph``."""
        rng = random.Random(self.seed)
        n = graph.num_nodes
        values = [0.0] * n
        num_black = round(self.blacking_ratio * n)
        for u in rng.sample(range(n), num_black) if num_black else ():
            values[u] = 1.0
        return ScoreVector(values)
