"""Iterative collective classification as a relevance function.

The paper's P1 allows ``f`` to be "a classification function, e.g., how
likely a user is a database expert", citing Neville & Jensen's iterative
classification [13].  This module supplies that flavor of relevance function
so examples and tests can exercise non-synthetic score fields:

:class:`IterativeClassifierRelevance` starts from labeled seed nodes
(positive / negative) and runs iterative classification: each round, every
unlabeled node's class probability is re-estimated from its own prior and the
current probabilities of its neighbors (a logistic link over the relational
feature "weighted fraction of positive neighbors").  Probabilities converge
to a smooth field in [0, 1] — structurally the same kind of relevance signal
a learned classifier would emit, without requiring training data.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable

from repro.errors import RelevanceError
from repro.graph.graph import Graph
from repro.relevance.base import ScoreVector

__all__ = ["IterativeClassifierRelevance"]


def _logistic(x: float) -> float:
    # Guard exp overflow for extreme inputs.
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


class IterativeClassifierRelevance:
    """Relational iterative classification (ICA) relevance scores.

    Parameters
    ----------
    positive / negative:
        Seed node sets with known labels; they are clamped to 1.0 / 0.0 for
        the whole run (and in the output).
    prior:
        Class prior used as every unlabeled node's starting probability.
    weight:
        Slope of the logistic link on the relational feature.  Higher values
        sharpen decisions toward the neighborhood majority.
    iterations:
        Number of synchronous update rounds.
    """

    def __init__(
        self,
        positive: Iterable[int],
        negative: Iterable[int] = (),
        *,
        prior: float = 0.1,
        weight: float = 4.0,
        iterations: int = 5,
    ) -> None:
        if not 0.0 <= prior <= 1.0:
            raise RelevanceError(f"prior must be in [0, 1], got {prior}")
        if iterations < 0:
            raise RelevanceError(f"iterations must be >= 0, got {iterations}")
        self.positive = frozenset(positive)
        self.negative = frozenset(negative)
        overlap = self.positive & self.negative
        if overlap:
            raise RelevanceError(
                f"nodes {sorted(overlap)} are both positive and negative seeds"
            )
        self.prior = prior
        self.weight = weight
        self.iterations = iterations

    def scores(self, graph: Graph) -> ScoreVector:
        """Run ICA on ``graph`` and return the converged probabilities."""
        n = graph.num_nodes
        for node in self.positive | self.negative:
            if not (0 <= node < n):
                raise RelevanceError(f"seed node {node} not in graph")
        prob: Dict[int, float] = {}
        current = [self.prior] * n
        for u in self.positive:
            current[u] = 1.0
        for u in self.negative:
            current[u] = 0.0
        # The logit offset centers the link so an all-prior neighborhood maps
        # back to (approximately) the prior.
        offset = (
            math.log(self.prior / (1.0 - self.prior))
            if 0.0 < self.prior < 1.0
            else 0.0
        )
        for _ in range(self.iterations):
            nxt = list(current)
            for u in range(n):
                if u in self.positive or u in self.negative:
                    continue
                nbrs = graph.neighbors(u)
                if not nbrs:
                    continue
                positive_mass = sum(current[v] for v in nbrs)
                fraction = positive_mass / len(nbrs)
                nxt[u] = _logistic(
                    offset + self.weight * (fraction - self.prior)
                )
            current = nxt
        prob.clear()
        return ScoreVector(current)
