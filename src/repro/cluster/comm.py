"""Analytic communication forecasts for cluster plans.

The cluster engine *measures* its communication (byte counters around
every round); this module *predicts* it from plan-time facts only, so
``.explain()`` can state the naive candidate volume a query would ship
without running anything, and the bench can compare measured bytes against
the BSP simulator's message counts in one currency.

The naive volume is the classic distributed top-k bound: every shard ships
its full local top-k, ``num_shards * k`` entries of
:data:`~repro.cluster.engine.ENTRY_BYTES` bytes each.  θ-shipping and
adaptive quotas exist to land below it; the simulator's
``candidates_shipped`` statistic is the same quantity counted per
simulated round, which is what makes the two comparable.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.engine import ENTRY_BYTES

__all__ = ["ENTRY_BYTES", "naive_candidate_volume", "comm_forecast"]


def naive_candidate_volume(num_shards: int, k: int) -> int:
    """Candidate entries shipped when every shard sends its full top-k."""
    return int(num_shards) * int(k)


def comm_forecast(
    num_shards: int, k: int, *, workers: Optional[int] = None
) -> dict:
    """The plan-time communication summary attached to cluster plans."""
    candidates = naive_candidate_volume(num_shards, k)
    forecast = {
        "shards": float(num_shards),
        "predicted_candidates": float(candidates),
        "predicted_candidate_bytes": float(candidates * ENTRY_BYTES),
        "entry_bytes": float(ENTRY_BYTES),
    }
    if workers is not None:
        forecast["workers"] = float(workers)
    return forecast
