"""Coordinator-side cluster transport: peers, dispatch, crash re-issue.

One :class:`ClusterTransport` owns the coordinator's connections to every
cluster worker — remote processes reached by ``host:port`` address, or
local ``cluster-worker`` processes it spawns itself (the ``workers=N``
form).  It mirrors the process pool's failure contract
(:class:`repro.parallel.pool.ShardWorkerPool`): results are matched by
task id so duplicate replies are dropped, a dead peer's in-flight tasks
are re-issued — to a respawned local worker while the respawn budget
lasts, otherwise to any surviving peer — and a round that cannot complete
raises :class:`~repro.errors.ClusterError` naming the outstanding work.

Re-issue is always *correct* here because shard ownership is logical, not
physical: every peer can hold every store (the coordinator ships missing
stores on demand, and a worker answering ``missing`` triggers exactly that
re-ship + retry), so any survivor can run any shard's task.  A re-issued
``resume`` task falls back to its original full task — the dead peer's
parked remainder died with it — and the engine's per-shard candidate
de-duplication absorbs the overlap.

Beyond crash recovery, the transport defends against *degraded* peers:

* **Timeouts everywhere** — connects use a dedicated ``connect_timeout``
  and every socket keeps a permanent I/O timeout (``io_timeout``), so a
  down or wedged peer surfaces as a typed
  :class:`~repro.errors.ClusterError` instead of a hang (blocking
  ``sendall`` against a full buffer included).
* **Straggler hedging** — per-peer reply latencies feed quantile
  trackers; a task pending far past what the *fastest* peer's p95 says it
  should take is hedged to an idle peer, first reply wins, the loser's
  late reply drains through the existing abandoned-task set.
* **Health scoreboard + circuit breaker** — every failure (death,
  transient error, garbage frame) scores against the peer; repeated
  consecutive failures trip its breaker and eject it from dispatch for a
  cool-off.  Tripped-but-alive peers are readmitted by their next
  successfully-probed dispatch; dead *address* peers (the multi-machine
  form, which has no respawn lever) are re-connected and hello-probed
  once per cool-off, so a rebooted remote worker rejoins by itself.
  ``health_snapshot()`` surfaces the whole board (engine
  ``worker_stats()`` / ``/v1/stats``).

Every frame in and out is counted per peer; the engine turns snapshots of
those counters into the per-query ``bytes_sent``/``bytes_received`` the
bench gates compare against the BSP simulator's message volume.
"""

from __future__ import annotations

import os
import selectors
import socket
import subprocess
import sys
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.cluster.frames import read_frame, write_frame
from repro.core.deadline import active_deadline
from repro.errors import ClusterError, StaleShardError, error_from_wire
from repro.faults import fault_point

__all__ = [
    "ClusterPeer",
    "ClusterTransport",
    "PeerHealth",
    "spawn_local_worker",
]

#: Seconds granted to a spawned worker to print its listen address.
_SPAWN_TIMEOUT = 30.0

#: Default ceiling on connect() to a worker address — a down peer must
#: surface as a typed error promptly, never hang for the round timeout.
_CONNECT_TIMEOUT = 10.0

#: Default permanent socket I/O timeout: bounds a blocking ``sendall``
#: against a wedged peer and reading one frame after the selector reported
#: the socket readable.  A peer that stalls mid-frame this long is dead.
_FRAME_READ_TIMEOUT = 30.0


def _remaining_budget() -> Optional[float]:
    """Seconds left on the coordinator's active query deadline, or None.

    Shipped with every task frame as a *relative* budget: absolute
    monotonic timestamps are meaningless on another machine, so the worker
    re-anchors the budget against its own clock on receipt (the one-way
    frame latency is the scheme's slack, spent in the query's favor).
    """
    deadline_at = active_deadline()
    if deadline_at is None:
        return None
    return max(0.0, deadline_at - time.monotonic())


class PeerHealth:
    """Failure scoreboard + circuit breaker for one peer.

    States: ``closed`` (healthy), ``open`` (ejected from dispatch until
    ``retry_at``), ``half_open`` (cool-off elapsed; the next dispatch or
    reconnect is the probe).  ``threshold`` consecutive failures trip the
    breaker; any success closes it.
    """

    def __init__(self, *, threshold: int = 3, cooloff: float = 2.0) -> None:
        self.threshold = threshold
        self.cooloff = cooloff
        self.state = "closed"
        self.failures = 0
        self.successes = 0
        self.consecutive = 0
        self.trips = 0
        self.retry_at = 0.0
        self.last_error: Optional[str] = None

    def record_success(self) -> None:
        self.successes += 1
        self.consecutive = 0
        self.state = "closed"

    def record_failure(self, error: object = None) -> None:
        self.failures += 1
        self.consecutive += 1
        if error is not None:
            self.last_error = str(error)
        if self.state == "half_open" or (
            self.state == "closed" and self.consecutive >= self.threshold
        ):
            self.state = "open"
            self.trips += 1
            self.retry_at = time.monotonic() + self.cooloff

    def admits(self, now: Optional[float] = None) -> bool:
        """May this peer take new work?  Open -> half-open after cool-off."""
        if self.state == "closed":
            return True
        now = time.monotonic() if now is None else now
        if self.state == "open" and now >= self.retry_at:
            self.state = "half_open"
        return self.state == "half_open"

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "failures": self.failures,
            "successes": self.successes,
            "consecutive": self.consecutive,
            "trips": self.trips,
            "last_error": self.last_error,
        }


class _LatencyTracker:
    """Sliding window of task reply latencies for one peer."""

    __slots__ = ("samples",)

    def __init__(self, window: int = 64) -> None:
        self.samples: deque = deque(maxlen=window)

    def add(self, seconds: float) -> None:
        self.samples.append(seconds)

    def __len__(self) -> int:
        return len(self.samples)

    def quantile(self, q: float) -> Optional[float]:
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


class ClusterPeer:
    """One worker connection: socket, shipped-store set, byte counters."""

    def __init__(
        self,
        ident: int,
        host: str,
        port: int,
        *,
        proc: Optional[subprocess.Popen] = None,
        io_timeout: float = _FRAME_READ_TIMEOUT,
    ) -> None:
        self.ident = ident
        self.host = host
        self.port = port
        self.proc = proc
        self.io_timeout = io_timeout
        self.sock: Optional[socket.socket] = None
        self.alive = False
        self.shipped: set = set()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def spawned(self) -> bool:
        return self.proc is not None

    def connect(self, timeout: float) -> None:
        fault_point("cluster.connect", peer=self.ident, address=self.address)
        self.sock = socket.create_connection((self.host, self.port), timeout)
        # Keep a permanent I/O timeout: a blocking sendall against a
        # wedged peer's full buffer must fail instead of hanging the
        # coordinator.  recv() tightens/restores it per call.
        self.sock.settimeout(self.io_timeout)
        self.alive = True

    def send(self, header: dict, arrays: Optional[dict] = None) -> None:
        assert self.sock is not None
        try:
            nbytes = write_frame(self.sock, header, arrays)
        except (OSError, ValueError):
            self.alive = False
            raise ConnectionError(f"peer {self.address} is gone") from None
        self.bytes_sent += nbytes
        self.frames_sent += 1

    def recv(self, timeout: Optional[float] = None) -> Tuple[dict, dict]:
        assert self.sock is not None
        try:
            self.sock.settimeout(self.io_timeout if timeout is None else timeout)
            header, arrays, nbytes = read_frame(self.sock)
            self.sock.settimeout(self.io_timeout)
        except (OSError, ValueError, ClusterError):
            # ClusterError here means the peer shipped garbage (oversize
            # length word, undecodable header): treat a protocol-broken
            # peer exactly like a dead one — the caller kills it and the
            # round re-issues; the respawn budget bounds repetition.
            self.alive = False
            raise ConnectionError(f"peer {self.address} is gone") from None
        self.bytes_received += nbytes
        self.frames_received += 1
        return header, arrays

    def request(self, header: dict, arrays: Optional[dict] = None) -> Tuple[dict, dict]:
        """Synchronous request/reply exchange (between rounds only)."""
        self.send(header, arrays)
        return self.recv()

    def close(self, *, shutdown: bool = True) -> None:
        if self.sock is not None:
            if shutdown and self.alive:
                try:
                    write_frame(self.sock, {"type": "shutdown"})
                except Exception:
                    pass
            try:
                self.sock.close()
            except Exception:  # pragma: no cover - teardown races
                pass
            self.sock = None
        self.alive = False
        if self.proc is not None:
            try:
                self.proc.wait(timeout=2.0)
            except Exception:
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=2.0)
                except Exception:  # pragma: no cover - stuck child
                    self.proc.kill()
            if self.proc.stdout is not None:
                try:
                    self.proc.stdout.close()
                except Exception:  # pragma: no cover
                    pass


def _worker_env() -> dict:
    """A child environment where ``import repro`` resolves to this tree."""
    import repro

    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + existing if existing else "")
        )
    return env


def spawn_local_worker(
    ident: int,
    *,
    timeout: float = _SPAWN_TIMEOUT,
    io_timeout: float = _FRAME_READ_TIMEOUT,
) -> ClusterPeer:
    """Spawn ``cluster-worker`` on a free localhost port and connect to it."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "cluster-worker",
            "--listen",
            "127.0.0.1:0",
            "--ident",
            str(ident),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=_worker_env(),
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + timeout
    address = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        text = line.decode("utf-8", "replace").strip()
        if text.startswith("listening on "):
            address = text[len("listening on ") :]
            break
    if address is None:
        proc.terminate()
        raise ClusterError("spawned cluster worker never reported its address")
    host, _, port = address.rpartition(":")
    peer = ClusterPeer(ident, host, int(port), proc=proc, io_timeout=io_timeout)
    peer.connect(timeout)
    return peer


class ClusterTransport:
    """The coordinator's peer set plus the round dispatch/re-issue loop."""

    #: Hedging: a pending task is late once it exceeds
    #: ``hedge_multiplier x`` the fastest peer's p95 reply latency (but
    #: never sooner than ``hedge_min_delay`` — cheap insurance against
    #: spurious duplicate work on noisy machines).
    hedge_quantile = 0.95
    hedge_multiplier = 3.0
    hedge_min_delay = 0.25

    #: Circuit breaker: consecutive failures before a peer is ejected,
    #: and how long it sits out before a probe readmits it.
    breaker_threshold = 3
    breaker_cooloff = 2.0

    def __init__(
        self,
        workers: Union[int, Sequence[str]],
        *,
        timeout: float = 120.0,
        connect_timeout: float = _CONNECT_TIMEOUT,
        io_timeout: float = _FRAME_READ_TIMEOUT,
        hedge: bool = True,
    ) -> None:
        if isinstance(workers, int):
            self._spawn_count = workers
            self._addresses: List[str] = []
        else:
            self._spawn_count = 0
            self._addresses = [str(a) for a in workers]
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.hedge_enabled = hedge
        self.peers: List[ClusterPeer] = []
        self.started = False
        self.respawns = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.transients = 0
        self.revivals = 0
        # Same budget rule as the process pool: each worker slot may be
        # respawned twice over the transport's lifetime before a crash is
        # treated as systematic and surfaced.
        self.respawn_budget = 2 * self._spawn_count
        self._next_ident = 0
        self._task_serial = 0
        self._abandoned: set = set()
        self._health: Dict[int, PeerHealth] = {}
        self._latency: Dict[int, _LatencyTracker] = {}

    # ------------------------------------------------------------------
    @property
    def num_peers(self) -> int:
        """Configured peer count (valid before start)."""
        return self._spawn_count + len(self._addresses)

    @property
    def alive_peers(self) -> int:
        return sum(1 for peer in self.peers if peer.alive)

    def health_for(self, peer: ClusterPeer) -> PeerHealth:
        health = self._health.get(peer.ident)
        if health is None:
            health = PeerHealth(
                threshold=self.breaker_threshold,
                cooloff=self.breaker_cooloff,
            )
            self._health[peer.ident] = health
        return health

    def health_snapshot(self) -> List[dict]:
        """The per-peer scoreboard, for ``worker_stats()``/``/v1/stats``."""
        board = []
        for peer in self.peers:
            entry = {
                "peer": peer.ident,
                "address": peer.address,
                "alive": peer.alive,
                "spawned": peer.spawned,
            }
            entry.update(self.health_for(peer).snapshot())
            board.append(entry)
        return board

    def start(self) -> None:
        if self.started:
            return
        try:
            for address in self._addresses:
                host, _, port = address.rpartition(":")
                if not host or not port.isdigit():
                    raise ClusterError(
                        f"worker address must be host:port, got {address!r}"
                    )
                peer = ClusterPeer(
                    self._next_ident,
                    host,
                    int(port),
                    io_timeout=self.io_timeout,
                )
                self._next_ident += 1
                peer.connect(self.connect_timeout)
                self.peers.append(peer)
            for _ in range(self._spawn_count):
                self.peers.append(
                    spawn_local_worker(
                        self._next_ident, io_timeout=self.io_timeout
                    )
                )
                self._next_ident += 1
        except (OSError, ConnectionError) as exc:
            self.close()
            raise ClusterError(f"could not start cluster peers: {exc}") from None
        for peer in self.peers:
            self.health_for(peer)
        self.started = True

    def close(self) -> None:
        for peer in self.peers:
            peer.close()
        self.peers = []
        self.started = False

    def totals(self) -> Dict[str, int]:
        """Aggregate byte/frame counters over every connected peer."""
        out = {
            "bytes_sent": 0,
            "bytes_received": 0,
            "frames_sent": 0,
            "frames_received": 0,
        }
        for peer in self.peers:
            out["bytes_sent"] += peer.bytes_sent
            out["bytes_received"] += peer.bytes_received
            out["frames_sent"] += peer.frames_sent
            out["frames_received"] += peer.frames_received
        return out

    # ------------------------------------------------------------------
    # Store shipping
    # ------------------------------------------------------------------
    def ensure_stores(
        self,
        peer: ClusterPeer,
        names: Sequence[str],
        store_provider: Callable[[str], Tuple[dict, dict]],
    ) -> None:
        """Ship every store the peer lacks (puts are fire-and-forget)."""
        for name in names:
            if name in peer.shipped:
                continue
            header, arrays = store_provider(name)
            peer.send(header, arrays)
            peer.shipped.add(name)

    def drop_stores(self, names: Sequence[str]) -> None:
        """Best-effort delete of dead stores on every live peer."""
        names = [n for n in names if n]
        if not names:
            return
        for peer in self.peers:
            if not peer.alive:
                continue
            try:
                peer.send(
                    {
                        "type": "put",
                        "store": names[0],
                        "kind": "del",
                        "stores": list(names),
                    }
                )
            except ConnectionError:
                continue
            peer.shipped.difference_update(names)

    # ------------------------------------------------------------------
    # Peer readmission (the breaker's probe path for address peers)
    # ------------------------------------------------------------------
    def _revive_address_peers(self) -> None:
        """Reconnect + hello-probe dead address peers whose cool-off passed.

        Spawned peers have the respawn lever instead; address peers are
        the multi-machine form, where the remote worker may well have
        rebooted and be ready to serve again.
        """
        for peer in self.peers:
            if peer.alive or peer.spawned:
                continue
            health = self.health_for(peer)
            if not health.admits():
                continue
            try:
                peer.connect(self.connect_timeout)
                header, _ = peer.request({"type": "hello"})
                if header.get("status") != "ok":
                    raise ConnectionError(
                        f"hello probe refused: {header.get('message')}"
                    )
            except (OSError, ConnectionError, ClusterError) as exc:
                health.record_failure(exc)
                peer.alive = False
                continue
            # A reconnected worker may be a fresh process: forget what we
            # think it holds and re-ship stores on demand.
            peer.shipped.clear()
            health.record_success()
            self.revivals += 1

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def run(
        self,
        tasks: List[dict],
        store_provider: Callable[[str], Tuple[dict, dict]],
    ) -> List[Tuple[dict, dict]]:
        """Run one round of tasks; returns replies in task order.

        Each task dict carries ``task`` (the worker payload), ``ship``
        (theta/quota spec), optional ``arrays`` (e.g. a verify frontier),
        ``stores`` (names the task references, shipped on demand),
        ``peer`` (preferred peer index) and optional ``fallback`` (the
        full task to re-run when a ``resume`` cannot be served).
        """
        self.start()
        if not tasks:
            return []
        tasks = [dict(spec) for spec in tasks]
        deadline = time.monotonic() + self.timeout
        results: List[Optional[Tuple[dict, dict]]] = [None] * len(tasks)
        pending: Dict[str, int] = {}
        owner: Dict[str, ClusterPeer] = {}
        sent_at: Dict[str, float] = {}
        tids_of: Dict[int, Set[str]] = {}
        hedged: Set[int] = set()
        undispatched = deque(range(len(tasks)))
        stale: Optional[StaleShardError] = None
        timed_out: Optional[BaseException] = None
        # Bounded tolerance for injected/typed transient task failures:
        # enough to absorb a flaky spell, small enough that a peer that
        # only ever fails still surfaces as a ClusterError.
        transient_budget = 3 * len(tasks) + 4
        hedge_budget = len(tasks)
        # Peers kill_peer already processed this round.  send/recv clear
        # ``peer.alive`` themselves before raising, so the alive flag can
        # NOT double as the "first kill" marker — only this set makes
        # kill_peer idempotent without losing the respawn.
        killed: set = set()

        def alive_peers() -> List[ClusterPeer]:
            return [p for p in self.peers if p.alive]

        def admitted_peers() -> List[ClusterPeer]:
            now = time.monotonic()
            pool = [
                p for p in alive_peers() if self.health_for(p).admits(now)
            ]
            # Availability beats the breaker: with every breaker open,
            # dispatching to a suspect peer is still better than failing
            # the round outright.
            return pool or alive_peers()

        def load_of(peer: ClusterPeer) -> int:
            return sum(1 for tid in pending if owner[tid] is peer)

        def use_fallback(index: int) -> None:
            spec = tasks[index]
            if spec.get("fallback") is not None:
                tasks[index] = dict(spec, task=spec["fallback"], fallback=None)

        def drop_duplicates(index: int, keep: Optional[str]) -> None:
            """Abandon every other in-flight attempt at ``index``."""
            for tid in list(tids_of.get(index, ())):
                if tid != keep and tid in pending:
                    pending.pop(tid, None)
                    self._abandoned.add(tid)

        def reissue(index: int) -> None:
            """Queue ``index`` again unless another attempt is in flight."""
            if results[index] is not None:
                return
            if any(tid in pending for tid in tids_of.get(index, ())):
                return
            use_fallback(index)
            undispatched.append(index)

        def kill_peer(dead: ClusterPeer, error: object = None) -> None:
            first = dead not in killed
            killed.add(dead)
            dead.alive = False
            if first:
                self.health_for(dead).record_failure(
                    error or "peer died mid-round"
                )
            for task_id in list(pending):
                if owner.get(task_id) is dead:
                    index = pending.pop(task_id)
                    self._abandoned.add(task_id)
                    # A parked remainder died with the peer: re-run the
                    # full task on whoever picks this up (unless a hedge
                    # is still in flight elsewhere).
                    reissue(index)
            if first and dead.spawned and self.respawn_budget > 0:
                self.respawn_budget -= 1
                dead.close(shutdown=False)
                try:
                    replacement = spawn_local_worker(
                        self._next_ident, io_timeout=self.io_timeout
                    )
                except ClusterError:
                    return
                self._next_ident += 1
                self.respawns += 1
                slot = self.peers.index(dead)
                self.peers[slot] = replacement
                self.health_for(replacement)

        def send_task(
            index: int, peer: ClusterPeer, task_payload: dict, spec: dict
        ) -> str:
            self._task_serial += 1
            task_id = f"t{index}.{self._task_serial}"
            self.ensure_stores(peer, spec.get("stores") or (), store_provider)
            frame = {
                "type": "task",
                "task_id": task_id,
                "task": task_payload,
                "ship": spec.get("ship") or {},
            }
            budget = _remaining_budget()
            if budget is not None:
                frame["deadline"] = budget
            peer.send(frame, spec.get("arrays"))
            pending[task_id] = index
            owner[task_id] = peer
            sent_at[task_id] = time.monotonic()
            tids_of.setdefault(index, set()).add(task_id)
            return task_id

        def dispatch(index: int, peer: ClusterPeer) -> None:
            spec = tasks[index]
            send_task(index, peer, spec["task"], spec)

        def hedge_threshold() -> Optional[float]:
            """Lateness bar: the fastest peer's p95, scaled."""
            quantiles = []
            for tracker in self._latency.values():
                if len(tracker) >= 4:
                    value = tracker.quantile(self.hedge_quantile)
                    if value is not None:
                        quantiles.append(value)
            if not quantiles:
                return None
            return max(self.hedge_min_delay, self.hedge_multiplier * min(quantiles))

        def maybe_hedge() -> None:
            nonlocal hedge_budget
            if not self.hedge_enabled or hedge_budget <= 0 or not pending:
                return
            bar = hedge_threshold()
            if bar is None:
                return
            now = time.monotonic()
            for task_id, index in list(pending.items()):
                if hedge_budget <= 0:
                    break
                if index in hedged or results[index] is not None:
                    continue
                if now - sent_at.get(task_id, now) <= bar:
                    continue
                slow = owner[task_id]
                standby = [
                    p
                    for p in admitted_peers()
                    if p is not slow and load_of(p) == 0
                ]
                if not standby:
                    continue
                target = standby[0]
                spec = tasks[index]
                # A resume task is pinned to the slow peer's parked state;
                # the hedge runs the original full task instead.
                payload = (
                    spec["fallback"]
                    if spec.get("fallback") is not None
                    else spec["task"]
                )
                try:
                    send_task(index, target, payload, spec)
                except ConnectionError as exc:
                    kill_peer(target, exc)
                    continue
                hedged.add(index)
                hedge_budget -= 1
                self.hedges += 1

        selector = selectors.DefaultSelector()
        try:
            while pending or undispatched:
                if time.monotonic() > deadline:
                    raise ClusterError(
                        f"cluster round timed out with "
                        f"{len(pending) + len(undispatched)} task(s) "
                        f"outstanding after {self.timeout:.1f}s"
                    )
                if undispatched:
                    self._revive_address_peers()
                while undispatched:
                    index = undispatched[0]
                    pool = admitted_peers()
                    if not pool:
                        raise ClusterError(
                            f"{len(undispatched)} task(s) outstanding and "
                            "no live cluster peer to issue them to"
                        )
                    hint = tasks[index].get("peer")
                    if (
                        hint is not None
                        and 0 <= hint < len(self.peers)
                        and self.peers[hint].alive
                        and self.peers[hint] in pool
                    ):
                        peer = self.peers[hint]
                    else:
                        peer = pool[index % len(pool)]
                    try:
                        dispatch(index, peer)
                    except ConnectionError as exc:
                        kill_peer(peer, exc)
                        continue
                    undispatched.popleft()
                if not pending:
                    continue
                maybe_hedge()
                busy = {
                    owner[task_id]
                    for task_id in pending
                    if owner[task_id].alive
                }
                watched = []
                for peer in busy:
                    if peer.sock is None:
                        continue
                    selector.register(peer.sock, selectors.EVENT_READ, peer)
                    watched.append(peer)
                if not watched:
                    # Every owing peer died while we weren't looking.
                    for task_id in list(pending):
                        kill_peer(owner[task_id])
                    continue
                try:
                    events = selector.select(timeout=0.25)
                finally:
                    for peer in watched:
                        try:
                            selector.unregister(peer.sock)
                        except (KeyError, ValueError):  # pragma: no cover
                            pass
                if not events:
                    # Idle tick: notice silently-dead spawned workers.
                    for peer in watched:
                        if (
                            peer.spawned
                            and peer.proc is not None
                            and peer.proc.poll() is not None
                        ):
                            kill_peer(peer)
                    continue
                for key, _mask in events:
                    peer = key.data
                    try:
                        header, arrays = peer.recv()
                    except ConnectionError as exc:
                        kill_peer(peer, exc)
                        continue
                    task_id = header.get("task_id")
                    if task_id in sent_at:
                        tracker = self._latency.get(peer.ident)
                        if tracker is None:
                            tracker = _LatencyTracker()
                            self._latency[peer.ident] = tracker
                        tracker.add(time.monotonic() - sent_at[task_id])
                    if task_id in self._abandoned:
                        self._abandoned.discard(task_id)
                        continue
                    index = pending.pop(task_id, None)
                    if index is None:
                        continue  # duplicate reply from a re-issued task
                    # First reply wins: any concurrent hedge attempt at
                    # this index drains through the abandoned set.
                    if index in hedged and any(
                        tid in pending for tid in tids_of.get(index, ())
                    ):
                        self.hedge_wins += 1
                    drop_duplicates(index, keep=None)
                    status = header.get("status")
                    if status == "ok":
                        results[index] = (header, arrays)
                        self.health_for(peer).record_success()
                    elif status == "missing":
                        peer.shipped.difference_update(
                            header.get("stores") or ()
                        )
                        undispatched.append(index)
                    elif status == "resume_lost":
                        use_fallback(index)
                        undispatched.append(index)
                    elif status == "transient":
                        # A typed, retryable worker failure (today: only
                        # injected faults): score it and re-issue, bounded
                        # so a never-healthy round still fails loudly.
                        self.transients += 1
                        transient_budget -= 1
                        self.health_for(peer).record_failure(
                            header.get("message")
                        )
                        if transient_budget <= 0:
                            raise ClusterError(
                                "cluster round exhausted its transient-"
                                "failure budget: "
                                + str(header.get("message"))
                            )
                        use_fallback(index)
                        undispatched.append(index)
                    elif status == "stale":
                        stale = StaleShardError(
                            header.get("message", "stale store")
                        )
                        for tid in list(pending):
                            self._abandoned.add(tid)
                        pending.clear()
                        undispatched.clear()
                    elif status == "deadline":
                        # A worker's local deadline scope fired mid-task:
                        # the whole query is over.  Abandon the round like
                        # a stale store and re-raise the worker's error —
                        # wire-coded, so the serving tier maps it to the
                        # same 504 an in-process timeout gets.
                        timed_out = error_from_wire(header.get("error") or {})
                        for tid in list(pending):
                            self._abandoned.add(tid)
                        pending.clear()
                        undispatched.clear()
                    else:
                        raise ClusterError(
                            "cluster worker error: "
                            + str(header.get("message"))
                            + "\n"
                            + str(header.get("traceback") or "")
                        )
                    if stale is not None or timed_out is not None:
                        break
                if stale is not None or timed_out is not None:
                    break
        finally:
            selector.close()
        if timed_out is not None:
            raise timed_out
        if stale is not None:
            raise stale
        assert all(result is not None for result in results)
        return [result for result in results if result is not None]
